//! KL-divergence monitoring over multi-site air-quality streams
//! (paper §4.2's KLD workload, with the simulated Beijing substitute).
//!
//! Twelve monitoring sites stream hourly PM10/PM2.5 readings; each site's
//! local vector packs two sliding-window histograms `[p, q]`, and the
//! coordinator maintains `D_KL(P‖Q)` of the *aggregate* distribution to
//! within ε. KLD is jointly convex, so AutoMon's deterministic error
//! guarantee applies — the example asserts it.
//!
//! Run with: `cargo run --release --example air_quality_kld`

use automon::data::air_quality::{generate, kld_series, AirQualityParams};
use automon::prelude::*;
use automon::sim::{run_centralization, run_periodic, Workload};
use std::sync::Arc;

fn main() {
    let params = AirQualityParams {
        sites: 12,
        hours: 1500,
        seed: 0xBE11,
    };
    let window = 200;
    let bins = 10; // d = 2 · bins = 20, the paper's default

    println!("generating {} sites × {} hours of simulated pollutant data…", params.sites, params.hours);
    let streams = generate(&params);
    let series = kld_series(&streams, window, bins);
    let workload = Workload::from_dense(&series);

    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(
        KlDivergence::with_paper_tau(2 * bins, params.sites, window),
    ));

    let epsilon = 0.1;
    println!("monitoring KLD over {} rounds (ε = {epsilon})…", workload.rounds());
    let cfg = MonitorConfig::builder(epsilon).build();
    let sim = Simulation::new(f.clone(), cfg);

    // Tune the neighborhood size on the first ~1.5% of the data, as the
    // paper does for real datasets.
    let tuning_rounds = (workload.rounds() / 66).max(20);
    let r = sim.tune_r(&workload.prefix(tuning_rounds));
    println!("  tuned neighborhood size r̂ = {r:.4}");

    let stats = sim.run_with_r(&workload, Some(r));
    let central = run_centralization(&f, &workload);
    let periodic = run_periodic(&f, &workload, 20);

    println!("results:");
    println!("  AutoMon messages    : {}", stats.messages);
    println!("  Centralization msgs : {}", central.messages);
    println!("  Periodic(20) msgs   : {}", periodic.messages);
    println!("  AutoMon max error   : {:.4}  (bound {epsilon})", stats.max_error);
    println!("  Periodic(20) error  : {:.4}", periodic.max_error);
    println!(
        "  payload: AutoMon {:.1} KiB vs centralization {:.1} KiB",
        stats.payload_bytes as f64 / 1024.0,
        central.payload_bytes as f64 / 1024.0
    );

    // KLD is convex → the §3.7 guarantee must hold.
    assert!(
        stats.max_error <= epsilon + 1e-9,
        "convexity guarantee violated: {} > {epsilon}",
        stats.max_error
    );
    println!("deterministic ε-guarantee held (KLD is convex).");
}
