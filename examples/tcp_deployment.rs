//! AutoMon over real TCP sockets on localhost — the closest in-repo
//! equivalent of the paper's ZeroMQ deployment (§4.7), with every frame
//! crossing an actual socket through the binary wire codec.
//!
//! The coordinator thread owns a `TcpCoordinatorTransport`; each node
//! thread dials in with a `TcpNodeTransport`, monitors a drifting local
//! vector, and serves sync traffic. Swap the localhost address for a
//! real one and the same code runs across machines.
//!
//! Run with: `cargo run --release --example tcp_deployment`

use automon::net::tcp::{TcpCoordinatorTransport, TcpNodeTransport};
use automon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

struct Energy;
impl ScalarFn for Energy {
    fn dim(&self) -> usize {
        3
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        // Mean "energy" of three sensor channels.
        (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]) * S::from_f64(1.0 / 3.0)
    }
}

fn main() {
    let n = 4;
    let rounds = 400;
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Energy));

    // Pick a free port, then bind the coordinator on it in a thread
    // (bind+accept blocks until every node dials in).
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);

    let coord_f = f.clone();
    let coordinator = std::thread::spawn(move || {
        let (tp, _) = TcpCoordinatorTransport::bind(addr, n).expect("bind");
        let mut coord = Coordinator::new(coord_f, n, MonitorConfig::builder(0.05).build());
        let mut upstream = 0usize;
        while let Some(msg) = tp.recv_timeout(Duration::from_secs(3)) {
            upstream += 1;
            for out in coord.handle(msg) {
                if tp.send(&out).is_err() {
                    break;
                }
            }
        }
        println!(
            "coordinator: {} upstream frames, estimate {:?}, {} full / {} lazy syncs",
            upstream,
            coord.current_value(),
            coord.stats().full_syncs,
            coord.stats().lazy_syncs
        );
        upstream
    });

    std::thread::sleep(Duration::from_millis(150));
    let mut workers = Vec::new();
    for id in 0..n {
        let f = f.clone();
        workers.push(std::thread::spawn(move || {
            let mut tp = TcpNodeTransport::connect(addr, id).expect("connect");
            let mut node = Node::new(id, f);
            for t in 0..rounds {
                while let Ok(Some(msg)) = tp.try_recv() {
                    if let Some(reply) = node.handle(msg) {
                        tp.send(&reply).expect("send reply");
                    }
                }
                let phase = t as f64 / 120.0 + id as f64 * 0.5;
                let x = vec![phase.sin() * 0.4, phase.cos() * 0.3, 0.2];
                if let Some(report) = node.update_data(x) {
                    tp.send(&report).expect("send report");
                }
            }
            // Serve trailing sync traffic before hanging up.
            let deadline = std::time::Instant::now() + Duration::from_millis(300);
            while std::time::Instant::now() < deadline {
                if let Ok(Some(msg)) = tp.try_recv() {
                    if let Some(reply) = node.handle(msg) {
                        let _ = tp.send(&reply);
                    }
                }
            }
            node.current_value()
        }));
    }

    let values: Vec<Option<f64>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let upstream = coordinator.join().unwrap();
    println!("nodes' final estimates: {values:?}");
    println!(
        "{} upstream frames vs {} for centralization",
        upstream,
        n * rounds
    );
    assert!(values.iter().all(Option::is_some));
    assert!(upstream < n * rounds, "AutoMon must beat centralization");
}
