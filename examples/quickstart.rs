//! Quickstart: monitor a custom nonlinear function of distributed data.
//!
//! Three "sensors" each hold a 2-dimensional local vector that drifts over
//! time. We monitor `f(x̄) = exp(-‖x̄‖²)` — a nonlinear function with no
//! hand-crafted distributed solution — to within ε = 0.05, and compare the
//! messages AutoMon spends against centralizing every update.
//!
//! Run with: `cargo run --release --example quickstart`

use automon::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// The monitored function, written once over the generic AD scalar.
/// This is all AutoMon needs — no gradients, no Hessians, no analysis.
struct GaussianBump;

impl ScalarFn for GaussianBump {
    fn dim(&self) -> usize {
        2
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        (-(x[0] * x[0] + x[1] * x[1])).exp()
    }
}

/// Deliver one node report and every cascading reply; count messages.
fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) -> usize {
    let mut inbox = VecDeque::from([first]);
    let mut count = 0;
    while let Some(m) = inbox.pop_front() {
        count += 1;
        for out in coord.handle(m) {
            count += 1;
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
    count
}

fn main() {
    let n = 3;
    let rounds = 1000;
    let epsilon = 0.05;

    // Build the monitored function and the protocol actors.
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(GaussianBump));
    let cfg = MonitorConfig::builder(epsilon).build();
    let mut coordinator = Coordinator::new(f.clone(), n, cfg);
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();

    // Drive the protocol over a synthetic drift; the application owns the
    // messaging loop (here: direct function calls).
    let mut messages = 0usize;
    let mut max_err = 0.0f64;
    let mut worst_round = 0usize;
    for t in 0..rounds {
        let mut locals = Vec::with_capacity(n);
        for i in 0..n {
            // Each node drifts on its own circle — the aggregate drifts too.
            let phase = t as f64 / 250.0 + i as f64;
            let x = vec![0.6 * phase.cos(), 0.4 * phase.sin()];
            locals.push(x.clone());
            if let Some(report) = nodes[i].update_data(x) {
                messages += route(&mut coordinator, &mut nodes, report);
            }
        }

        // Compare the coordinator's estimate with the exact value.
        if let Some(estimate) = coordinator.current_value() {
            let mean: Vec<f64> = (0..2)
                .map(|j| locals.iter().map(|x| x[j]).sum::<f64>() / n as f64)
                .collect();
            let truth = f.eval(&mean);
            let err = (estimate - truth).abs();
            if err > max_err {
                max_err = err;
                worst_round = t;
            }
        }
    }

    let centralization = n * rounds;
    println!("monitored f(x̄) = exp(-‖x̄‖²) over {n} nodes for {rounds} rounds");
    println!("  error bound ε     : {epsilon}");
    println!("  max observed error: {max_err:.4} (round {worst_round})");
    println!("  AutoMon messages  : {messages}");
    println!("  Centralization    : {centralization}");
    println!(
        "  savings           : {:.1}x fewer messages",
        centralization as f64 / messages as f64
    );
    assert!(
        max_err <= epsilon * 2.0,
        "error escaped the expected envelope"
    );
}
