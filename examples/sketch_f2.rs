//! Monitoring a sketch query: distributed second-moment (F₂) tracking.
//!
//! The paper's §5 points out that AutoMon composes with *linear*
//! sketches: the average of per-node sketches is the sketch of the
//! average frequency vector, so `f = query ∘ sketch` is just another
//! monitored function. Here every node sketches its own item stream with
//! a shared-seed AMS sketch, and AutoMon maintains the F₂ (self-join
//! size) estimate of the aggregate to within ε — selecting ADCD-E
//! automatically because the F₂ query is a quadratic form.
//!
//! Run with: `cargo run --release --example sketch_f2`

use automon::data::sketch::AmsSketch;
use automon::data::NormalSampler;
use automon::functions::F2FromSketch;
use automon::prelude::*;
use automon::sim::{run_centralization, Workload};
use std::sync::Arc;

fn main() {
    let n = 6;
    let width = 32;
    let rounds = 1200;
    let seed = 0x5EC7;

    // Each node sketches a sliding window over a Zipf-ish item stream
    // whose hot set drifts. The AMS sketch is a *turnstile* summary, so
    // expiring an item is just an update with Δ = -1 — the sketch always
    // summarizes the last `window` items.
    let window = 200;
    println!("sketching {n} windowed item streams (AMS width {width}, window {window})…");
    let mut sketches: Vec<AmsSketch> = (0..n).map(|_| AmsSketch::new(width, seed)).collect();
    let mut windows: Vec<std::collections::VecDeque<u64>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    let mut rngs: Vec<NormalSampler> = (0..n)
        .map(|i| NormalSampler::new(seed ^ (i as u64 * 1337)))
        .collect();
    let mut series: Vec<Vec<Vec<f64>>> = (0..n).map(|_| Vec::with_capacity(rounds)).collect();
    for t in 0..rounds {
        // The hot item shifts slowly; heavier traffic mid-run.
        let hot = (t / 300) as u64;
        for (i, sk) in sketches.iter_mut().enumerate() {
            let r = rngs[i].uniform();
            let item = if r < 0.5 {
                hot
            } else if r < 0.8 {
                hot + 1
            } else {
                10 + rngs[i].below(50) as u64
            };
            sk.update(item, 1.0);
            windows[i].push_back(item);
            if windows[i].len() > window {
                let expired = windows[i].pop_front().expect("non-empty window");
                sk.update(expired, -1.0);
            }
            if windows[i].len() == window {
                series[i].push(sk.vector().to_vec());
            }
        }
    }

    let workload = Workload::from_dense(&series);
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(F2FromSketch::new(width)));

    // F₂ grows over the run; use a multiplicative bound like real
    // self-join-size monitoring would.
    let epsilon = 0.1;
    let cfg = MonitorConfig::builder(epsilon).multiplicative().build();
    let stats = Simulation::new(f.clone(), cfg).run(&workload);
    let central = run_centralization(&f, &workload);

    println!("results (multiplicative ε = {epsilon}):");
    println!("  AutoMon messages    : {}", stats.messages);
    println!("  Centralization msgs : {}", central.messages);
    println!(
        "  reduction           : {:.1}x",
        central.messages as f64 / stats.messages as f64
    );
    println!("  max abs error       : {:.3}", stats.max_error);
    println!("  full/lazy syncs     : {}/{}", stats.full_syncs, stats.lazy_syncs);
    println!(
        "  ADCD variant        : E (constant Hessian — quadratic query), guarantee holds"
    );
    assert_eq!(stats.missed_violation_rounds, 0);
    assert!(
        stats.messages < central.messages,
        "sketch monitoring should beat centralizing sketches"
    );
}
