//! A genuinely decoupled deployment: coordinator and nodes on separate
//! threads, exchanging *encoded frames* over a channel fabric — the
//! in-process equivalent of the paper's ZeroMQ deployment (§3.8, §4.7).
//!
//! Unlike the simulation harness, nothing here shares mutable state: each
//! node thread owns its `Node`, the coordinator thread owns the
//! `Coordinator`, and every message crosses a channel as bytes produced
//! by the binary wire codec.
//!
//! Run with: `cargo run --release --example distributed_threads`

use automon::net::{ChannelFabric, CoordinatorEndpoint, NodeEndpoint};
use automon::prelude::*;
use std::sync::Arc;
use std::thread;

struct Quadratic2;
impl ScalarFn for Quadratic2 {
    fn dim(&self) -> usize {
        2
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0] * x[0] + S::from_f64(0.5) * x[1] * x[1]
    }
}

fn node_thread(id: usize, f: Arc<dyn MonitoredFunction>, ep: NodeEndpoint, rounds: usize) {
    let mut node = Node::new(id, f);
    for t in 0..rounds {
        // Drain any pending coordinator messages first; never block —
        // a blocked node could deadlock a sync that involves a peer.
        while let Some(msg) = ep.try_recv() {
            if let Some(reply) = node.handle(msg) {
                ep.send(&reply);
            }
        }
        // Produce this round's local vector: a slow per-node drift.
        let phase = t as f64 / 200.0;
        let x = vec![
            0.3 * phase + 0.05 * id as f64,
            (phase + id as f64).sin() * 0.2,
        ];
        if let Some(report) = node.update_data(x) {
            ep.send(&report);
        }
        thread::yield_now();
    }
    // Grace period: keep serving sync traffic until the wire goes quiet,
    // so in-flight resolutions that involve this node can complete.
    let mut quiet_for = std::time::Duration::ZERO;
    while quiet_for < std::time::Duration::from_millis(200) {
        let mut served = false;
        while let Some(msg) = ep.try_recv() {
            served = true;
            if let Some(reply) = node.handle(msg) {
                ep.send(&reply);
            }
        }
        if served {
            quiet_for = std::time::Duration::ZERO;
        } else {
            thread::sleep(std::time::Duration::from_millis(5));
            quiet_for += std::time::Duration::from_millis(5);
        }
    }
}

fn coordinator_thread(
    f: Arc<dyn MonitoredFunction>,
    n: usize,
    ep: CoordinatorEndpoint,
    expected_msgs: std::sync::mpsc::Sender<usize>,
) {
    let mut coord = Coordinator::new(f, n, MonitorConfig::builder(0.05).build());
    let mut handled = 0usize;
    while let Some(msg) = ep.recv() {
        handled += 1;
        for out in coord.handle(msg) {
            ep.send(&out);
        }
    }
    println!(
        "coordinator: handled {handled} node messages, estimate = {:?}, {} full syncs, {} lazy syncs",
        coord.current_value(),
        coord.stats().full_syncs,
        coord.stats().lazy_syncs
    );
    let _ = expected_msgs.send(handled);
}

fn main() {
    let n = 4;
    let rounds = 500;
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Quadratic2));

    let mut fabric = ChannelFabric::new(n);
    let coord_ep = fabric.coordinator_endpoint();
    let (tx, rx) = std::sync::mpsc::channel();

    let coord_f = f.clone();
    let coord = thread::spawn(move || coordinator_thread(coord_f, n, coord_ep, tx));

    let mut workers = Vec::new();
    for id in 0..n {
        let ep = fabric.node_endpoint(id);
        let nf = f.clone();
        workers.push(thread::spawn(move || node_thread(id, nf, ep, rounds)));
    }
    for w in workers {
        w.join().expect("node thread");
    }
    // Dropping the fabric closes the coordinator's inbox and ends its loop.
    drop(fabric);
    coord.join().expect("coordinator thread");

    let handled = rx.recv().expect("coordinator report");
    println!(
        "done: {n} nodes × {rounds} rounds; {handled} upstream messages vs {} for centralization",
        n * rounds
    );
    assert!(handled > 0);
    assert!(handled < n * rounds, "AutoMon must beat centralization here");
}
