//! Monitoring a least-squares model over distributed streams
//! (the paper's §6 "function rewriting" direction, following the
//! least-squares monitoring line of work it cites).
//!
//! Each node observes `(x, y)` pairs whose underlying linear relation
//! drifts over time. Nodes summarize their window as the *augmented
//! moment vector* `[mean x, mean y, mean x², mean xy]`; the across-node
//! average of those vectors is the global moment vector, from which the
//! regression slope is an ordinary (non-convex!) function that AutoMon
//! monitors automatically.
//!
//! Run with: `cargo run --release --example regression_monitoring`

use automon::data::regression::{drifting_slope_streams, moment_series};
use automon::functions::RegressionSlope;
use automon::prelude::*;
use automon::sim::{run_centralization, run_periodic, Workload};
use std::sync::Arc;

fn main() {
    let nodes = 8;
    let rounds = 1500;
    let window = 150;

    println!("generating {nodes} drifting (x, y) streams…");
    let streams = drifting_slope_streams(nodes, rounds, 0x51073);
    let series = moment_series(&streams, window);
    let workload = Workload::from_dense(&series);

    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(RegressionSlope::default()));
    let epsilon = 0.05;
    println!(
        "monitoring the regression slope over {} rounds (ε = {epsilon})…",
        workload.rounds()
    );
    let sim = Simulation::new(f.clone(), MonitorConfig::builder(epsilon).build());

    // The slope's curvature is wildly position-dependent (ridge-damped
    // rational function), so Algorithm 2's neighborhood tuning matters.
    let r = sim.tune_r(&workload.prefix(200));
    println!("  tuned neighborhood size r̂ = {r:.3}");
    let stats = sim.run_with_r(&workload, Some(r));

    let central = run_centralization(&f, &workload);
    let periodic = run_periodic(&f, &workload, 25);

    println!("results:");
    println!(
        "  AutoMon        : {:>6} msgs, max error {:.4}",
        stats.messages, stats.max_error
    );
    println!(
        "  Periodic(25)   : {:>6} msgs, max error {:.4}",
        periodic.messages, periodic.max_error
    );
    println!(
        "  Centralization : {:>6} msgs, max error {:.4}",
        central.messages, central.max_error
    );
    println!(
        "  full/lazy syncs: {}/{}; the slope drifted ≈0.8 over the run",
        stats.full_syncs, stats.lazy_syncs
    );
    assert!(
        stats.messages < central.messages,
        "moment-vector monitoring should beat centralizing moments"
    );
    assert!(stats.max_error <= 3.0 * epsilon, "{stats:?}");
}
