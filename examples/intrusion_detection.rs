//! DNN intrusion detection over distributed routers (paper §1 and §4.2).
//!
//! This is the paper's headline scenario: a deep neural network scores
//! the *average* of router feature vectors for attack likelihood, and no
//! hand-crafted distributed monitoring solution exists for a DNN.
//!
//! The pipeline below mirrors the evaluation end to end:
//! 1. generate a simulated connection-record stream (KDD substitute —
//!    see DESIGN.md §4) split over 9 nodes by application type;
//! 2. train the monitored DNN (5 ReLU hidden layers + sigmoid output)
//!    with the `automon-nn` substrate;
//! 3. monitor the network's output with AutoMon, one node update per
//!    round, and compare against centralization.
//!
//! Run with: `cargo run --release --example intrusion_detection`

use automon::data::intrusion::{IntrusionDataset, IntrusionParams, FEATURES, NODES};
use automon::data::SlidingWindow;
use automon::functions::{IntrusionDnnSpec, MlpFunction};
use automon::nn::{train, Loss, TrainOptions};
use automon::prelude::*;
use automon::sim::{run_centralization, Workload};
use std::sync::Arc;

fn main() {
    let params = IntrusionParams {
        records: 3000,
        attack_fraction: 0.2,
        seed: 99,
    };

    // 1. Simulated connection records, one node update per record.
    println!("generating simulated intrusion stream ({} records)…", params.records);
    let dataset = IntrusionDataset::generate(&params);

    // 2. Train the detector (scaled-down architecture for example speed;
    //    swap in `IntrusionDnnSpec::paper()` for the 512-wide original).
    println!("training the DNN detector…");
    let (xs, ys) = IntrusionDataset::training_set(&params, 2000);
    let mut net = IntrusionDnnSpec::scaled().build(7);
    let report = train(
        &mut net,
        &xs,
        &ys,
        &TrainOptions {
            epochs: 8,
            lr: 1e-3,
            batch_size: 32,
            loss: Loss::Bce,
            seed: 7,
            ..Default::default()
        },
    );
    println!("  final training loss: {:.4}", report.final_loss());

    // Simple holdout accuracy so the detector is demonstrably real.
    let (txs, tys) = IntrusionDataset::training_set(
        &IntrusionParams {
            seed: params.seed ^ 0xFF,
            ..params.clone()
        },
        1000,
    );
    let correct = txs
        .iter()
        .zip(&tys)
        .filter(|(x, y)| (net.forward(x)[0] > 0.5) == (y[0] > 0.5))
        .count();
    println!("  holdout accuracy   : {:.3}", correct as f64 / txs.len() as f64);

    // 3. Monitor the trained network over the distributed stream.
    //    Each node's local vector is the mean of its last 20 records.
    let window = 20;
    let mut windows: Vec<SlidingWindow> =
        (0..NODES).map(|_| SlidingWindow::new(window, FEATURES)).collect();
    let mut events = Vec::new();
    for (node, rec) in &dataset.events {
        windows[*node].push(rec.features.clone());
        if windows[*node].is_full() {
            events.push((*node, windows[*node].mean().expect("full window")));
        }
    }
    println!("monitoring {} node updates…", events.len());
    let workload = Workload::from_events(NODES, &events);

    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(MlpFunction::new(net)));
    let epsilon = 0.02;
    // A light eigenvalue-search budget: at DNN scale the λ search
    // dominates full-sync cost, and the §3.7 sanity check compensates
    // for any under-estimation.
    let cfg = MonitorConfig::builder(epsilon)
        .eigen_search(automon::core::EigenSearch {
            probes: 4,
            nm_iters: 12,
            seed: 1,
            ..Default::default()
        })
        .build();
    let sim = Simulation::new(f.clone(), cfg);
    // Tune the neighborhood size on a prefix, like the paper does for
    // real datasets (~1.5% of the stream).
    let r = sim.tune_r(&workload.prefix(workload.rounds() / 20));
    println!("  tuned neighborhood size r̂ = {r:.3}");
    let stats = sim.run_with_r(&workload, Some(r));
    let central = run_centralization(&f, &workload);
    let periodic1 = automon::sim::run_periodic(&f, &workload, 1);
    let periodic20 = automon::sim::run_periodic(&f, &workload, 20);

    // The paper's DNN comparison (§4.3): in this event-driven workload
    // only ONE node updates per round, so Centralization is the cheap
    // anchor; the meaningful adaptive baseline is Periodic, which ships
    // all n vectors every P rounds regardless of change. AutoMon must
    // beat Periodic at matched error.
    println!("results (ε = {epsilon}):");
    println!(
        "  AutoMon        : {:>7} msgs, max error {:.4}, p99 {:.4}",
        stats.messages, stats.max_error, stats.p99_error
    );
    println!(
        "  Periodic(1)    : {:>7} msgs, max error {:.4}",
        periodic1.messages, periodic1.max_error
    );
    println!(
        "  Periodic(20)   : {:>7} msgs, max error {:.4}",
        periodic20.messages, periodic20.max_error
    );
    println!(
        "  Centralization : {:>7} msgs, max error {:.4} (one-update-per-round anchor)",
        central.messages, central.max_error
    );
    println!(
        "  violations (nbhd/sz): {}/{}; full/lazy syncs: {}/{}",
        stats.neighborhood_violations,
        stats.safezone_violations,
        stats.full_syncs,
        stats.lazy_syncs
    );
    assert!(
        stats.messages < periodic1.messages,
        "AutoMon should beat Periodic(1) on messages"
    );
}
