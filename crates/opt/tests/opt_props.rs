//! Property tests for the box-constrained optimizer.

use automon_opt::{minimize_box, Bounds, OptimizeOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The minimizer of a random convex quadratic over a random box is
    /// feasible and no worse than the box center.
    #[test]
    fn quadratic_minimizer_is_feasible_and_improving(
        center in proptest::collection::vec(-3.0f64..3.0, 2),
        half in proptest::collection::vec(0.1f64..2.0, 2),
        target in proptest::collection::vec(-4.0f64..4.0, 2),
        scale in proptest::collection::vec(0.5f64..4.0, 2),
    ) {
        let lo: Vec<f64> = center.iter().zip(&half).map(|(c, h)| c - h).collect();
        let hi: Vec<f64> = center.iter().zip(&half).map(|(c, h)| c + h).collect();
        let bounds = Bounds::new(lo, hi);
        let f = |x: &[f64]| -> f64 {
            x.iter()
                .zip(&target)
                .zip(&scale)
                .map(|((xi, t), s)| s * (xi - t) * (xi - t))
                .sum()
        };
        let r = minimize_box(f, &bounds, &OptimizeOptions::default());
        prop_assert!(bounds.contains(&r.x), "{:?}", r.x);
        prop_assert!(r.value <= f(&bounds.center()) + 1e-9);
        // KKT-ish: against the clamped unconstrained optimum.
        let clamped = bounds.project(&target);
        prop_assert!(r.value <= f(&clamped) + 1e-6, "{} vs {}", r.value, f(&clamped));
    }

    /// Same inputs, same result: the multi-start sampling is seeded.
    #[test]
    fn optimizer_is_deterministic(
        target in proptest::collection::vec(-2.0f64..2.0, 2),
    ) {
        let bounds = Bounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let f = |x: &[f64]| -> f64 {
            (x[0] - target[0]).powi(2) + (x[1] - target[1]).powi(4)
        };
        let a = minimize_box(f, &bounds, &OptimizeOptions::default());
        let b = minimize_box(f, &bounds, &OptimizeOptions::default());
        prop_assert_eq!(a.x, b.x);
        prop_assert_eq!(a.value, b.value);
    }
}
