//! Axis-aligned box constraints.

/// An axis-aligned box `[lo₁, hi₁] × … × [lo_d, hi_d]`.
///
/// AutoMon's neighborhood `B` around a reference point `x0` is exactly such
/// a box (paper §3.5): `B = [x0 - r, x0 + r] ∩ D`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Per-coordinate lower bounds.
    pub lo: Vec<f64>,
    /// Per-coordinate upper bounds.
    pub hi: Vec<f64>,
}

impl Bounds {
    /// Create a box; every `lo[i] ≤ hi[i]` must hold.
    ///
    /// # Panics
    /// Panics on mismatched lengths or inverted bounds.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "Bounds: length mismatch");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "Bounds: lo[{i}] = {l} > hi[{i}] = {h}");
        }
        Self { lo, hi }
    }

    /// The box `[c - r, c + r]` around a center point.
    pub fn centered(center: &[f64], r: f64) -> Self {
        assert!(r >= 0.0, "Bounds::centered: negative radius");
        Self {
            lo: center.iter().map(|&c| c - r).collect(),
            hi: center.iter().map(|&c| c + r).collect(),
        }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// The box center.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Project `x` onto the box (coordinate-wise clamp).
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&xi, (&l, &h))| xi.clamp(l, h))
            .collect()
    }

    /// `true` when `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&xi, (&l, &h))| xi >= l && xi <= h)
    }

    /// Intersect with another box of the same dimension.
    ///
    /// Returns `None` when the intersection is empty.
    pub fn intersect(&self, other: &Bounds) -> Option<Bounds> {
        assert_eq!(self.dim(), other.dim(), "intersect: dimension mismatch");
        let lo: Vec<f64> = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.max(b))
            .collect();
        let hi: Vec<f64> = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.min(b))
            .collect();
        if lo.iter().zip(&hi).all(|(&l, &h)| l <= h) {
            Some(Bounds { lo, hi })
        } else {
            None
        }
    }

    /// Length of the longest box edge.
    pub fn max_edge(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| h - l)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_box() {
        let b = Bounds::centered(&[1.0, -1.0], 0.5);
        assert_eq!(b.lo, vec![0.5, -1.5]);
        assert_eq!(b.hi, vec![1.5, -0.5]);
        assert_eq!(b.center(), vec![1.0, -1.0]);
        assert_eq!(b.max_edge(), 1.0);
    }

    #[test]
    fn project_and_contains() {
        let b = Bounds::new(vec![0.0], vec![1.0]);
        assert_eq!(b.project(&[2.0]), vec![1.0]);
        assert_eq!(b.project(&[-2.0]), vec![0.0]);
        assert!(b.contains(&[0.5]));
        assert!(!b.contains(&[1.5]));
        assert!(!b.contains(&[0.5, 0.5])); // wrong dim
    }

    #[test]
    fn intersections() {
        let a = Bounds::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Bounds::new(vec![1.0, -1.0], vec![3.0, 1.0]);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.lo, vec![1.0, 0.0]);
        assert_eq!(c.hi, vec![2.0, 1.0]);
        let disjoint = Bounds::new(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert!(a.intersect(&disjoint).is_none());
    }

    #[test]
    #[should_panic(expected = "lo[0]")]
    fn inverted_bounds_panic() {
        Bounds::new(vec![1.0], vec![0.0]);
    }
}
