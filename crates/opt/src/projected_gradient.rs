//! Projected gradient descent with Armijo backtracking.

use crate::{Bounds, OptimizeOptions, OptimizeResult};

/// Minimize `f` over `bounds` starting from `x0` with projected gradient
/// descent.
///
/// Gradients are central finite differences (the eigenvalue objectives
/// ADCD-X minimizes would need third-order AD for analytic gradients);
/// steps follow the projected arc `P(x - t·g)` with Armijo backtracking.
/// Convergence is declared when the projected step shrinks below
/// `opts.tol` in infinity norm.
pub fn projected_gradient(
    f: &mut impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    bounds: &Bounds,
    opts: &OptimizeOptions,
) -> OptimizeResult {
    let d = bounds.dim();
    assert_eq!(x0.len(), d, "projected_gradient: start has wrong dimension");
    let mut x = bounds.project(x0);
    let mut fx = f(&x);
    let mut evals = 1usize;
    let mut converged = false;
    let mut step = 1.0f64;

    for _ in 0..opts.max_iters {
        // Central-difference gradient, projected-aware at the boundary:
        // shrink the probe step so probes stay in the box.
        let mut g = vec![0.0; d];
        let mut xp = x.clone();
        for i in 0..d {
            let h = opts
                .fd_step
                .min((bounds.hi[i] - bounds.lo[i]) * 0.5)
                .max(f64::MIN_POSITIVE);
            let xi = x[i];
            let up = (xi + h).min(bounds.hi[i]);
            let dn = (xi - h).max(bounds.lo[i]);
            if up <= dn {
                g[i] = 0.0;
                continue;
            }
            xp[i] = up;
            let fp = f(&xp);
            xp[i] = dn;
            let fm = f(&xp);
            xp[i] = xi;
            evals += 2;
            g[i] = (fp - fm) / (up - dn);
        }

        let gnorm = g.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if gnorm <= opts.tol {
            converged = true;
            break;
        }

        // Armijo backtracking along the projected arc.
        let mut t = step.max(1e-12);
        let mut accepted = false;
        for _ in 0..40 {
            let cand: Vec<f64> = bounds.project(
                &x.iter()
                    .zip(&g)
                    .map(|(&xi, &gi)| xi - t * gi)
                    .collect::<Vec<_>>(),
            );
            let fc = f(&cand);
            evals += 1;
            let decrease: f64 = x
                .iter()
                .zip(&cand)
                .zip(&g)
                .map(|((&xi, &ci), &gi)| gi * (xi - ci))
                .sum();
            if fc <= fx - 1e-4 * decrease && fc < fx {
                let moved = x
                    .iter()
                    .zip(&cand)
                    .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
                x = cand;
                fx = fc;
                accepted = true;
                // Grow the trial step slowly for the next iteration.
                step = (t * 2.0).min(1e6);
                if moved <= opts.tol {
                    converged = true;
                }
                break;
            }
            t *= 0.5;
        }
        if !accepted || converged {
            converged = converged || !accepted && gnorm <= opts.tol.max(1e-6);
            break;
        }
    }

    OptimizeResult {
        x,
        value: fx,
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_bowl() {
        let b = Bounds::new(vec![-10.0, -10.0], vec![10.0, 10.0]);
        let mut f = |x: &[f64]| x[0] * x[0] + 10.0 * x[1] * x[1];
        let r = projected_gradient(&mut f, &[5.0, 5.0], &b, &OptimizeOptions::default());
        assert!(r.value < 1e-6, "{:?}", r);
    }

    #[test]
    fn sticks_to_boundary_when_descent_points_out() {
        let b = Bounds::new(vec![1.0], vec![2.0]);
        let mut f = |x: &[f64]| x[0]; // minimized at lo
        let r = projected_gradient(&mut f, &[1.7], &b, &OptimizeOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-9, "{:?}", r);
    }

    #[test]
    fn start_outside_box_is_projected() {
        let b = Bounds::new(vec![0.0], vec![1.0]);
        let mut f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let r = projected_gradient(&mut f, &[50.0], &b, &OptimizeOptions::default());
        assert!((r.x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn reports_eval_count() {
        let b = Bounds::new(vec![0.0], vec![1.0]);
        let mut n = 0usize;
        let mut f = |x: &[f64]| {
            n += 1;
            x[0]
        };
        let r = projected_gradient(&mut f, &[0.5], &b, &OptimizeOptions::default());
        assert_eq!(r.evals, n);
    }
}
