//! Box-constrained numerical optimization substrate for AutoMon.
//!
//! ADCD-X (paper §3.1, eq. 3) needs to solve
//!
//! ```text
//! λ̂_min = min_{x ∈ B} λ_min(H(x))      λ̂_max = max_{x ∈ B} λ_max(H(x))
//! ```
//!
//! over the neighborhood box `B`. The paper's prototype calls SciPy's
//! L-BFGS-B; this crate is the from-scratch Rust replacement. It combines:
//!
//! * [`projected_gradient`] — projected gradient descent with
//!   central-difference gradients and Armijo backtracking, the workhorse
//!   for smooth stretches of the eigenvalue objective;
//! * [`nelder_mead`] — a box-projected Nelder–Mead simplex used to polish
//!   the incumbent, because `λ_min(H(x))` is only piecewise-smooth (it has
//!   kinks at eigenvalue crossings) and derivative-free polish is robust
//!   there;
//! * [`multi_start`] — deterministic multi-start (box center + seeded
//!   uniform samples + box corners in low dimension) feeding both.
//!
//! Like the paper's optimizer, the solver is *local*: there is no global
//! optimality guarantee for non-convex spectra, and AutoMon's protocol
//! layer compensates with its safe-zone sanity check (paper §3.7).

mod bounds;
mod nelder_mead;
mod projected_gradient;

pub use bounds::Bounds;
pub use nelder_mead::nelder_mead;
pub use projected_gradient::projected_gradient;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options shared by the optimization drivers.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Iteration cap per local solve.
    pub max_iters: usize,
    /// Convergence tolerance on the projected-gradient norm / simplex size.
    pub tol: f64,
    /// Finite-difference step for gradient estimates.
    pub fd_step: f64,
    /// Number of random restart points (besides center and corners).
    pub restarts: usize,
    /// Seed for restart sampling (deterministic runs).
    pub seed: u64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tol: 1e-8,
            fd_step: 1e-6,
            restarts: 4,
            seed: 0x5EED,
        }
    }
}

/// Result of a (multi-start) minimization.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Total objective evaluations.
    pub evals: usize,
    /// Whether any local solve met its tolerance.
    pub converged: bool,
}

/// Minimize `f` over the box with multi-start projected gradient +
/// Nelder–Mead polish.
///
/// ```
/// use automon_opt::{minimize_box, Bounds, OptimizeOptions};
///
/// let bounds = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
/// // Unconstrained minimum at (3, 3) — the solver must stop at the corner.
/// let r = minimize_box(
///     |x| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2),
///     &bounds,
///     &OptimizeOptions::default(),
/// );
/// assert!((r.x[0] - 1.0).abs() < 1e-6);
/// assert!((r.x[1] - 1.0).abs() < 1e-6);
/// ```
pub fn minimize_box(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &Bounds,
    opts: &OptimizeOptions,
) -> OptimizeResult {
    let starts = multi_start(bounds, opts);
    let mut best: Option<OptimizeResult> = None;
    let mut total_evals = 0usize;
    let mut any_converged = false;
    for s in &starts {
        let r = projected_gradient(&mut f, s, bounds, opts);
        total_evals += r.evals;
        any_converged |= r.converged;
        if best.as_ref().is_none_or(|b| r.value < b.value) {
            best = Some(r);
        }
    }
    let incumbent = best.expect("multi_start produced no starts");
    // Derivative-free polish from the incumbent: eigenvalue objectives can
    // have kinks that stall gradient steps.
    let polished = nelder_mead(&mut f, &incumbent.x, bounds, opts);
    total_evals += polished.evals;
    let mut out = if polished.value < incumbent.value {
        polished
    } else {
        incumbent
    };
    out.evals = total_evals;
    out.converged = any_converged || out.converged;
    out
}

/// Maximize `f` over the box (minimizes `-f`).
pub fn maximize_box(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &Bounds,
    opts: &OptimizeOptions,
) -> OptimizeResult {
    let mut r = minimize_box(|x| -f(x), bounds, opts);
    r.value = -r.value;
    r
}

/// Deterministic multi-start points: box center, seeded uniform samples,
/// and (for `d ≤ 4`) all corners.
pub fn multi_start(bounds: &Bounds, opts: &OptimizeOptions) -> Vec<Vec<f64>> {
    let d = bounds.dim();
    let mut starts = vec![bounds.center()];
    if d <= 4 {
        for mask in 0..(1usize << d) {
            let corner: Vec<f64> = (0..d)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        bounds.hi[i]
                    } else {
                        bounds.lo[i]
                    }
                })
                .collect();
            starts.push(corner);
        }
    }
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    for _ in 0..opts.restarts {
        let p: Vec<f64> = (0..d)
            .map(|i| {
                if bounds.lo[i] < bounds.hi[i] {
                    rng.gen_range(bounds.lo[i]..=bounds.hi[i])
                } else {
                    bounds.lo[i]
                }
            })
            .collect();
        starts.push(p);
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_shifted_quadratic() {
        let b = Bounds::new(vec![-5.0, -5.0], vec![5.0, 5.0]);
        let r = minimize_box(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
            &b,
            &OptimizeOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r);
        assert!((r.x[1] + 2.0).abs() < 1e-4, "{:?}", r);
        assert!(r.value < 1e-7);
    }

    #[test]
    fn respects_active_bounds() {
        // Unconstrained minimum at (3, 3) lies outside the box.
        let b = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let r = minimize_box(
            |x| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2),
            &b,
            &OptimizeOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn maximize_is_negated_minimize() {
        let b = Bounds::new(vec![-1.0], vec![2.0]);
        let r = maximize_box(|x| -(x[0] - 0.5).powi(2) + 7.0, &b, &OptimizeOptions::default());
        assert!((r.x[0] - 0.5).abs() < 1e-4);
        assert!((r.value - 7.0).abs() < 1e-7);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well with asymmetric depths: global minimum on the right,
        // a shallower local minimum on the left. Descent from the center
        // could fall either way; multi-start must find the global one.
        let well = |x: &[f64]| {
            let t = x[0];
            0.05 * t.powi(4) - 0.4 * t * t + 0.15 * t
        };
        // The +0.15t tilt makes the left well (t ≈ -2.1) the global minimum.
        let b = Bounds::new(vec![-3.0], vec![3.0]);
        let r = minimize_box(well, &b, &OptimizeOptions::default());
        assert!(r.x[0] < 0.0, "expected the deeper left well, got {:?}", r);
        assert!(r.value < -1.0, "{:?}", r);
    }

    #[test]
    fn nonsmooth_objective_polish() {
        // |x - 0.3| has a kink at the minimizer.
        let b = Bounds::new(vec![-1.0], vec![1.0]);
        let r = minimize_box(|x| (x[0] - 0.3).abs(), &b, &OptimizeOptions::default());
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r);
    }

    #[test]
    fn degenerate_point_box() {
        let b = Bounds::new(vec![2.0, 2.0], vec![2.0, 2.0]);
        let r = minimize_box(|x| x[0] + x[1], &b, &OptimizeOptions::default());
        assert_eq!(r.x, vec![2.0, 2.0]);
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn multi_start_points_stay_in_box() {
        let b = Bounds::new(vec![-1.0, 0.0, 2.0], vec![1.0, 0.5, 2.0]);
        for s in multi_start(&b, &OptimizeOptions::default()) {
            assert!(b.contains(&s), "start {s:?} outside box");
        }
    }
}
