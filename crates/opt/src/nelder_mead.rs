//! Box-projected Nelder–Mead simplex search.

use crate::{Bounds, OptimizeOptions, OptimizeResult};

/// Minimize `f` over `bounds` with a Nelder–Mead simplex whose candidate
/// points are projected onto the box.
///
/// Used as the derivative-free polishing stage after projected gradient
/// descent: ADCD-X's objective `λ_min(H(x))` has kinks wherever the two
/// smallest eigenvalues cross, and simplex search is insensitive to them.
pub fn nelder_mead(
    f: &mut impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    bounds: &Bounds,
    opts: &OptimizeOptions,
) -> OptimizeResult {
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let d = bounds.dim();
    assert_eq!(x0.len(), d, "nelder_mead: start has wrong dimension");
    let mut evals = 0usize;
    let eval = |f: &mut dyn FnMut(&[f64]) -> f64, evals: &mut usize, x: &[f64]| {
        *evals += 1;
        f(x)
    };

    // Initial simplex: start point plus a per-axis offset scaled to the box.
    let x0 = bounds.project(x0);
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(d + 1);
    simplex.push(x0.clone());
    for i in 0..d {
        let span = (bounds.hi[i] - bounds.lo[i]).max(1e-12);
        let mut p = x0.clone();
        let delta = 0.05 * span;
        p[i] = if p[i] + delta <= bounds.hi[i] {
            p[i] + delta
        } else {
            p[i] - delta
        };
        simplex.push(bounds.project(&p));
    }
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|p| eval(f, &mut evals, p))
        .collect();

    let mut converged = false;
    for _ in 0..opts.max_iters {
        // Order ascending by value.
        let mut order: Vec<usize> = (0..=d).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
        let best = order[0];
        let worst = order[d];
        let second_worst = order[d.saturating_sub(1)];

        // Convergence: simplex diameter below tolerance.
        let diameter = simplex
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&simplex[best])
                    .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
            })
            .fold(0.0, f64::max);
        if diameter <= opts.tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; d];
        for (k, p) in simplex.iter().enumerate() {
            if k == worst {
                continue;
            }
            for i in 0..d {
                centroid[i] += p[i];
            }
        }
        for c in &mut centroid {
            *c /= d as f64;
        }

        let blend = |t: f64| -> Vec<f64> {
            bounds.project(
                &centroid
                    .iter()
                    .zip(&simplex[worst])
                    .map(|(&c, &w)| c + t * (c - w))
                    .collect::<Vec<_>>(),
            )
        };

        let reflected = blend(ALPHA);
        let fr = eval(f, &mut evals, &reflected);
        if fr < values[best] {
            let expanded = blend(GAMMA);
            let fe = eval(f, &mut evals, &expanded);
            if fe < fr {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = fr;
        } else {
            let contracted = blend(-RHO);
            let fc = eval(f, &mut evals, &contracted);
            if fc < values[worst] {
                simplex[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for k in 0..=d {
                    if k == best {
                        continue;
                    }
                    let shrunk: Vec<f64> = simplex[k]
                        .iter()
                        .zip(&best_point)
                        .map(|(&p, &b)| b + SIGMA * (p - b))
                        .collect();
                    simplex[k] = bounds.project(&shrunk);
                    values[k] = eval(f, &mut evals, &simplex[k]);
                }
            }
        }
    }

    let (bi, bv) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
        .expect("non-empty simplex");
    OptimizeResult {
        x: simplex[bi].clone(),
        value: *bv,
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_rosenbrock_in_box() {
        let b = Bounds::new(vec![-2.0, -2.0], vec![2.0, 2.0]);
        let mut f = |x: &[f64]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        };
        let opts = OptimizeOptions {
            max_iters: 2000,
            tol: 1e-10,
            ..Default::default()
        };
        let r = nelder_mead(&mut f, &[-1.0, 1.0], &b, &opts);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r);
        assert!((r.x[1] - 1.0).abs() < 1e-3, "{:?}", r);
    }

    #[test]
    fn handles_nonsmooth_objective() {
        let b = Bounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let mut f = |x: &[f64]| x[0].abs() + (x[1] - 0.5).abs();
        let r = nelder_mead(&mut f, &[0.9, -0.9], &b, &OptimizeOptions::default());
        assert!(r.x[0].abs() < 1e-3, "{:?}", r);
        assert!((r.x[1] - 0.5).abs() < 1e-3, "{:?}", r);
    }

    #[test]
    fn stays_inside_box() {
        let b = Bounds::new(vec![0.0], vec![1.0]);
        let mut f = |x: &[f64]| -x[0]; // pushes toward hi
        let r = nelder_mead(&mut f, &[0.1], &b, &OptimizeOptions::default());
        assert!(r.x[0] <= 1.0 + 1e-12);
        assert!((r.x[0] - 1.0).abs() < 1e-6);
    }
}
