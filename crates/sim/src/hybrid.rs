//! Hybrid monitoring: AutoMon with an automatic Periodic fallback.
//!
//! The paper's §6 suggests "switching on the fly to other monitoring
//! approaches (e.g. Periodic)" when AutoMon's constraints thrash — e.g.
//! when extreme curvature makes safe zones so small that every round
//! violates. This runner implements that policy:
//!
//! * run AutoMon normally, tracking the violation rate over a sliding
//!   window of rounds;
//! * when the rate exceeds `switch_threshold`, drop to Periodic mode for
//!   `cooldown` rounds (every node ships its vector every `period`
//!   rounds; the coordinator's estimate is exact-but-stale);
//! * after the cooldown, re-enter AutoMon with a fresh full sync.

use std::collections::VecDeque;
use std::sync::Arc;

use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage};
use automon_linalg::vector;
use automon_net::{wire, CountingFabric};

use crate::stats::RunStats;
use crate::workload::Workload;

/// Policy knobs for the hybrid runner.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Violation-per-round rate (over `rate_window` rounds) that triggers
    /// the fallback.
    pub switch_threshold: f64,
    /// Rounds over which the violation rate is measured.
    pub rate_window: usize,
    /// Periodic reporting period while in fallback mode.
    pub period: usize,
    /// Rounds to stay in fallback before re-trying AutoMon.
    pub cooldown: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            switch_threshold: 0.8,
            rate_window: 25,
            period: 1,
            cooldown: 50,
        }
    }
}

/// Statistics specific to the hybrid policy.
#[derive(Debug, Clone, Default)]
pub struct HybridStats {
    /// The underlying run statistics.
    pub run: RunStats,
    /// Number of AutoMon → Periodic switches.
    pub fallbacks: usize,
    /// Rounds spent in Periodic mode.
    pub periodic_rounds: usize,
}

/// Run the hybrid policy over a workload.
pub fn run_hybrid(
    f: &Arc<dyn MonitoredFunction>,
    workload: &Workload,
    cfg: MonitorConfig,
    hybrid: HybridConfig,
) -> HybridStats {
    assert!(hybrid.period > 0, "run_hybrid: period must be positive");
    let n = workload.nodes();
    let mut coord = Coordinator::new(f.clone(), n, cfg.clone());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    let mut fabric = CountingFabric::new().with_parallelism(coord.parallelism());

    let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut errors = Vec::new();
    let mut recent_violations: VecDeque<usize> = VecDeque::new();
    let mut fallbacks = 0usize;
    let mut periodic_rounds = 0usize;
    let mut periodic_until: Option<usize> = None;
    // Extra (periodic-mode) traffic accounted separately from the fabric.
    let mut extra_msgs = 0usize;
    let mut extra_bytes = 0usize;
    let mut periodic_estimate: Option<f64> = None;
    let mut missed = 0usize;

    for t in 0..workload.rounds() {
        let mut round_violations = 0usize;
        let in_fallback = periodic_until.is_some_and(|until| t < until);

        for (node, x) in workload.updates(t) {
            current[*node] = Some(x.clone());
            if in_fallback {
                // Nodes stay silent; the periodic shipper below reports.
                continue;
            }
            if let Some(m) = nodes[*node].update_data(x.clone()) {
                if matches!(m, NodeMessage::Violation { .. }) {
                    round_violations += 1;
                }
                fabric.route(&mut coord, &mut nodes, m);
            }
        }

        if in_fallback {
            periodic_rounds += 1;
            if t % hybrid.period == 0 {
                for (i, cur) in current.iter().enumerate() {
                    if let Some(x) = cur {
                        let frame = wire::encode_node_message(&NodeMessage::LocalVector {
                            node: i,
                            vector: x.clone(),
                            epoch: 0,
                        });
                        extra_msgs += 1;
                        extra_bytes += frame.len();
                    }
                }
                if current.iter().all(Option::is_some) {
                    let xs: Vec<Vec<f64>> =
                        current.iter().map(|x| x.clone().expect("present")).collect();
                    periodic_estimate = Some(f.eval(&vector::mean(&xs).expect("n > 0")));
                }
            }
            if periodic_until == Some(t + 1) {
                // Cooldown over: resync AutoMon on fresh vectors by
                // replaying the current state as data updates.
                periodic_until = None;
                for i in 0..n {
                    if let Some(x) = current[i].clone() {
                        if let Some(m) = nodes[i].update_data(x) {
                            fabric.route(&mut coord, &mut nodes, m);
                        }
                    }
                }
            }
        } else {
            // Violation-rate bookkeeping and switch decision.
            recent_violations.push_back(round_violations);
            if recent_violations.len() > hybrid.rate_window {
                recent_violations.pop_front();
            }
            if recent_violations.len() == hybrid.rate_window {
                let rate = recent_violations.iter().sum::<usize>() as f64
                    / hybrid.rate_window as f64;
                if rate > hybrid.switch_threshold {
                    periodic_until = Some(t + 1 + hybrid.cooldown);
                    fallbacks += 1;
                    recent_violations.clear();
                }
            }
        }

        // Error measurement against the active estimate.
        let estimate = if in_fallback {
            periodic_estimate
        } else {
            coord.current_value()
        };
        if let (true, Some(est)) = (current.iter().all(Option::is_some), estimate) {
            let xs: Vec<Vec<f64>> =
                current.iter().map(|x| x.clone().expect("present")).collect();
            let truth = f.eval(&vector::mean(&xs).expect("n > 0"));
            errors.push((est - truth).abs());
            if !in_fallback {
                if let Some(zone) = coord.zone() {
                    if !zone.admissible(truth) {
                        missed += 1;
                    }
                }
            }
        }
    }

    let st = coord.stats();
    let traffic = fabric.stats();
    let mut run = RunStats {
        messages: traffic.total_msgs() + extra_msgs,
        payload_bytes: traffic.total_payload() + extra_bytes,
        missed_violation_rounds: missed,
        neighborhood_violations: st.neighborhood_violations,
        safezone_violations: st.safezone_violations,
        faulty_reports: st.faulty_reports,
        full_syncs: st.full_syncs,
        lazy_syncs: st.lazy_syncs,
        trace: None,
        ..RunStats::default()
    };
    run.set_errors(errors);
    HybridStats {
        run,
        fallbacks,
        periodic_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Mean1))
    }

    #[test]
    fn quiet_data_never_falls_back() {
        let series: Vec<Vec<Vec<f64>>> = (0..3).map(|_| vec![vec![1.0]; 100]).collect();
        let w = Workload::from_dense(&series);
        let stats = run_hybrid(
            &f(),
            &w,
            MonitorConfig::builder(0.5).build(),
            HybridConfig::default(),
        );
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.periodic_rounds, 0);
        assert_eq!(stats.run.max_error, 0.0);
    }

    #[test]
    fn thrashing_data_triggers_fallback() {
        // ε tiny + rapidly moving aggregate → violation every round.
        let series: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|i| {
                (0..200)
                    .map(|t| vec![t as f64 * 0.5 + i as f64])
                    .collect()
            })
            .collect();
        let w = Workload::from_dense(&series);
        let hybrid = HybridConfig {
            switch_threshold: 0.5,
            rate_window: 10,
            period: 1,
            cooldown: 40,
        };
        let stats = run_hybrid(&f(), &w, MonitorConfig::builder(1e-3).build(), hybrid);
        assert!(stats.fallbacks >= 1, "{stats:?}");
        assert!(stats.periodic_rounds > 0);
        // With period 1 the fallback estimate is exact, so error stays
        // bounded even while thrashing.
        assert!(stats.run.max_error <= 2.0, "{stats:?}");
    }

    #[test]
    fn fallback_resumes_automon_after_cooldown() {
        // Thrash for the first half, then go quiet.
        let series: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|i| {
                (0..300)
                    .map(|t| {
                        if t < 100 {
                            vec![t as f64 * 1.0 + i as f64]
                        } else {
                            vec![100.0 + i as f64]
                        }
                    })
                    .collect()
            })
            .collect();
        let w = Workload::from_dense(&series);
        let hybrid = HybridConfig {
            switch_threshold: 0.5,
            rate_window: 10,
            period: 1,
            cooldown: 30,
        };
        let stats = run_hybrid(&f(), &w, MonitorConfig::builder(0.01).build(), hybrid);
        assert!(stats.fallbacks >= 1);
        // After the quiet stretch begins, AutoMon resumes: periodic
        // rounds must be far fewer than the total.
        assert!(
            stats.periodic_rounds < 200,
            "stuck in fallback: {stats:?}"
        );
    }
}
