//! Lockstep simulation of the reactor transport: the protocol over
//! `Reactor<SimPoller>` with chaos at the frame boundary.
//!
//! Where [`crate::Simulation`] routes messages through the in-process
//! fabric and [`crate::ChaosSimulation`] through the fault-injecting
//! fabric, [`NetSimulation`] routes them through the *real transport
//! state machines*: every report is encoded to wire bytes, pushed down
//! a simulated duplex pipe with seeded read-chunking and short writes,
//! reassembled by the reactor's frame coalescer, gated by the same
//! seeded fault ladder the chaos fabric uses ([`LadderGate`]), and only
//! then handled by the coordinator. Replies take the mirrored path back
//! through the reactor's `writev` batching.
//!
//! Everything is seeded and single-threaded, so a run is a pure
//! function of `(seed, plan, workload)`: same inputs ⇒ byte-identical
//! JSONL trace and identical [`RunStats`] — the determinism contract CI
//! smoke-checks (`scripts/ci.sh` step 12). Because the protocol-visible
//! outcome depends only on frame *contents and order* (not on how bytes
//! were chunked in transit), a fault-free run also produces the same
//! protocol decisions the threaded TCP backend reaches over real
//! sockets — the backend-parity half of the smoke.
//!
//! The ladder gates the coordinator's inbound frame boundary (reports
//! and pull replies); timed crashes and partitions remain the
//! in-process chaos fabric's domain.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use automon_chaos::{FaultPlan, GateCounts, LadderGate};
use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage, Outbound};
use automon_linalg::vector;
use automon_net::reactor::{Reactor, ReactorConfig, ReactorTraffic};
use automon_net::sim_poller::{SimClient, SimNet, SimPoller};
use automon_net::tcp::TcpError;
use automon_net::{wire, FrameGate, GateVerdict, SyscallStats};
use automon_obs::SpanId;

use crate::stats::RunStats;
use crate::workload::Workload;

/// Retransmit base interval, in rounds.
const RETRANSMIT_AFTER: usize = 2;
/// Retransmit backoff cap, in rounds.
const MAX_BACKOFF: usize = 32;
/// Post-workload drain budget before declaring non-quiescence.
const MAX_RECOVERY_ROUNDS: usize = 256;
/// Idle pump iterations that count as in-round quiescence.
const IDLE_ITERS: usize = 4;

/// A [`LadderGate`] that mirrors its fault tally into a shared cell the
/// harness can read after the gate is boxed into the reactor.
struct SharedLadder {
    inner: LadderGate,
    counts: Arc<Mutex<GateCounts>>,
}

impl FrameGate for SharedLadder {
    fn gate(&mut self, immune: bool) -> GateVerdict {
        let v = self.inner.gate(immune);
        *self.counts.lock().unwrap_or_else(|e| e.into_inner()) = self.inner.counts();
        v
    }
}

/// Everything one reactor-path run produces.
#[derive(Debug, Clone)]
pub struct NetRunReport {
    /// Protocol-level outcome (errors, syncs, traffic totals).
    pub stats: RunStats,
    /// JSONL event trace; byte-identical for identical `(seed, plan,
    /// workload)`.
    pub trace: String,
    /// Simulated-syscall counts from the poller (reads, writevs, waits).
    pub syscalls: SyscallStats,
    /// Frame/byte counts from the reactor core.
    pub traffic: ReactorTraffic,
    /// Faults the ladder injected.
    pub faults: GateCounts,
    /// `false` if the protocol failed to quiesce inside the drain
    /// budget.
    pub quiesced: bool,
}

/// The reactor-transport simulation harness.
pub struct NetSimulation {
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    plan: FaultPlan,
    /// Seed for the transport's chunking schedule (independent of the
    /// plan's fault seed).
    net_seed: u64,
    max_read_chunk: usize,
    client_buf_cap: usize,
}

impl NetSimulation {
    /// A simulation of `f` under `cfg` with a fault-free transport.
    pub fn new(f: Arc<dyn MonitoredFunction>, cfg: MonitorConfig) -> Self {
        Self {
            f,
            cfg,
            plan: FaultPlan::none(),
            net_seed: 0,
            max_read_chunk: 97,
            client_buf_cap: 1 << 14,
        }
    }

    /// Install a fault plan; its per-frame ladder gates the
    /// coordinator's inbound frames. Timed crashes and partitions are
    /// not simulated on this path.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        debug_assert!(
            plan.crashes.is_empty() && plan.partitions.is_empty(),
            "netsim gates frames; crashes/partitions belong to ChaosSimulation"
        );
        self.plan = plan;
        self
    }

    /// Seed the transport's read-chunk/short-write schedule.
    pub fn with_net_seed(mut self, seed: u64) -> Self {
        self.net_seed = seed;
        self
    }

    /// Bound the simulated read chunks and client buffer (smaller
    /// values exercise more frame splits and partial writes).
    pub fn with_limits(mut self, max_read_chunk: usize, client_buf_cap: usize) -> Self {
        self.max_read_chunk = max_read_chunk;
        self.client_buf_cap = client_buf_cap;
        self
    }

    /// Run the workload over the simulated reactor transport.
    pub fn run(&self, workload: &Workload) -> NetRunReport {
        let n = workload.nodes();
        let mut coord = Coordinator::new(self.f.clone(), n, self.cfg.clone());
        let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, self.f.clone())).collect();

        let net = SimNet::with_limits(self.net_seed, self.max_read_chunk, self.client_buf_cap);
        let mut reactor = Reactor::new(
            net.poller(),
            Some(net.listener()),
            ReactorConfig::new(n),
        )
        .expect("sim reactor never fails to build");
        let fault_counts = Arc::new(Mutex::new(GateCounts::default()));
        reactor.set_gate(Box::new(SharedLadder {
            inner: LadderGate::new(&self.plan),
            counts: fault_counts.clone(),
        }));

        // Connect + hello each node, in id order.
        let clients: Vec<SimClient> = (0..n).map(|_| net.connect()).collect();
        for (i, c) in clients.iter().enumerate() {
            let hello = wire::encode_node_message(&NodeMessage::LocalVector {
                node: i,
                vector: Vec::new(),
                epoch: 0,
            });
            assert!(c.send_frame(&hello), "fresh connection accepts the hello");
        }
        while reactor.connected_count() < n {
            reactor
                .poll_once(Some(Duration::ZERO))
                .expect("sim poll never fails");
            // Hellos must never hit the fault ladder; the reactor
            // consumes them pre-gate.
        }

        let mut trace = String::new();
        let mut messages = 0usize;
        let mut payload_bytes = 0usize;
        let mut retransmits = 0usize;
        let mut pending_out: VecDeque<Outbound> = VecDeque::new();

        let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut errors = Vec::with_capacity(workload.rounds());
        let mut missed = 0usize;

        let mut node_retry_at = vec![RETRANSMIT_AFTER; n];
        let mut node_interval = vec![RETRANSMIT_AFTER; n];
        let mut coord_retry_at = RETRANSMIT_AFTER;
        let mut coord_interval = RETRANSMIT_AFTER;

        let total = workload.rounds();
        let mut recovery_rounds = 0usize;
        let mut t = 0usize;
        let quiesced = loop {
            if t >= total {
                let quiet = !coord.is_resolving()
                    && reactor.delayed_frames() == 0
                    && pending_out.is_empty()
                    && nodes.iter().all(|nd| !nd.is_pending());
                if quiet {
                    break true;
                }
                if recovery_rounds >= MAX_RECOVERY_ROUNDS {
                    break false;
                }
                recovery_rounds += 1;
            }
            reactor.begin_round(t);

            if t < total {
                for (node, x) in workload.updates(t) {
                    current[*node] = Some(x.clone());
                    if let Some(m) = nodes[*node].update_data(x.clone()) {
                        send_report(&clients[*node], &m, t, &mut trace, &mut messages, &mut payload_bytes);
                        // Resolve each report before the next node
                        // updates, exactly like the in-process fabric's
                        // `route_as`: protocol event order then depends
                        // only on the workload and the fault ladder,
                        // never on how bytes were chunked in transit.
                        self.pump(
                            &mut reactor,
                            &mut coord,
                            &mut nodes,
                            &clients,
                            &mut pending_out,
                            t,
                            &mut trace,
                            &mut messages,
                            &mut payload_bytes,
                        );
                    }
                }
            }

            // Matured delayed frames and backpressured leftovers drain
            // even on rounds with no fresh report.
            self.pump(
                &mut reactor,
                &mut coord,
                &mut nodes,
                &clients,
                &mut pending_out,
                t,
                &mut trace,
                &mut messages,
                &mut payload_bytes,
            );

            // Retransmission with exponential backoff, both directions —
            // dropped frames must not wedge the protocol.
            for i in 0..n {
                if nodes[i].is_pending() {
                    if t >= node_retry_at[i] {
                        if let Some(m) = nodes[i].retransmit_report() {
                            retransmits += 1;
                            trace.push_str(&format!(
                                "{{\"round\":{t},\"ev\":\"retransmit_report\",\"node\":{i}}}\n"
                            ));
                            send_report(&clients[i], &m, t, &mut trace, &mut messages, &mut payload_bytes);
                        }
                        node_interval[i] = (node_interval[i] * 2).min(MAX_BACKOFF);
                        node_retry_at[i] = t + node_interval[i];
                    }
                } else {
                    node_interval[i] = RETRANSMIT_AFTER;
                    node_retry_at[i] = t + RETRANSMIT_AFTER;
                }
            }
            let mut repump = false;
            if coord.is_resolving() {
                if t >= coord_retry_at {
                    let outs = coord.outstanding_requests();
                    retransmits += outs.len();
                    trace.push_str(&format!(
                        "{{\"round\":{t},\"ev\":\"retransmit_pulls\",\"count\":{}}}\n",
                        outs.len()
                    ));
                    pending_out.extend(outs);
                    coord_interval = (coord_interval * 2).min(MAX_BACKOFF);
                    coord_retry_at = t + coord_interval;
                    repump = true;
                }
            } else {
                coord_interval = RETRANSMIT_AFTER;
                coord_retry_at = t + RETRANSMIT_AFTER;
            }
            if repump {
                self.pump(
                    &mut reactor,
                    &mut coord,
                    &mut nodes,
                    &clients,
                    &mut pending_out,
                    t,
                    &mut trace,
                    &mut messages,
                    &mut payload_bytes,
                );
            }

            // Measure against ground truth once every node has data.
            if t < total && current.iter().all(Option::is_some) {
                if let Some(est) = coord.current_value() {
                    let xs: Vec<Vec<f64>> =
                        current.iter().map(|x| x.clone().expect("present")).collect();
                    let truth = self.f.eval(&vector::mean(&xs).expect("n > 0"));
                    errors.push((est - truth).abs());
                    if let Some(zone) = coord.zone() {
                        if !zone.admissible(truth) {
                            missed += 1;
                        }
                    }
                }
            }
            t += 1;
        };

        let st = coord.stats();
        let faults = *fault_counts.lock().unwrap_or_else(|e| e.into_inner());
        let mut stats = RunStats {
            messages,
            payload_bytes,
            missed_violation_rounds: missed,
            neighborhood_violations: st.neighborhood_violations,
            safezone_violations: st.safezone_violations,
            faulty_reports: st.faulty_reports,
            full_syncs: st.full_syncs,
            lazy_syncs: st.lazy_syncs,
            retransmits,
            injected_faults: faults.injected() as usize,
            recovery_rounds,
            ..RunStats::default()
        };
        stats.set_errors(errors);
        NetRunReport {
            stats,
            trace,
            syscalls: reactor.syscalls(),
            traffic: reactor.traffic(),
            faults,
            quiesced,
        }
    }

    /// Exchange frames until the round is quiescent: reactor inbound →
    /// coordinator → reactor outbound → clients → node replies → back
    /// in, with queued outbounds retried as backpressure relieves.
    #[allow(clippy::too_many_arguments)]
    fn pump(
        &self,
        reactor: &mut Reactor<SimPoller>,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        clients: &[SimClient],
        pending_out: &mut VecDeque<Outbound>,
        t: usize,
        trace: &mut String,
        messages: &mut usize,
        payload_bytes: &mut usize,
    ) {
        let mut idle = 0usize;
        while idle < IDLE_ITERS {
            reactor
                .poll_once(Some(Duration::ZERO))
                .expect("sim poll never fails");
            let mut progress = false;

            // Mirror transport backpressure into the protocol layer so
            // lazy-sync growth prefers responsive nodes.
            for i in 0..nodes.len() {
                coord.set_backpressured(i, reactor.node_backpressured(i));
            }

            // Backpressured outbounds from earlier iterations first.
            for _ in 0..pending_out.len() {
                let out = pending_out.pop_front().expect("len checked");
                match reactor.enqueue(&out) {
                    Ok(()) => {
                        progress = true;
                        trace_out(trace, t, &out, messages, payload_bytes);
                    }
                    Err(TcpError::Backpressured(_)) => pending_out.push_back(out),
                    Err(_) => { /* node gone: drop, retransmit logic recovers */ }
                }
            }

            while let Some((_span, m)) = reactor.pop_inbound() {
                progress = true;
                *messages += 1;
                trace.push_str(&format!(
                    "{{\"round\":{t},\"ev\":\"deliver\",\"node\":{},\"kind\":\"{}\"}}\n",
                    m.sender(),
                    node_msg_kind(&m),
                ));
                for out in coord.handle(m) {
                    match reactor.enqueue(&out) {
                        Ok(()) => trace_out(trace, t, &out, messages, payload_bytes),
                        Err(TcpError::Backpressured(_)) => pending_out.push_back(out),
                        Err(_) => {}
                    }
                }
            }

            reactor.flush_all();

            for (i, c) in clients.iter().enumerate() {
                for frame in c.recv_frames() {
                    progress = true;
                    let (_, cm) = wire::decode_coordinator_message_ctx(&frame)
                        .expect("reactor emits valid frames");
                    if let Some(reply) = nodes[i].handle(cm) {
                        send_report(c, &reply, t, trace, messages, payload_bytes);
                    }
                }
            }

            if progress {
                idle = 0;
            } else {
                idle += 1;
            }
        }
    }
}

fn node_msg_kind(m: &NodeMessage) -> &'static str {
    match m {
        NodeMessage::Violation { .. } => "violation",
        NodeMessage::LocalVector { .. } => "local_vector",
    }
}

fn coord_msg_kind(out: &Outbound) -> &'static str {
    use automon_core::CoordinatorMessage as C;
    match out.msg {
        C::RequestLocalVector { .. } => "pull",
        C::NewConstraints { .. } => "new_constraints",
        C::NewConstraintsCached { .. } => "new_constraints_cached",
        C::SlackUpdate { .. } => "slack_update",
    }
}

fn trace_out(trace: &mut String, t: usize, out: &Outbound, messages: &mut usize, bytes: &mut usize) {
    let len = wire::encode_coordinator_message_ctx(&out.msg, out.span).len();
    *messages += 1;
    *bytes += len;
    trace.push_str(&format!(
        "{{\"round\":{t},\"ev\":\"send\",\"to\":{},\"kind\":\"{}\",\"bytes\":{len}}}\n",
        out.to,
        coord_msg_kind(out),
    ));
}

fn send_report(
    client: &SimClient,
    m: &NodeMessage,
    t: usize,
    trace: &mut String,
    messages: &mut usize,
    bytes: &mut usize,
) {
    let frame = wire::encode_node_message_ctx(m, SpanId::NONE);
    *messages += 1;
    *bytes += frame.len();
    trace.push_str(&format!(
        "{{\"round\":{t},\"ev\":\"report\",\"node\":{},\"kind\":\"{}\",\"bytes\":{}}}\n",
        m.sender(),
        node_msg_kind(m),
        frame.len(),
    ));
    // A report to a dropped server connection is lost — like a send on
    // a dead socket — and recovered by the retransmit path.
    let _ = client.send_frame(&frame);
}
