//! Workloads: per-round local-vector update schedules.

/// A monitoring workload: which node installs which local vector in each
/// simulation round.
///
/// Two shapes from the paper (§4.1):
/// * **dense** — every node updates every round (all synthetic datasets
///   and KLD);
/// * **event-driven** — one node updates per round, following record
///   timestamps (the DNN intrusion stream).
///
/// ```
/// use automon_sim::Workload;
///
/// let series = vec![
///     vec![vec![1.0], vec![2.0]], // node 0's local vectors per round
///     vec![vec![5.0], vec![6.0]], // node 1's
/// ];
/// let w = Workload::from_dense(&series);
/// assert_eq!(w.nodes(), 2);
/// assert_eq!(w.rounds(), 2);
/// assert_eq!(w.updates(1), &[(0, vec![2.0]), (1, vec![6.0])]);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    n: usize,
    dim: usize,
    /// `rounds[t]` lists `(node, new_local_vector)` updates of round `t`.
    rounds: Vec<Vec<(usize, Vec<f64>)>>,
}

impl Workload {
    /// Dense workload from per-node series (`series[node][round]`).
    ///
    /// Ragged series are allowed: a node whose series ends simply stops
    /// updating.
    ///
    /// # Panics
    /// Panics when `series` is empty or vectors disagree in dimension.
    pub fn from_dense(series: &[Vec<Vec<f64>>]) -> Self {
        let n = series.len();
        assert!(n > 0, "Workload: need at least one node");
        let dim = series
            .iter()
            .flat_map(|s| s.first())
            .map(Vec::len)
            .next()
            .expect("Workload: all series empty");
        let total_rounds = series.iter().map(Vec::len).max().unwrap_or(0);
        let mut rounds = Vec::with_capacity(total_rounds);
        for t in 0..total_rounds {
            let mut updates = Vec::new();
            for (i, s) in series.iter().enumerate() {
                if let Some(x) = s.get(t) {
                    assert_eq!(x.len(), dim, "Workload: dimension mismatch");
                    updates.push((i, x.clone()));
                }
            }
            rounds.push(updates);
        }
        Self { n, dim, rounds }
    }

    /// Event-driven workload: one `(node, vector)` update per round.
    ///
    /// # Panics
    /// Panics on empty events, node ids ≥ `n`, or dimension mismatches.
    pub fn from_events(n: usize, events: &[(usize, Vec<f64>)]) -> Self {
        assert!(!events.is_empty(), "Workload: no events");
        let dim = events[0].1.len();
        let rounds = events
            .iter()
            .map(|(node, x)| {
                assert!(*node < n, "Workload: node {node} out of range");
                assert_eq!(x.len(), dim, "Workload: dimension mismatch");
                vec![(*node, x.clone())]
            })
            .collect();
        Self { n, dim, rounds }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Local-vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of simulation rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The updates of round `t`.
    pub fn updates(&self, t: usize) -> &[(usize, Vec<f64>)] {
        &self.rounds[t]
    }

    /// A workload containing only the first `k` rounds (tuning prefixes).
    pub fn prefix(&self, k: usize) -> Workload {
        Workload {
            n: self.n,
            dim: self.dim,
            rounds: self.rounds[..k.min(self.rounds.len())].to_vec(),
        }
    }

    /// Convert to per-node series (`out[node][k]` = k-th update), the
    /// shape `automon_core::tuning` consumes.
    pub fn to_node_series(&self) -> Vec<Vec<Vec<f64>>> {
        let mut out = vec![Vec::new(); self.n];
        for round in &self.rounds {
            for (node, x) in round {
                out[*node].push(x.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_workload_round_structure() {
        let series = vec![
            vec![vec![1.0], vec![2.0]],
            vec![vec![10.0], vec![20.0], vec![30.0]],
        ];
        let w = Workload::from_dense(&series);
        assert_eq!(w.nodes(), 2);
        assert_eq!(w.dim(), 1);
        assert_eq!(w.rounds(), 3);
        assert_eq!(w.updates(0).len(), 2);
        assert_eq!(w.updates(2), &[(1, vec![30.0])]);
    }

    #[test]
    fn event_workload_single_update_per_round() {
        let events = vec![(0, vec![1.0, 2.0]), (2, vec![3.0, 4.0])];
        let w = Workload::from_events(3, &events);
        assert_eq!(w.rounds(), 2);
        assert_eq!(w.updates(1), &[(2, vec![3.0, 4.0])]);
    }

    #[test]
    fn prefix_and_series_round_trip() {
        let series = vec![vec![vec![1.0], vec![2.0], vec![3.0]]];
        let w = Workload::from_dense(&series);
        assert_eq!(w.prefix(2).rounds(), 2);
        assert_eq!(w.to_node_series(), series);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_id_rejected() {
        Workload::from_events(1, &[(3, vec![1.0])]);
    }
}
