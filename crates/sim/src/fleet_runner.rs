//! The two-tier fleet simulation runner (DESIGN.md §3.14).

use std::sync::Arc;

use automon_core::{MonitorConfig, MonitoredFunction};
use automon_fleet::{compose, Fleet, FleetConfig, FleetFaultPlan};
use automon_obs::Telemetry;
use serde::Serialize;

use crate::runner::ERROR_BOUNDS;
use crate::stats::RunStats;
use crate::workload::Workload;

/// Aggregated results of one fleet run: the flat [`RunStats`] surface
/// (errors, totals, combined two-tier ledger) plus the per-tier split
/// the hierarchy exists to improve.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FleetReport {
    /// Shards (leaf coordinators) the fleet started with.
    pub shards: usize,
    /// Global streams the fleet started with.
    pub streams: usize,
    /// Data updates pushed through the hierarchy.
    pub updates: usize,
    /// Messages on the root tier only (leaf↔root traffic) — the
    /// volume that must stay sublinear in the stream count.
    pub root_messages: usize,
    /// Payload bytes on the root tier only.
    pub root_payload_bytes: usize,
    /// Messages inside the leaf tiers (intra-shard traffic).
    pub leaf_messages: usize,
    /// Payload bytes inside the leaf tiers.
    pub leaf_payload_bytes: usize,
    /// Leaf→root reports (tier-boundary crossings).
    pub leaf_reports: u64,
    /// Shard rebalances after leaf crashes.
    pub rebalances: u64,
    /// Node crashes applied from the fault plan.
    pub node_crashes: u64,
    /// Node restarts applied from the fault plan.
    pub restarts: u64,
    /// Leaf crashes applied from the fault plan.
    pub leaf_crashes: u64,
    /// Flat run surface: errors, grand totals (`messages`,
    /// `payload_bytes` = both tiers), coordinator counters summed over
    /// every leaf, and the *combined* two-tier per-cause ledger.
    pub stats: RunStats,
}

/// A configured fleet simulation: the flat harness's round loop, but
/// updates route into per-shard leaf coordinators and only resolved
/// shard-aggregate movement crosses to the root.
pub struct FleetSimulation {
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    fleet_cfg: FleetConfig,
    plan: FleetFaultPlan,
    telemetry: Telemetry,
}

impl FleetSimulation {
    /// A fleet simulation of `f` under `cfg`, sharded per `fleet_cfg`.
    pub fn new(f: Arc<dyn MonitoredFunction>, cfg: MonitorConfig, fleet_cfg: FleetConfig) -> Self {
        Self {
            f,
            cfg,
            fleet_cfg,
            plan: FleetFaultPlan::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Apply a deterministic membership-fault schedule each round.
    pub fn with_fault_plan(mut self, plan: FleetFaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Thread an observability handle through both tiers. The round
    /// loop is sequential, so same workload + config + plan ⇒
    /// byte-identical trace.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// Run the workload to completion.
    pub fn run(&self, workload: &Workload) -> FleetReport {
        let n = workload.nodes();
        let mut fleet = Fleet::new(self.f.clone(), n, self.cfg.clone(), self.fleet_cfg.clone())
            .with_telemetry(self.telemetry.clone());

        let g_estimate = self
            .telemetry
            .gauge("automon_fleet_estimate", "Root-side f(x0) this round");
        let g_truth = self
            .telemetry
            .gauge("automon_fleet_truth", "True f(global mean) this round");
        let h_error = self.telemetry.histogram(
            "automon_fleet_abs_error",
            "Per-round |root estimate - truth|",
            ERROR_BOUNDS,
        );

        let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut errors = Vec::new();
        let mut updates = 0usize;

        for t in 0..workload.rounds() {
            self.telemetry.set_round(t as u64);
            fleet.set_round(t as u64);
            fleet.apply_faults(&self.plan, t as u64);
            for (node, x) in workload.updates(t) {
                if !fleet.stream_is_alive(*node) {
                    continue;
                }
                current[*node] = Some(x.clone());
                updates += 1;
                fleet.update(*node, x.clone());
            }

            let (estimate, truth) = (fleet.estimate(), self.canonical_truth(&fleet, &current));
            if let (Some(est), Some(truth)) = (estimate, truth) {
                errors.push((est - truth).abs());
                g_estimate.set(est);
                g_truth.set(truth);
                h_error.observe((est - truth).abs());
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        "round",
                        &[
                            ("truth", truth.into()),
                            ("estimate", est.into()),
                            (
                                "root_messages",
                                fleet.fabric().root_ref().stats().total_msgs().into(),
                            ),
                            ("messages", fleet.fabric().total_stats().total_msgs().into()),
                        ],
                    );
                }
            }
        }

        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "run_info",
                &[
                    ("nodes", n.into()),
                    ("shards", fleet.shards().into()),
                    ("rounds", workload.rounds().into()),
                    ("updates", updates.into()),
                ],
            );
        }

        debug_assert_eq!(
            fleet.fabric().check_conservation(),
            None,
            "two-tier ledger must conserve fleet traffic totals"
        );

        let total = fleet.fabric().total_stats();
        let root = fleet.fabric().root_ref().stats().clone();
        let st = fleet.leaf_stats_total();
        let ev = fleet.events().clone();
        let mut stats = RunStats {
            messages: total.total_msgs(),
            payload_bytes: total.total_payload(),
            neighborhood_violations: st.neighborhood_violations,
            safezone_violations: st.safezone_violations,
            faulty_reports: st.faulty_reports,
            full_syncs: st.full_syncs,
            lazy_syncs: st.lazy_syncs,
            evictions: st.evictions,
            rejoins: st.rejoins,
            ledger: Some(fleet.fabric().combined_ledger().entries()),
            ..RunStats::default()
        };
        stats.set_errors(errors);
        FleetReport {
            shards: fleet.shards(),
            streams: n,
            updates,
            root_messages: root.total_msgs(),
            root_payload_bytes: root.total_payload(),
            leaf_messages: total.total_msgs() - root.total_msgs(),
            leaf_payload_bytes: total.total_payload() - root.total_payload(),
            leaf_reports: ev.leaf_reports,
            rebalances: ev.rebalances,
            node_crashes: ev.node_crashes,
            restarts: ev.restarts,
            leaf_crashes: ev.leaf_crashes,
            stats,
        }
    }

    /// `f` of the alive population's mean under the fleet's canonical
    /// shard-major summation order — the truth series a flat run must
    /// follow to agree with the fleet bitwise. `None` until every alive
    /// stream has reported at least one vector.
    fn canonical_truth(&self, fleet: &Fleet, current: &[Option<Vec<f64>>]) -> Option<f64> {
        let map = fleet.shard_map();
        let d = current.iter().flatten().next()?.len();
        let mut partials = Vec::new();
        for s in 0..map.shards() {
            if !fleet.leaf_is_alive(s) {
                continue;
            }
            let alive: Vec<usize> = map
                .members(s)
                .iter()
                .copied()
                .filter(|&g| fleet.stream_is_alive(g))
                .collect();
            if alive.is_empty() {
                continue;
            }
            if alive.iter().any(|&g| current[g].is_none()) {
                return None;
            }
            let sum = compose::shard_partial_sum(
                alive.iter().map(|&g| current[g].as_deref().expect("checked")),
                d,
            );
            partials.push((sum, alive.len() as u64));
        }
        if partials.is_empty() {
            return None;
        }
        Some(self.f.eval(&compose::compose_global_mean(&partials)))
    }
}
