//! Discrete-event simulation of AutoMon and its baselines (paper §4.1).
//!
//! The paper evaluates with "discrete event simulation \[of\] the
//! distributed network on a single machine": in each round nodes read
//! data updates, update local vectors, and run the node algorithm; the
//! coordinator resolves violations synchronously. This crate reproduces
//! that harness:
//!
//! * [`Workload`] — per-round local-vector updates, either dense (every
//!   node updates every round, the synthetic datasets) or event-driven
//!   (one node per round, the DNN intrusion stream).
//! * [`Simulation`] — runs AutoMon (or any `MonitorConfig` ablation)
//!   over a workload through the byte-accounting fabric, recording
//!   communication, approximation error, violation counts, and optional
//!   per-round traces.
//! * [`baselines`] — Centralization, Periodic(P), and the hand-crafted
//!   Convex Bound (CB) arm for inner-product monitoring.
//! * [`RunStats`] — max/p99/mean error, message and payload totals, and
//!   trace points for the time-series figures.
//! * [`FleetSimulation`] — the same harness over the two-tier sharded
//!   coordinator fleet (DESIGN.md §3.14), reporting the per-tier
//!   message split and the combined leaf+root ledger.

pub mod baselines;
pub mod chaos;
mod fleet_runner;
pub mod hybrid;
pub mod netsim;
mod runner;
mod stats;
mod workload;

pub use baselines::{run_centralization, run_convex_bound, run_periodic, Baseline};
pub use chaos::{ChaosReport, ChaosSimulation};
pub use fleet_runner::{FleetReport, FleetSimulation};
pub use hybrid::{run_hybrid, HybridConfig, HybridStats};
pub use netsim::{NetRunReport, NetSimulation};
pub use runner::Simulation;
pub use stats::{RunStats, TracePoint};
pub use workload::Workload;
