//! The AutoMon simulation runner.

use std::sync::Arc;

use automon_core::{CommCause, Coordinator, MonitorConfig, MonitoredFunction, Node};
use automon_linalg::vector;
use automon_net::CountingFabric;
use automon_obs::{SpanId, Telemetry};

use crate::stats::{RunStats, TracePoint};
use crate::workload::Workload;

/// Absolute-error histogram buckets shared by the runners (decades around
/// typical ε values).
pub(crate) const ERROR_BOUNDS: &[f64] = &[1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A configured AutoMon simulation (paper §4.1's harness).
///
/// Per round: apply the workload's updates to the nodes, route every
/// resulting message through a byte-accounting fabric until the protocol
/// quiesces, then measure `|f(x0) - f(x̄)|` against the true aggregate.
pub struct Simulation {
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    record_trace: bool,
    trace_stride: usize,
    telemetry: Telemetry,
}

impl Simulation {
    /// A simulation of `f` under `cfg`.
    pub fn new(f: Arc<dyn MonitoredFunction>, cfg: MonitorConfig) -> Self {
        Self {
            f,
            cfg,
            record_trace: false,
            trace_stride: 1,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Record a per-round [`TracePoint`] every `stride` rounds.
    pub fn with_trace(mut self, stride: usize) -> Self {
        self.record_trace = true;
        self.trace_stride = stride.max(1);
        self
    }

    /// Thread an observability handle through the coordinator, every
    /// node, and the per-round loop. The round loop is sequential, so it
    /// owns the logical clock: same workload + config ⇒ byte-identical
    /// trace.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// Tune the neighborhood size on a prefix of the workload
    /// (paper Algorithm 2) and return the recommendation.
    pub fn tune_r(&self, tuning_prefix: &Workload) -> f64 {
        let series = tuning_prefix.to_node_series();
        automon_core::tuning::tune_neighborhood_size(&self.f, &series, &self.cfg).r
    }

    /// Run the workload to completion.
    pub fn run(&self, workload: &Workload) -> RunStats {
        self.run_with_r(workload, None)
    }

    /// Run with an explicit neighborhood radius (e.g. from [`Self::tune_r`]).
    pub fn run_with_r(&self, workload: &Workload, r: Option<f64>) -> RunStats {
        let n = workload.nodes();
        let mut coord = Coordinator::new(self.f.clone(), n, self.cfg.clone());
        if let Some(r) = r {
            coord.set_neighborhood_r(r);
        }
        let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, self.f.clone())).collect();
        let mut fabric = CountingFabric::new()
            .with_parallelism(coord.parallelism())
            .with_telemetry(self.telemetry.clone());

        coord.set_telemetry(self.telemetry.clone());
        for node in &mut nodes {
            node.set_telemetry(&self.telemetry);
        }
        let g_round = self.telemetry.gauge("automon_sim_round", "Current workload round");
        let g_estimate = self
            .telemetry
            .gauge("automon_sim_estimate", "Coordinator-side f(x0) this round");
        let g_truth = self
            .telemetry
            .gauge("automon_sim_truth", "True f(mean of local vectors) this round");
        let g_messages = self.telemetry.gauge(
            "automon_sim_cumulative_messages",
            "Protocol messages routed so far",
        );
        let h_error = self.telemetry.histogram(
            "automon_sim_abs_error",
            "Per-round |estimate - truth|",
            ERROR_BOUNDS,
        );

        let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut errors = Vec::with_capacity(workload.rounds());
        let mut missed = 0usize;
        let mut updates = 0usize;
        let mut trace = Vec::new();

        for t in 0..workload.rounds() {
            self.telemetry.set_round(t as u64);
            fabric.set_round(t as u64);
            g_round.set(t as f64);
            for (node, x) in workload.updates(t) {
                current[*node] = Some(x.clone());
                updates += 1;
                if let Some(m) = nodes[*node].update_data(x.clone()) {
                    // Every report opens a root span; the coordinator's
                    // handler span parents under it via the wire header.
                    let cause = CommCause::of_node_message(&m);
                    let span = self.telemetry.span_begin(
                        "violation",
                        SpanId::NONE,
                        &[("node", (*node).into()), ("cause", cause.name().into())],
                    );
                    fabric.route_as(&mut coord, &mut nodes, m, cause, span);
                    self.telemetry
                        .span_end(span, &[("messages", fabric.stats().total_msgs().into())]);
                }
            }

            // Measure once initialized and every node has data.
            let all_present = current.iter().all(Option::is_some);
            let estimate = coord.current_value();
            if let (true, Some(est)) = (all_present, estimate) {
                let xs: Vec<Vec<f64>> = current.iter().map(|x| x.clone().expect("present")).collect();
                let truth = self.f.eval(&vector::mean(&xs).expect("n > 0"));
                errors.push((est - truth).abs());
                let zone = coord.zone().expect("initialized");
                if !zone.admissible(truth) {
                    missed += 1;
                }
                g_estimate.set(est);
                g_truth.set(truth);
                g_messages.set(fabric.stats().total_msgs() as f64);
                h_error.observe((est - truth).abs());
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        "round",
                        &[
                            ("truth", truth.into()),
                            ("estimate", est.into()),
                            ("lower", zone.l.into()),
                            ("upper", zone.u.into()),
                            ("messages", fabric.stats().total_msgs().into()),
                        ],
                    );
                }
                if self.record_trace && t % self.trace_stride == 0 {
                    trace.push(TracePoint {
                        round: t,
                        truth,
                        estimate: est,
                        lower: zone.l,
                        upper: zone.u,
                        cumulative_messages: fabric.stats().total_msgs(),
                    });
                }
            }
        }

        if self.telemetry.is_enabled() {
            // Denominators for `automon trace summarize`'s
            // bytes-per-update table.
            self.telemetry.event(
                "run_info",
                &[
                    ("nodes", n.into()),
                    ("rounds", workload.rounds().into()),
                    ("updates", updates.into()),
                ],
            );
        }

        let st = coord.stats();
        let traffic = fabric.stats();
        debug_assert_eq!(
            fabric
                .ledger()
                .check_conservation(traffic.total_msgs() as u64, traffic.total_payload() as u64),
            None,
            "ledger must conserve traffic totals"
        );
        let mut out = RunStats {
            messages: traffic.total_msgs(),
            payload_bytes: traffic.total_payload(),
            missed_violation_rounds: missed,
            neighborhood_violations: st.neighborhood_violations,
            safezone_violations: st.safezone_violations,
            faulty_reports: st.faulty_reports,
            full_syncs: st.full_syncs,
            lazy_syncs: st.lazy_syncs,
            trace: if self.record_trace { Some(trace) } else { None },
            ledger: Some(fabric.ledger().entries()),
            ..RunStats::default()
        };
        out.set_errors(errors);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_functions::InnerProduct;

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    #[test]
    fn error_stays_within_epsilon_for_linear_function() {
        // Linear f: ADCD-E with exact decomposition — the §3.7 guarantee
        // applies, so the measured error must stay ≤ ε.
        let eps = 0.3;
        let series: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|i| {
                (0..200)
                    .map(|t| vec![(t as f64 * 0.01) + i as f64 * 0.05])
                    .collect()
            })
            .collect();
        let w = Workload::from_dense(&series);
        let sim = Simulation::new(
            Arc::new(AutoDiffFn::new(Mean1)),
            MonitorConfig::builder(eps).build(),
        );
        let stats = sim.run(&w);
        assert!(stats.max_error <= eps + 1e-9, "{stats:?}");
        assert_eq!(stats.missed_violation_rounds, 0);
        assert!(stats.messages > 0);
        assert!(stats.full_syncs >= 1);
    }

    #[test]
    fn quiet_data_costs_only_initialization() {
        let series: Vec<Vec<Vec<f64>>> =
            (0..4).map(|_| vec![vec![1.0, 2.0, 3.0, 4.0]; 100]).collect();
        let w = Workload::from_dense(&series);
        let sim = Simulation::new(
            Arc::new(AutoDiffFn::new(InnerProduct::new(4))),
            MonitorConfig::builder(0.1).build(),
        );
        let stats = sim.run(&w);
        // 4 registrations + 4 NewConstraints, nothing else.
        assert_eq!(stats.messages, 8, "{stats:?}");
        assert_eq!(stats.full_syncs, 1);
        assert_eq!(stats.max_error, 0.0);
    }

    #[test]
    fn trace_is_recorded_with_stride() {
        let series: Vec<Vec<Vec<f64>>> = (0..2).map(|_| vec![vec![0.5]; 50]).collect();
        let w = Workload::from_dense(&series);
        let sim = Simulation::new(
            Arc::new(AutoDiffFn::new(Mean1)),
            MonitorConfig::builder(0.1).build(),
        )
        .with_trace(10);
        let stats = sim.run(&w);
        let trace = stats.trace.expect("trace enabled");
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[0].round, 0);
        assert_eq!(trace[1].round, 10);
        assert!(trace.iter().all(|p| (p.truth - 0.5).abs() < 1e-12));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    #[test]
    fn trace_bounds_bracket_the_estimate() {
        let eps = 0.25;
        let series: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|i| (0..80).map(|t| vec![t as f64 * 0.02 + i as f64 * 0.01]).collect())
            .collect();
        let w = Workload::from_dense(&series);
        let sim = Simulation::new(
            Arc::new(AutoDiffFn::new(Mean1)),
            MonitorConfig::builder(eps).build(),
        )
        .with_trace(1);
        let stats = sim.run(&w);
        for p in stats.trace.as_deref().unwrap() {
            assert!(p.lower <= p.estimate && p.estimate <= p.upper, "{p:?}");
            assert!((p.upper - p.lower - 2.0 * eps).abs() < 1e-12);
        }
        // Cumulative message counts are non-decreasing.
        let msgs: Vec<usize> = stats
            .trace
            .as_deref()
            .unwrap()
            .iter()
            .map(|p| p.cumulative_messages)
            .collect();
        assert!(msgs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn run_with_fixed_r_matches_explicit_coordinator_r() {
        // run_with_r(Some(r)) and a Fixed(r) config agree exactly.
        let series: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|i| (0..60).map(|t| vec![(t as f64 * 0.05).sin() + i as f64 * 0.01]).collect())
            .collect();
        let w = Workload::from_dense(&series);
        struct Cube;
        impl ScalarFn for Cube {
            fn dim(&self) -> usize {
                1
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                x[0] * x[0] * x[0]
            }
        }
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Cube));
        let a = Simulation::new(f.clone(), MonitorConfig::builder(0.2).build())
            .run_with_r(&w, Some(0.3));
        let cfg = MonitorConfig::builder(0.2)
            .neighborhood(automon_core::NeighborhoodMode::Fixed(0.3))
            .build();
        let b = Simulation::new(f, cfg).run(&w);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.max_error, b.max_error);
    }
}
