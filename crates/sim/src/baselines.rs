//! Baseline algorithms (paper §4.1): Centralization, Periodic, and the
//! hand-crafted Convex Bound arm.

use std::sync::Arc;

use automon_core::{AdcdKind, MonitorConfig, MonitoredFunction, NodeMessage};
use automon_linalg::vector;
use automon_net::wire;

use crate::runner::Simulation;
use crate::stats::RunStats;
use crate::workload::Workload;

/// Which algorithm a run used (labeling for the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Baseline {
    /// AutoMon proper.
    AutoMon,
    /// Every node sends every update.
    Centralization,
    /// Every node sends every `P` rounds.
    Periodic(usize),
    /// Convex Bound (Lazerson et al.): the hand-crafted inner-product
    /// decomposition `⟨u,v⟩ = ¼‖u+v‖² - ¼‖u-v‖²`, run through the same
    /// GM protocol. Equivalent to forcing ADCD-E (the paper proves the
    /// equivalence in §4.3), valid only for constant-Hessian functions.
    ConvexBound,
}

impl Baseline {
    /// Harness label.
    pub fn label(&self) -> String {
        match self {
            Baseline::AutoMon => "AutoMon".into(),
            Baseline::Centralization => "Centralization".into(),
            Baseline::Periodic(p) => format!("Periodic({p})"),
            Baseline::ConvexBound => "CB".into(),
        }
    }
}

/// Centralization: every node forwards every local-vector update; the
/// coordinator always holds the exact aggregate (error 0 for dense
/// workloads; for event-driven workloads the estimate is exact by
/// construction as well, since it re-evaluates on every update).
pub fn run_centralization(f: &Arc<dyn MonitoredFunction>, workload: &Workload) -> RunStats {
    let n = workload.nodes();
    let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut messages = 0usize;
    let mut payload = 0usize;
    let mut errors = Vec::new();

    for t in 0..workload.rounds() {
        for (node, x) in workload.updates(t) {
            current[*node] = Some(x.clone());
            let frame = wire::encode_node_message(&NodeMessage::LocalVector {
                node: *node,
                vector: x.clone(),
                epoch: 0,
            });
            messages += 1;
            payload += frame.len();
        }
        if current.iter().all(Option::is_some) {
            // The coordinator re-evaluates on the exact aggregate.
            errors.push(0.0);
        }
    }
    let _ = f;
    let mut out = RunStats {
        messages,
        payload_bytes: payload,
        ..RunStats::default()
    };
    out.set_errors(errors);
    out
}

/// Periodic(P): every node that has data sends its local vector every `P`
/// rounds; between reports the coordinator's estimate goes stale, which
/// is where its error comes from (paper §4.1: "not adaptive … suffers
/// from many missed violations when the period is out of sync with the
/// changes in the data").
pub fn run_periodic(
    f: &Arc<dyn MonitoredFunction>,
    workload: &Workload,
    period: usize,
) -> RunStats {
    assert!(period > 0, "run_periodic: period must be positive");
    let n = workload.nodes();
    let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut received: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut messages = 0usize;
    let mut payload = 0usize;
    let mut errors = Vec::new();

    for t in 0..workload.rounds() {
        for (node, x) in workload.updates(t) {
            current[*node] = Some(x.clone());
        }
        if t % period == 0 {
            for (i, cur) in current.iter().enumerate() {
                if let Some(x) = cur {
                    let frame = wire::encode_node_message(&NodeMessage::LocalVector {
                        node: i,
                        vector: x.clone(),
                        epoch: 0,
                    });
                    messages += 1;
                    payload += frame.len();
                    received[i] = Some(x.clone());
                }
            }
        }
        let all_current = current.iter().all(Option::is_some);
        let all_received = received.iter().all(Option::is_some);
        if all_current && all_received {
            let truth_xs: Vec<Vec<f64>> =
                current.iter().map(|x| x.clone().expect("present")).collect();
            let est_xs: Vec<Vec<f64>> =
                received.iter().map(|x| x.clone().expect("present")).collect();
            let truth = f.eval(&vector::mean(&truth_xs).expect("n > 0"));
            let est = f.eval(&vector::mean(&est_xs).expect("n > 0"));
            errors.push((est - truth).abs());
        }
    }
    let mut out = RunStats {
        messages,
        payload_bytes: payload,
        ..RunStats::default()
    };
    out.set_errors(errors);
    out
}

/// Convex Bound: the same GM protocol with the hand-crafted
/// constant-Hessian decomposition (forced ADCD-E, which §4.3 shows is the
/// identical safe zone for the inner product), with lazy sync and slack
/// as in the paper's CB runs.
///
/// # Panics
/// Panics when `f` does not have a constant Hessian — CB's hand-crafted
/// decomposition only exists for that class.
pub fn run_convex_bound(
    f: &Arc<dyn MonitoredFunction>,
    workload: &Workload,
    epsilon: f64,
) -> RunStats {
    assert!(
        f.has_constant_hessian(),
        "Convex Bound requires a constant-Hessian function"
    );
    let cfg = MonitorConfig::builder(epsilon).adcd(AdcdKind::E).build();
    Simulation::new(f.clone(), cfg).run(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::AutoDiffFn;
    use automon_functions::InnerProduct;

    fn drift_series(nodes: usize, rounds: usize) -> Vec<Vec<Vec<f64>>> {
        (0..nodes)
            .map(|i| {
                (0..rounds)
                    .map(|t| {
                        let v = t as f64 * 0.02 + i as f64 * 0.1;
                        vec![v, 1.0, 1.0, v]
                    })
                    .collect()
            })
            .collect()
    }

    fn ip() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(InnerProduct::new(4)))
    }

    #[test]
    fn centralization_message_count_and_zero_error() {
        let w = Workload::from_dense(&drift_series(3, 50));
        let stats = run_centralization(&ip(), &w);
        assert_eq!(stats.messages, 150);
        assert_eq!(stats.max_error, 0.0);
        assert!(stats.payload_bytes > 0);
    }

    #[test]
    fn periodic_trades_messages_for_error() {
        let f = ip();
        let w = Workload::from_dense(&drift_series(3, 120));
        let p1 = run_periodic(&f, &w, 1);
        let p10 = run_periodic(&f, &w, 10);
        assert!(p10.messages < p1.messages);
        assert!(p10.max_error > p1.max_error);
        // Period 1 with a dense workload is exactly centralization.
        assert_eq!(p1.messages, run_centralization(&f, &w).messages);
        assert_eq!(p1.max_error, 0.0);
    }

    #[test]
    fn convex_bound_bounds_error_by_epsilon() {
        let f = ip();
        let w = Workload::from_dense(&drift_series(3, 100));
        let eps = 0.5;
        let stats = run_convex_bound(&f, &w, eps);
        // Constant Hessian ⇒ true DC decomposition ⇒ deterministic bound.
        assert!(stats.max_error <= eps + 1e-9, "{stats:?}");
        assert_eq!(stats.missed_violation_rounds, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Baseline::Periodic(5).label(), "Periodic(5)");
        assert_eq!(Baseline::ConvexBound.label(), "CB");
    }

    #[test]
    #[should_panic(expected = "constant-Hessian")]
    fn cb_rejects_general_functions() {
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(automon_functions::Rozenbrock));
        let w = Workload::from_dense(&drift_series(2, 5));
        let _ = run_convex_bound(&f, &w, 0.1);
    }
}
