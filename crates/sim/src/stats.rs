//! Run statistics and traces.

use automon_core::LedgerEntry;
use serde::Serialize;

/// One per-round trace sample for the time-series figures (4 and 9).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TracePoint {
    /// Simulation round.
    pub round: usize,
    /// The true `f(x̄)` over current local vectors.
    pub truth: f64,
    /// The coordinator-side approximation `f(x0)`.
    pub estimate: f64,
    /// Lower threshold `L` in force.
    pub lower: f64,
    /// Upper threshold `U` in force.
    pub upper: f64,
    /// Cumulative protocol messages so far.
    pub cumulative_messages: usize,
}

/// Aggregated results of one monitoring run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RunStats {
    /// Total protocol messages (both directions).
    pub messages: usize,
    /// Total payload bytes (both directions, real encoded sizes).
    pub payload_bytes: usize,
    /// Maximum `|estimate - truth|` over measured rounds.
    pub max_error: f64,
    /// Mean absolute error over measured rounds.
    pub mean_error: f64,
    /// 99th-percentile absolute error.
    pub p99_error: f64,
    /// Rounds where error was measured.
    pub measured_rounds: usize,
    /// Rounds where the true value escaped `[L, U]` while every local
    /// constraint held — the *missed violations* of paper §2/§4.6.
    pub missed_violation_rounds: usize,
    /// Neighborhood violations reported to the coordinator.
    pub neighborhood_violations: usize,
    /// Safe-zone violations reported to the coordinator.
    pub safezone_violations: usize,
    /// Faulty-constraint reports (§3.7 sanity check).
    pub faulty_reports: usize,
    /// Full syncs (including the initial one).
    pub full_syncs: usize,
    /// Lazy syncs resolved without a full sync.
    pub lazy_syncs: usize,
    /// `|estimate - truth|` at the last measured round (for chaos runs,
    /// after the recovery drain — the at-quiescence error).
    pub final_error: f64,
    /// Reports/pulls re-sent because the original went unanswered
    /// (chaos runs only).
    pub retransmits: usize,
    /// Faults the chaos fabric injected (trace length).
    pub injected_faults: usize,
    /// Extra rounds spent draining retransmissions and resyncs after the
    /// workload ended, until the protocol quiesced.
    pub recovery_rounds: usize,
    /// Maximum `|estimate - truth|` over degraded rounds (a partition
    /// active, a node down, or a node evicted) — the error the
    /// ε-guarantee does *not* cover.
    pub max_error_during_partition: f64,
    /// Nodes the coordinator declared dead and evicted.
    pub evictions: usize,
    /// Nodes that rejoined after a crash or eviction.
    pub rejoins: usize,
    /// Coordinator crash/recovery cycles (rebuilds from the durable
    /// store; chaos runs with `--crash-coordinator` only).
    pub coordinator_recoveries: usize,
    /// Optional per-round trace (enabled via the runner).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<Vec<TracePoint>>,
    /// Per-cause communication ledger rollup. Conservation against
    /// `messages`/`payload_bytes` is exact: the fabric charges the
    /// ledger at the same points it bumps its traffic counters.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ledger: Option<Vec<LedgerEntry>>,
}

impl RunStats {
    /// Finalize error aggregates from raw per-round errors.
    pub(crate) fn set_errors(&mut self, mut errors: Vec<f64>) {
        self.measured_rounds = errors.len();
        if errors.is_empty() {
            return;
        }
        self.final_error = *errors.last().expect("non-empty");
        self.max_error = errors.iter().fold(0.0f64, |m, e| m.max(*e));
        self.mean_error = errors.iter().sum::<f64>() / errors.len() as f64;
        errors.sort_by(|a, b| a.partial_cmp(b).expect("no NaN errors"));
        let idx = ((errors.len() as f64) * 0.99).ceil() as usize;
        self.p99_error = errors[idx.saturating_sub(1).min(errors.len() - 1)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_aggregates() {
        let mut s = RunStats::default();
        let mut errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        errors.reverse();
        s.set_errors(errors);
        assert_eq!(s.measured_rounds, 100);
        assert_eq!(s.max_error, 100.0);
        assert_eq!(s.mean_error, 50.5);
        assert_eq!(s.p99_error, 99.0);
    }

    #[test]
    fn empty_errors_leave_zeroes() {
        let mut s = RunStats::default();
        s.set_errors(Vec::new());
        assert_eq!(s.max_error, 0.0);
        assert_eq!(s.measured_rounds, 0);
    }

    #[test]
    fn single_error() {
        let mut s = RunStats::default();
        s.set_errors(vec![0.25]);
        assert_eq!(s.max_error, 0.25);
        assert_eq!(s.p99_error, 0.25);
    }
}
