//! Chaos scenarios: the simulation harness under injected faults.
//!
//! [`ChaosSimulation`] drives the same workload loop as [`crate::Simulation`],
//! but routes every frame through a seeded [`ChaosFabric`] and adds the
//! recovery machinery a lossy network needs:
//!
//! * **Retransmission with exponential backoff** — a node whose report
//!   went unanswered re-sends it after `retransmit_after` rounds, then
//!   2×, 4×, … that; the coordinator re-issues outstanding pulls the
//!   same way (byte-identical frames, so duplicates are harmless under
//!   the epoch protocol).
//! * **Eviction** — `evict_after` consecutive dead-connection failures
//!   and the coordinator declares the node dead, redistributing slack
//!   over the survivors so the ε-guarantee is restored for them.
//! * **Rejoin** — a restarted node re-registers from scratch; the
//!   coordinator folds it back in with a full sync.
//!
//! After the workload ends the runner keeps stepping (the *recovery
//! drain*) until the protocol quiesces — no outstanding report, no
//! unresolved sync, no delayed frame — or a generous round cap trips,
//! which the determinism tests treat as a deadlock.

use std::sync::Arc;

use automon_chaos::{ChaosFabric, Direction, FaultEvent, FaultPlan, RecoveryConfig};
use automon_core::{CommCause, Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage};
use automon_linalg::vector;
use automon_net::CountingFabric;
use automon_obs::{SpanId, Telemetry};
use automon_store::{DiskManager, DynDisk, MemDisk, SharedStore, StoreOptions};

use crate::stats::RunStats;
use crate::workload::Workload;

/// Longest a retransmit backoff interval is allowed to grow, in rounds.
const MAX_BACKOFF: usize = 64;

/// Checkpoint cadence when a coordinator crash is scheduled but no
/// store was configured explicitly.
const DEFAULT_SNAPSHOT_INTERVAL: usize = 16;

/// How the coordinator's durable store is provisioned for a run.
///
/// `run(&self)` may be called more than once, so the backend is a
/// factory: each run opens a fresh disk (the simulator owns fresh-run
/// semantics; pre-existing files on the disk are cleared).
struct Durability {
    make_disk: Box<dyn Fn() -> DynDisk>,
    snapshot_interval: usize,
}

/// Result of a chaos run: the usual statistics plus the replayable
/// fault trace and whether the protocol actually quiesced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Aggregated run statistics (chaos fields populated).
    pub stats: RunStats,
    /// Every injected fault, in injection order. Two runs with the same
    /// plan produce equal traces.
    pub fault_trace: Vec<FaultEvent>,
    /// `true` when the protocol reached quiescence within the recovery
    /// cap; `false` means the run deadlocked.
    pub quiesced: bool,
}

/// An AutoMon simulation under a deterministic fault plan.
pub struct ChaosSimulation {
    f: Arc<dyn MonitoredFunction>,
    cfg: MonitorConfig,
    plan: FaultPlan,
    recovery: RecoveryConfig,
    max_recovery_rounds: usize,
    telemetry: Telemetry,
    durability: Option<Durability>,
}

impl ChaosSimulation {
    /// A chaos simulation of `f` under `cfg`, injecting `plan`.
    pub fn new(f: Arc<dyn MonitoredFunction>, cfg: MonitorConfig, plan: FaultPlan) -> Self {
        Self {
            f,
            cfg,
            plan,
            recovery: RecoveryConfig::default(),
            max_recovery_rounds: 256,
            telemetry: Telemetry::disabled(),
            durability: None,
        }
    }

    /// Persist the coordinator through `make_disk`'s backend (WAL +
    /// snapshots, DESIGN.md §3.13), checkpointing every
    /// `snapshot_interval` rounds. Required for plans with
    /// `coordinator_crashes`; when such a plan arrives without a store,
    /// a deterministic in-memory backend is provisioned automatically.
    pub fn with_store<F>(mut self, make_disk: F, snapshot_interval: usize) -> Self
    where
        F: Fn() -> DynDisk + 'static,
    {
        self.durability = Some(Durability {
            make_disk: Box::new(make_disk),
            snapshot_interval: snapshot_interval.max(1),
        });
        self
    }

    /// Thread an observability handle through the coordinator, every node
    /// (including restarted incarnations), the chaos fabric, and the
    /// round loop. Fault injection is seeded and the loop is sequential,
    /// so same plan + workload ⇒ byte-identical trace.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// Override the retransmit/eviction policy.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Override the post-workload drain cap (deadlock detector).
    pub fn with_max_recovery_rounds(mut self, rounds: usize) -> Self {
        self.max_recovery_rounds = rounds.max(1);
        self
    }

    /// Route one node report inside a root `violation` span charged to
    /// `cause`; the coordinator's handler span parents under it via the
    /// wire header, exactly as in the plain runner.
    fn route_report(
        &self,
        fabric: &mut ChaosFabric,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        m: NodeMessage,
        cause: CommCause,
    ) {
        let span = self.telemetry.span_begin(
            "violation",
            SpanId::NONE,
            &[("node", m.sender().into()), ("cause", cause.name().into())],
        );
        fabric.route_as(coord, nodes, m, cause, span);
        self.telemetry.span_end(span, &[]);
    }

    /// Run the workload to completion, then drain to quiescence.
    pub fn run(&self, workload: &Workload) -> ChaosReport {
        let n = workload.nodes();
        let mut coord = Coordinator::new(self.f.clone(), n, self.cfg.clone());
        let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, self.f.clone())).collect();
        let mut fabric = ChaosFabric::new(
            CountingFabric::new()
                .with_parallelism(coord.parallelism())
                .with_telemetry(self.telemetry.clone()),
            self.plan.clone(),
            n,
        );

        coord.set_telemetry(self.telemetry.clone());
        for node in &mut nodes {
            node.set_telemetry(&self.telemetry);
        }
        fabric.set_telemetry(self.telemetry.clone());

        // Durable store: explicit via `with_store`, or auto-provisioned
        // (in-memory) when the plan schedules a coordinator crash. The
        // baseline checkpoint guarantees recovery always has a base to
        // fold the journal into.
        let snapshot_interval = self
            .durability
            .as_ref()
            .map(|d| d.snapshot_interval)
            .unwrap_or(DEFAULT_SNAPSHOT_INTERVAL);
        let store: Option<SharedStore> =
            if self.durability.is_some() || !self.plan.coordinator_crashes.is_empty() {
                let mut disk: DynDisk = match &self.durability {
                    Some(d) => (d.make_disk)(),
                    None => Box::new(MemDisk::new()),
                };
                // Fresh-run semantics: a reused directory must not leak
                // a previous run's state into this one.
                for file in disk.list().expect("store: list backend") {
                    disk.remove(&file).expect("store: clear backend");
                }
                let (shared, _) = SharedStore::open(disk, StoreOptions::default())
                    .expect("store: open failed");
                Some(shared)
            } else {
                None
            };
        let mut coordinator_recoveries = 0usize;
        if let Some(store) = &store {
            coord.set_journal(store.journal());
            let snap = coord
                .request_snapshot()
                .expect("fresh coordinator is quiescent");
            store
                .lock()
                .write_snapshot(&snap)
                .expect("store: baseline checkpoint");
        }
        let g_round = self.telemetry.gauge("automon_sim_round", "Current workload round");
        let g_estimate = self
            .telemetry
            .gauge("automon_sim_estimate", "Coordinator-side f(x0) this round");
        let g_truth = self
            .telemetry
            .gauge("automon_sim_truth", "True f(mean of local vectors) this round");
        let g_messages = self.telemetry.gauge(
            "automon_sim_cumulative_messages",
            "Protocol messages routed so far",
        );
        let h_error = self.telemetry.histogram(
            "automon_sim_abs_error",
            "Per-round |estimate - truth|",
            crate::runner::ERROR_BOUNDS,
        );

        let mut current: Vec<Option<Vec<f64>>> = vec![None; n];
        let mut errors = Vec::new();
        let mut max_degraded = 0.0f64;
        let mut missed = 0usize;
        let mut retransmits = 0usize;
        let mut updates = 0usize;
        // Per-node backoff state for report retransmission, and the
        // coordinator's for pull re-issue.
        let mut node_retry_at = vec![self.recovery.retransmit_after; n];
        let mut node_interval = vec![self.recovery.retransmit_after; n];
        let mut coord_retry_at = self.recovery.retransmit_after;
        let mut coord_interval = self.recovery.retransmit_after;
        // Consecutive dead-connection strikes per node.
        let mut strikes = vec![0usize; n];

        let total = workload.rounds();
        let mut recovery_rounds = 0usize;
        let mut t = 0usize;
        let quiesced = loop {
            self.telemetry.set_round(t as u64);
            g_round.set(t as f64);
            if t >= total {
                let quiet = !coord.is_resolving()
                    && fabric.delayed_frames() == 0
                    && (0..n).all(|i| fabric.is_crashed(i) || !nodes[i].is_pending());
                if quiet {
                    break true;
                }
                if recovery_rounds >= self.max_recovery_rounds {
                    break false;
                }
                recovery_rounds += 1;
            }

            // 1. Timed faults: crashes fire, restarted nodes come back as
            //    fresh processes and re-register from their data stream.
            //    A coordinator crash recovers *before* the restart
            //    re-feeds, so rejoining reports hit the rebuilt
            //    coordinator.
            let restarted = fabric.begin_round(t);
            if self.plan.coordinator_crashes.contains(&t) {
                let store = store.as_ref().expect("coordinator crash requires a store");
                let recovered = {
                    let mut s = store.lock();
                    // The crash loses everything unsynced; recovery
                    // rescans disk and folds the valid WAL prefix onto
                    // the newest decodable checkpoint.
                    s.crash();
                    s.recover().expect("store: recovery scan failed")
                };
                let snap = recovered
                    .snapshot
                    .expect("baseline checkpoint always exists");
                coord = Coordinator::restore(self.f.clone(), self.cfg.clone(), snap);
                coord.set_telemetry(self.telemetry.clone());
                coord.set_journal(store.journal());
                coordinator_recoveries += 1;
                if self.telemetry.is_enabled() {
                    // The envelope already stamps the round.
                    self.telemetry.event(
                        "coordinator_recovered",
                        &[
                            ("epoch", coord.epoch().into()),
                            ("replayed", recovered.report.records_replayed.into()),
                        ],
                    );
                }
                // Re-checkpoint immediately: the post-crash store starts
                // a fresh segment, and the next crash must not depend on
                // pre-crash segments beyond what retention keeps.
                if let Some(s) = coord.request_snapshot() {
                    store.lock().write_snapshot(&s).expect("store: post-recovery checkpoint");
                }
                // Resync the fleet, charging the pulls (and their
                // replies, which inherit the pull's cause) to the
                // dedicated recovery cause; the closing full-sync
                // installs keep their intrinsic cause, as with
                // eviction-triggered syncs.
                let outs = coord.begin_recovery_sync();
                fabric.route_outbounds_as(&mut coord, &mut nodes, outs, CommCause::Recovery);
                coord_interval = self.recovery.retransmit_after;
                coord_retry_at = t + self.recovery.retransmit_after;
            }
            for id in restarted {
                nodes[id] = Node::new(id, self.f.clone());
                nodes[id].set_telemetry(&self.telemetry);
                node_interval[id] = self.recovery.retransmit_after;
                node_retry_at[id] = t + self.recovery.retransmit_after;
                if let Some(x) = current[id].clone() {
                    if let Some(m) = nodes[id].update_data(x) {
                        self.route_report(&mut fabric, &mut coord, &mut nodes, m, CommCause::Rejoin);
                    }
                }
            }
            fabric.release_delayed(&mut coord, &mut nodes);

            // 2. Workload updates. The data stream advances even for a
            //    downed node; its process just can't report.
            if t < total {
                for (node, x) in workload.updates(t) {
                    current[*node] = Some(x.clone());
                    updates += 1;
                    if fabric.is_crashed(*node) {
                        continue;
                    }
                    if let Some(m) = nodes[*node].update_data(x.clone()) {
                        let cause = CommCause::of_node_message(&m);
                        self.route_report(&mut fabric, &mut coord, &mut nodes, m, cause);
                    }
                }
            }

            // 3. Retransmission with exponential backoff, both directions.
            for i in 0..n {
                if fabric.is_crashed(i) {
                    continue;
                }
                if nodes[i].is_pending() {
                    if t >= node_retry_at[i] {
                        if let Some(m) = nodes[i].retransmit_report() {
                            retransmits += 1;
                            self.route_report(
                                &mut fabric,
                                &mut coord,
                                &mut nodes,
                                m,
                                CommCause::Retransmit,
                            );
                        }
                        node_interval[i] = (node_interval[i] * 2).min(MAX_BACKOFF);
                        node_retry_at[i] = t + node_interval[i];
                    }
                } else {
                    node_interval[i] = self.recovery.retransmit_after;
                    node_retry_at[i] = t + self.recovery.retransmit_after;
                }
            }
            if coord.is_resolving() {
                if t >= coord_retry_at {
                    let outs = coord.outstanding_requests();
                    retransmits += outs.len();
                    fabric.route_outbounds_as(&mut coord, &mut nodes, outs, CommCause::Retransmit);
                    coord_interval = (coord_interval * 2).min(MAX_BACKOFF);
                    coord_retry_at = t + coord_interval;
                }
            } else {
                coord_interval = self.recovery.retransmit_after;
                coord_retry_at = t + self.recovery.retransmit_after;
            }

            // 4. Eviction after consecutive dead-connection strikes. The
            //    harness peeks at ground truth only to *reset* strikes
            //    once the process is back; the eviction decision itself
            //    uses observed failures, as a deployment would.
            //
            //    A delivery failure is a *synchronous* send error
            //    (connection refused), not silence — so the coordinator
            //    fast-retries at the base interval instead of backing
            //    off exponentially, and strikes accrue at that cadence.
            //    Without this, eviction of a dead node takes
            //    Σ 2ᵏ·retransmit_after rounds and outlasts any drain cap.
            let failures = fabric.take_delivery_failures();
            if failures
                .iter()
                .any(|f| matches!(f.dir, Direction::CoordToNode))
            {
                coord_interval = self.recovery.retransmit_after;
                coord_retry_at = coord_retry_at.min(t + 1 + self.recovery.retransmit_after);
            }
            for failure in failures {
                strikes[failure.node] += 1;
            }
            for (i, strike) in strikes.iter_mut().enumerate() {
                if !fabric.is_crashed(i) {
                    *strike = 0;
                } else if *strike >= self.recovery.evict_after && coord.is_alive(i) {
                    let outs = coord.evict(i);
                    fabric.route_outbounds_as(&mut coord, &mut nodes, outs, CommCause::Eviction);
                }
            }

            // 5. Measure against the aggregate over members the
            //    coordinator still believes in. A round counts as
            //    *degraded* — outside the ε-guarantee — while a partition
            //    is active, an un-evicted node is down, or any exchange
            //    is still unresolved.
            let members: Vec<Vec<f64>> = (0..n)
                .filter(|&i| coord.is_alive(i))
                .filter_map(|i| current[i].clone())
                .collect();
            if let (Some(est), false) = (coord.current_value(), members.is_empty()) {
                let truth = self.f.eval(&vector::mean(&members).expect("non-empty"));
                let err = (est - truth).abs();
                let degraded = self.plan.partition_active(t)
                    || (0..n).any(|i| fabric.is_crashed(i) && coord.is_alive(i))
                    || coord.is_resolving()
                    || (0..n).any(|i| !fabric.is_crashed(i) && nodes[i].is_pending());
                g_estimate.set(est);
                g_truth.set(truth);
                g_messages.set(fabric.stats().total_msgs() as f64);
                h_error.observe(err);
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        "round",
                        &[
                            ("truth", truth.into()),
                            ("estimate", est.into()),
                            ("degraded", degraded.into()),
                            ("messages", fabric.stats().total_msgs().into()),
                        ],
                    );
                }
                if degraded {
                    max_degraded = max_degraded.max(err);
                } else {
                    if let Some(zone) = coord.zone() {
                        if !zone.admissible(truth) {
                            missed += 1;
                        }
                    }
                    errors.push(err);
                }
            }

            // 6. Periodic checkpoint; a request that lands mid-sync is
            //    deferred (and counted) rather than silently skipped,
            //    then retried here at the next quiescent round.
            if let Some(store) = &store {
                let due = (t + 1).is_multiple_of(snapshot_interval);
                let snap = if due {
                    coord.request_snapshot()
                } else {
                    coord.take_deferred_snapshot()
                };
                if let Some(s) = snap {
                    store.lock().write_snapshot(&s).expect("store: periodic checkpoint");
                }
            }

            t += 1;
        };

        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "run_info",
                &[
                    ("nodes", n.into()),
                    ("rounds", total.into()),
                    ("updates", updates.into()),
                ],
            );
        }

        let st = coord.stats();
        let traffic = fabric.stats();
        debug_assert_eq!(
            fabric
                .ledger()
                .check_conservation(traffic.total_msgs() as u64, traffic.total_payload() as u64),
            None,
            "ledger must conserve traffic totals under faults"
        );
        let mut out = RunStats {
            messages: traffic.total_msgs(),
            payload_bytes: traffic.total_payload(),
            missed_violation_rounds: missed,
            neighborhood_violations: st.neighborhood_violations,
            safezone_violations: st.safezone_violations,
            faulty_reports: st.faulty_reports,
            full_syncs: st.full_syncs,
            lazy_syncs: st.lazy_syncs,
            retransmits,
            injected_faults: fabric.injected_faults(),
            recovery_rounds,
            max_error_during_partition: max_degraded,
            evictions: st.evictions,
            rejoins: st.rejoins,
            coordinator_recoveries,
            ledger: Some(fabric.ledger().entries()),
            ..RunStats::default()
        };
        out.set_errors(errors);
        ChaosReport {
            stats: out,
            fault_trace: fabric.trace().to_vec(),
            quiesced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    /// Linear mean of a 2-vector: ADCD-E is exact, so the ε-guarantee is
    /// tight at quiescence — the right probe for recovery correctness.
    struct Mean2;
    impl ScalarFn for Mean2 {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            (x[0] + x[1]) * S::from_f64(0.5)
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Mean2))
    }

    fn drifting_workload(n: usize, rounds: usize) -> Workload {
        let series: Vec<Vec<Vec<f64>>> = (0..n)
            .map(|i| {
                (0..rounds)
                    .map(|t| {
                        let phase = t as f64 * 0.11 + i as f64;
                        vec![phase.sin() * 2.0, (phase * 0.7).cos() * 2.0]
                    })
                    .collect()
            })
            .collect();
        Workload::from_dense(&series)
    }

    fn noisy_plan() -> FaultPlan {
        FaultPlan::seeded(0xFEED)
            .with_drop_rate(0.10)
            .with_duplicate_rate(0.04)
            .with_reorder_rate(0.04)
            .with_delay(0.04, 2)
            .with_crash(2, 40, Some(70))
            .with_partition(vec![1], 20, 28)
    }

    /// Acceptance (a): same seed ⇒ bit-identical fault trace and final
    /// statistics across two independent runs.
    #[test]
    fn same_seed_is_bit_identical() {
        let w = drifting_workload(4, 110);
        let sim = |plan| {
            ChaosSimulation::new(f(), MonitorConfig::builder(0.4).build(), plan).with_recovery(
                RecoveryConfig {
                    retransmit_after: 2,
                    evict_after: 3,
                },
            )
        };
        let a = sim(noisy_plan()).run(&w);
        let b = sim(noisy_plan()).run(&w);
        assert!(!a.fault_trace.is_empty());
        assert_eq!(a.fault_trace, b.fault_trace, "fault trace must replay");
        assert_eq!(a.stats, b.stats, "stats must replay");
        assert_eq!(a.quiesced, b.quiesced);
    }

    /// Acceptance (b): 10% frame drop plus a mid-run crash and rejoin
    /// still converges to |f(x0) − f(x̄)| ≤ ε at quiescence, and never
    /// deadlocks.
    #[test]
    fn drop_crash_rejoin_converges_within_epsilon() {
        let eps = 0.4;
        let w = drifting_workload(4, 110);
        let report = ChaosSimulation::new(f(), MonitorConfig::builder(eps).build(), noisy_plan())
            .with_recovery(RecoveryConfig {
                retransmit_after: 2,
                evict_after: 3,
            })
            .run(&w);
        assert!(report.quiesced, "protocol deadlocked: {:?}", report.stats);
        assert!(
            report.stats.final_error <= eps + 1e-9,
            "error at quiescence {} > ε {eps}",
            report.stats.final_error
        );
        assert!(
            report.stats.max_error <= eps + 1e-9,
            "quiescent-round error {} escaped ε {eps} (missed {} rounds)",
            report.stats.max_error,
            report.stats.missed_violation_rounds
        );
        assert!(report.stats.injected_faults > 0);
        assert!(report.stats.retransmits > 0, "drops must force retransmits");
        assert!(
            report.stats.max_error_during_partition > 0.0,
            "degraded rounds should be observed"
        );
    }

    /// The crash→evict→restart→rejoin arc actually exercises the
    /// membership machinery, not just the frame faults.
    #[test]
    fn crash_is_evicted_then_rejoins() {
        let eps = 0.4;
        let w = drifting_workload(4, 110);
        let plan = FaultPlan::seeded(7).with_crash(2, 30, Some(75));
        let report = ChaosSimulation::new(f(), MonitorConfig::builder(eps).build(), plan)
            .with_recovery(RecoveryConfig {
                retransmit_after: 2,
                evict_after: 3,
            })
            .run(&w);
        assert!(report.quiesced);
        assert!(
            report.stats.evictions >= 1,
            "dead node never evicted: {:?}",
            report.stats
        );
        assert!(
            report.stats.rejoins >= 1,
            "restarted node never rejoined: {:?}",
            report.stats
        );
        assert!(report.stats.final_error <= eps + 1e-9);
    }

    /// Acceptance (c): `FaultPlan::none()` is byte-identical to running
    /// the unwrapped fabric.
    #[test]
    fn none_plan_matches_plain_simulation() {
        let w = drifting_workload(3, 80);
        let cfg = MonitorConfig::builder(0.4).build();
        let plain = Simulation::new(f(), cfg.clone()).run(&w);
        let chaos = ChaosSimulation::new(f(), cfg, FaultPlan::none()).run(&w);
        assert!(chaos.quiesced);
        assert!(chaos.fault_trace.is_empty());
        assert_eq!(chaos.stats.messages, plain.messages);
        assert_eq!(chaos.stats.payload_bytes, plain.payload_bytes);
        assert_eq!(chaos.stats.full_syncs, plain.full_syncs);
        assert_eq!(chaos.stats.lazy_syncs, plain.lazy_syncs);
        assert_eq!(chaos.stats.retransmits, 0);
        assert_eq!(chaos.stats.recovery_rounds, 0);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use automon_autodiff::AutoDiffFn;
    use automon_data::synthetic::InnerProductDataset;
    use automon_data::windowed_mean_series;
    use automon_functions::InnerProduct;

    /// Regression: a node that restarted without being evicted used to
    /// receive `NewConstraintsCached` (the coordinator still believed it
    /// held curvature), so its fresh incarnation re-registered forever
    /// and the run deadlocked. The default — patient — recovery config
    /// is exactly the regime where eviction never fires, which is what
    /// exposed the loop.
    #[test]
    fn patient_recovery_still_converges_after_restart() {
        let nodes = 4;
        let rounds = 90;
        let dim = 4;
        let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, 1);
        let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
        let plan = FaultPlan::seeded(7)
            .with_drop_rate(0.1)
            .with_crash(2, 30, Some(60))
            .with_partition(vec![1], 10, 20);
        let report =
            ChaosSimulation::new(f, MonitorConfig::builder(0.3).build(), plan).run(&w);
        assert!(report.quiesced, "re-registration loop: {:?}", report.stats);
        assert!(report.stats.final_error <= 0.3 + 1e-9, "{:?}", report.stats);
        assert_eq!(report.stats.evictions, 0, "patience should outlast the crash");
    }

    /// Regression: a node that crashes for good used to take
    /// Σ 2ᵏ·retransmit_after rounds to strike out, because strikes only
    /// accrued on coordinator retransmits and those backed off
    /// exponentially — eviction outlasted the drain cap and the run was
    /// reported as a deadlock. Delivery failures are synchronous send
    /// errors, so the coordinator now fast-retries at the base interval
    /// while they persist; a dead node must be evicted and the run must
    /// quiesce with the survivors.
    #[test]
    fn permanent_crash_is_evicted_and_quiesces() {
        let nodes = 4;
        let rounds = 120;
        let dim = 4;
        let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, 1);
        let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
        let f: Arc<dyn MonitoredFunction> =
            Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
        let plan = FaultPlan::seeded(3).with_drop_rate(0.15).with_crash(1, 40, None);
        let report =
            ChaosSimulation::new(f, MonitorConfig::builder(0.5).build(), plan).run(&w);
        assert!(report.quiesced, "eviction too slow: {:?}", report.stats);
        assert_eq!(report.stats.evictions, 1, "{:?}", report.stats);
        assert_eq!(report.stats.rejoins, 0);
        assert!(report.stats.final_error <= 0.5 + 1e-9, "{:?}", report.stats);
    }
}
