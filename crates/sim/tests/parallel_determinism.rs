//! Determinism of the parallel full-sync pipeline (DESIGN.md §3.7).
//!
//! `Parallelism` is a latency knob, not a semantics knob: the batched
//! eigen search and the fabric's parallel constraint fan-out must return
//! results bit-identical to the sequential reference path for the same
//! seed. These properties drive random polynomials and the Rozenbrock
//! function through both paths and compare every output exactly.

use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::{
    adcd, AdcdKind, Curvature, DcDecomposition, EigenSearch, MonitorConfig, MonitoredFunction,
    NeighborhoodBox, Parallelism, SpectralBackend,
};
use automon_functions::Rozenbrock;
use automon_sim::{Simulation, Workload};
use proptest::prelude::*;

/// A dense random polynomial: per-coordinate cubics plus all pairwise
/// cross terms, so the Hessian varies over the neighborhood and has
/// off-diagonal structure.
#[derive(Debug, Clone)]
struct RandomPoly {
    cubic: Vec<f64>,
    quad: Vec<f64>,
    cross: Vec<f64>,
}

impl ScalarFn for RandomPoly {
    fn dim(&self) -> usize {
        self.cubic.len()
    }

    fn call<S: Scalar>(&self, x: &[S]) -> S {
        let d = x.len();
        let mut acc = S::from_f64(0.0);
        for (i, &xi) in x.iter().enumerate() {
            acc = acc
                + S::from_f64(self.cubic[i]) * xi * xi * xi
                + S::from_f64(self.quad[i]) * xi * xi;
        }
        let mut k = 0;
        for i in 0..d {
            for j in (i + 1)..d {
                acc = acc + S::from_f64(self.cross[k]) * x[i] * x[j];
                k += 1;
            }
        }
        acc
    }
}

fn cfg(par: Parallelism, seed: u64, backend: SpectralBackend) -> MonitorConfig {
    MonitorConfig::builder(0.1)
        .adcd(AdcdKind::X)
        .eigen_search(EigenSearch {
            probes: 5,
            nm_iters: 8,
            seed,
            ..Default::default()
        })
        .parallelism(par)
        .spectral_backend(backend)
        .build()
}

fn assert_identical(a: &DcDecomposition, b: &DcDecomposition) {
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.dc, b.dc);
    assert_eq!(
        a.lambda_min_hat.to_bits(),
        b.lambda_min_hat.to_bits(),
        "λ_min: {} vs {}",
        a.lambda_min_hat,
        b.lambda_min_hat
    );
    assert_eq!(
        a.lambda_max_hat.to_bits(),
        b.lambda_max_hat.to_bits(),
        "λ_max: {} vs {}",
        a.lambda_max_hat,
        b.lambda_max_hat
    );
    match (&a.curvature, &b.curvature) {
        (Curvature::Scalar(x), Curvature::Scalar(y)) => assert_eq!(x.to_bits(), y.to_bits()),
        (Curvature::Quadratic(m), Curvature::Quadratic(n)) => {
            let (ms, ns) = (m.as_slice(), n.as_slice());
            assert_eq!(ms.len(), ns.len());
            for (x, y) in ms.iter().zip(ns) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        (x, y) => panic!("curvature kind mismatch: {x:?} vs {y:?}"),
    }
}

/// Decompose under every parallelism setting and compare against the
/// sequential reference — for the Lanczos-backed default and for the
/// Jacobi escape hatch alike.
fn check_all_settings(f: &dyn MonitoredFunction, x0: &[f64], b: &NeighborhoodBox, seed: u64) {
    for backend in [SpectralBackend::Ql, SpectralBackend::Jacobi] {
        let reference =
            adcd::decompose(f, x0, Some(b), &cfg(Parallelism::Sequential, seed, backend));
        for par in [
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            let got = adcd::decompose(f, x0, Some(b), &cfg(par, seed, backend));
            assert_identical(&reference, &got);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched ADCD-X eigen search is bit-identical to the
    /// sequential path on random polynomials, for any worker count.
    #[test]
    fn random_polynomial_decomposition_matches_sequential(
        cubic in proptest::collection::vec(-2.0f64..2.0, 3),
        quad in proptest::collection::vec(-3.0f64..3.0, 3),
        cross in proptest::collection::vec(-1.5f64..1.5, 3),
        x0 in proptest::collection::vec(-1.0f64..1.0, 3),
        half in 0.05f64..0.6,
        seed in 0u64..1000,
    ) {
        let f = AutoDiffFn::new(RandomPoly { cubic, quad, cross });
        let b = NeighborhoodBox {
            lo: x0.iter().map(|v| v - half).collect(),
            hi: x0.iter().map(|v| v + half).collect(),
        };
        check_all_settings(&f, &x0, &b, seed);
    }

    /// Same property on the Rozenbrock function (the paper's
    /// neighborhood-tuning stress case: steep curved valley).
    #[test]
    fn rozenbrock_decomposition_matches_sequential(
        x0 in proptest::collection::vec(-1.5f64..1.5, 2),
        half in 0.05f64..0.8,
        seed in 0u64..1000,
    ) {
        let f = AutoDiffFn::new(Rozenbrock);
        let b = NeighborhoodBox {
            lo: x0.iter().map(|v| v - half).collect(),
            hi: x0.iter().map(|v| v + half).collect(),
        };
        check_all_settings(&f, &x0, &b, seed);
    }

    /// End-to-end: a full simulation (decompositions + the fabric's
    /// parallel constraint fan-out) produces the identical protocol
    /// trace — message counts, byte counts, sync counts, and errors —
    /// under every parallelism setting.
    #[test]
    fn simulation_protocol_trace_matches_sequential(
        drift in proptest::collection::vec(-0.02f64..0.02, 4),
        seed in 0u64..1000,
    ) {
        let series: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|node| {
                (0..40)
                    .map(|t| {
                        let t = t as f64;
                        vec![
                            0.4 + drift[node] * t,
                            0.2 + drift[2 + node] * t,
                        ]
                    })
                    .collect()
            })
            .collect();
        let w = Workload::from_dense(&series);
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Rozenbrock));
        let run = |par: Parallelism| {
            let cfg = MonitorConfig::builder(0.25)
                .adcd(AdcdKind::X)
                .eigen_search(EigenSearch { probes: 4, nm_iters: 6, seed, ..Default::default() })
                .parallelism(par)
                .build();
            Simulation::new(f.clone(), cfg).run(&w)
        };
        let reference = run(Parallelism::Sequential);
        for par in [Parallelism::Threads(2), Parallelism::Auto] {
            let got = run(par);
            prop_assert_eq!(reference.messages, got.messages);
            prop_assert_eq!(reference.payload_bytes, got.payload_bytes);
            prop_assert_eq!(reference.full_syncs, got.full_syncs);
            prop_assert_eq!(reference.lazy_syncs, got.lazy_syncs);
            prop_assert_eq!(reference.max_error.to_bits(), got.max_error.to_bits());
            prop_assert_eq!(
                reference.missed_violation_rounds,
                got.missed_violation_rounds
            );
        }
    }
}
