//! Conservation of the communication ledger (DESIGN.md §3.12): the
//! fabric charges the ledger at exactly the points where it bumps its
//! traffic counters, so the per-cause rollup must sum to the
//! `RunStats` message and byte totals *exactly* — for every parallelism
//! setting, and under chaos, where dropped and swallowed frames are
//! deliberately uncharged on both sides of the equation.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_chaos::{FaultPlan, RecoveryConfig};
use automon_core::{MonitorConfig, MonitoredFunction, Parallelism};
use automon_data::synthetic::InnerProductDataset;
use automon_data::windowed_mean_series;
use automon_functions::InnerProduct;
use automon_sim::{ChaosSimulation, RunStats, Simulation, Workload};
use proptest::prelude::*;

fn setup(seed: u64) -> (Arc<dyn MonitoredFunction>, Workload) {
    let (nodes, rounds, dim) = (4, 60, 4);
    let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, seed);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
    (f, w)
}

/// Ledger rows must sum to the flat counters, exactly.
fn assert_conserved(stats: &RunStats) {
    let rows = stats.ledger.as_deref().expect("runners always attach a ledger");
    let msgs: u64 = rows.iter().map(|r| r.msgs).sum();
    let bytes: u64 = rows.iter().map(|r| r.bytes).sum();
    assert_eq!(msgs as usize, stats.messages, "ledger msgs drifted: {rows:?}");
    assert_eq!(
        bytes as usize, stats.payload_bytes,
        "ledger bytes drifted: {rows:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds for every parallelism setting, and the rollup
    /// itself is identical to the sequential reference (the ledger is
    /// charged in the fabric's sequential accounting section, so worker
    /// count must not perturb it).
    #[test]
    fn plain_run_conserves_under_any_parallelism(seed in 0u64..500) {
        let (f, w) = setup(seed);
        let run = |par: Parallelism| {
            let cfg = MonitorConfig::builder(0.2).parallelism(par).build();
            Simulation::new(f.clone(), cfg).run(&w)
        };
        let reference = run(Parallelism::Sequential);
        assert_conserved(&reference);
        for par in [Parallelism::Threads(2), Parallelism::Threads(5), Parallelism::Auto] {
            let got = run(par);
            assert_conserved(&got);
            prop_assert_eq!(&reference.ledger, &got.ledger);
        }
    }

    /// Conservation holds under injected faults: drops, duplicates,
    /// delays, a crash/restart arc, and a partition. Suppressed frames
    /// are uncharged on both the counter and the ledger side.
    #[test]
    fn chaos_run_conserves_under_faults(
        seed in 0u64..200,
        drop_rate in 0.0f64..0.15,
        dup_rate in 0.0f64..0.05,
    ) {
        let (f, w) = setup(seed);
        let plan = FaultPlan::seeded(seed ^ 0xBEEF)
            .with_drop_rate(drop_rate)
            .with_duplicate_rate(dup_rate)
            .with_delay(0.03, 2)
            .with_crash(2, 20, Some(40))
            .with_partition(vec![1], 10, 18);
        let report = ChaosSimulation::new(f, MonitorConfig::builder(0.3).build(), plan)
            .with_recovery(RecoveryConfig { retransmit_after: 2, evict_after: 3 })
            .run(&w);
        prop_assert!(report.quiesced);
        assert_conserved(&report.stats);
    }
}

/// The fault-tolerance causes actually show up as separable ledger rows.
/// A lossy run charges `retransmit`; a drop-free crash arc charges
/// `eviction` and `rejoin` (drop-free because a dropped or
/// failed-delivery frame is uncharged by design, and the rejoin
/// re-registration is a single frame).
#[test]
fn recovery_traffic_is_charged_to_recovery_causes() {
    let recovery = RecoveryConfig {
        retransmit_after: 2,
        evict_after: 3,
    };

    let (f, w) = setup(7);
    let plan = FaultPlan::seeded(7).with_drop_rate(0.15);
    let report = ChaosSimulation::new(f, MonitorConfig::builder(0.3).build(), plan)
        .with_recovery(recovery)
        .run(&w);
    assert!(report.quiesced, "{:?}", report.stats);
    assert_conserved(&report.stats);
    let rows = report.stats.ledger.as_deref().unwrap();
    assert!(report.stats.retransmits > 0, "{:?}", report.stats);
    assert!(
        rows.iter().any(|r| r.cause == "retransmit" && r.msgs > 0),
        "{rows:?}"
    );

    let (f, w) = setup(7);
    let plan = FaultPlan::seeded(7).with_crash(2, 20, Some(45));
    let report = ChaosSimulation::new(f, MonitorConfig::builder(0.3).build(), plan)
        .with_recovery(recovery)
        .run(&w);
    assert!(report.quiesced, "{:?}", report.stats);
    assert_conserved(&report.stats);
    let rows = report.stats.ledger.as_deref().unwrap();
    let has = |cause: &str| rows.iter().any(|r| r.cause == cause && r.msgs > 0);
    assert!(report.stats.evictions > 0, "{:?}", report.stats);
    assert!(has("eviction"), "{rows:?}");
    assert!(report.stats.rejoins > 0, "{:?}", report.stats);
    assert!(has("rejoin"), "{rows:?}");
    assert!(has("registration"), "{rows:?}");
}

/// Quiet data: the whole run is registration plus the initial full sync,
/// and the ledger says exactly that.
#[test]
fn quiet_run_ledger_is_registration_plus_full_sync() {
    let series: Vec<Vec<Vec<f64>>> =
        (0..4).map(|_| vec![vec![1.0, 2.0, 3.0, 4.0]; 50]).collect();
    let w = Workload::from_dense(&series);
    let stats = Simulation::new(
        Arc::new(AutoDiffFn::new(InnerProduct::new(4))),
        MonitorConfig::builder(0.1).build(),
    )
    .run(&w);
    assert_conserved(&stats);
    let rows = stats.ledger.as_deref().unwrap();
    let causes: Vec<&str> = rows.iter().map(|r| r.cause.as_str()).collect();
    assert_eq!(causes, vec!["registration", "full_sync"], "{rows:?}");
    let reg = rows.iter().find(|r| r.cause == "registration").unwrap();
    assert_eq!(reg.msgs, 4, "one registration per node: {rows:?}");
}
