//! End-to-end coordinator crash/recovery (docs/DURABILITY.md): a
//! chaos run that kills the coordinator mid-stream must rebuild it
//! from the durable store (checkpoint + WAL replay), resync the fleet
//! with the traffic charged to the `recovery` ledger cause, and still
//! converge within ε — all of it deterministically: same seed, same
//! crash schedule ⇒ byte-identical stats, fault trace, ledger, and
//! telemetry trace, on the in-memory and the real-file disk backend
//! alike.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_chaos::{FaultPlan, RecoveryConfig};
use automon_core::{MonitorConfig, MonitoredFunction};
use automon_data::synthetic::InnerProductDataset;
use automon_data::windowed_mean_series;
use automon_functions::InnerProduct;
use automon_obs::Telemetry;
use automon_sim::{ChaosSimulation, Workload};
use automon_store::{DynDisk, FileDisk, MemDisk};

const EPSILON: f64 = 0.25;

fn setup(seed: u64) -> (Arc<dyn MonitoredFunction>, MonitorConfig, Workload) {
    let (nodes, rounds, dim) = (4, 90, 4);
    let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, seed);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
    (f, MonitorConfig::builder(EPSILON).build(), w)
}

fn crashing_plan() -> FaultPlan {
    FaultPlan::seeded(7)
        .with_drop_rate(0.08)
        .with_coordinator_crash(30)
        .with_coordinator_crash(60)
}

fn sim(f: Arc<dyn MonitoredFunction>, cfg: MonitorConfig, plan: FaultPlan) -> ChaosSimulation {
    ChaosSimulation::new(f, cfg, plan)
        .with_recovery(RecoveryConfig { retransmit_after: 2, evict_after: 4 })
}

#[test]
fn fleet_converges_after_coordinator_crashes() {
    let (f, cfg, w) = setup(11);
    let report = sim(f, cfg, crashing_plan()).run(&w);
    assert!(report.quiesced, "protocol must drain after recovery");
    assert_eq!(report.stats.coordinator_recoveries, 2, "both scheduled crashes recover");
    // The ε-guarantee holds once the fleet re-converges.
    assert!(
        report.stats.final_error <= EPSILON,
        "post-recovery error {} exceeds ε",
        report.stats.final_error
    );
    // Recovery traffic is visible — and charged to its own cause.
    let ledger = report.stats.ledger.as_deref().expect("ledger attached");
    let recovery = ledger
        .iter()
        .find(|row| row.cause == "recovery")
        .expect("recovery cause present in the ledger");
    assert!(recovery.msgs > 0, "recovery resync sends messages");
    assert!(recovery.bytes > 0);
    // Conservation still holds with the new cause in the mix.
    let msgs: u64 = ledger.iter().map(|r| r.msgs).sum();
    let bytes: u64 = ledger.iter().map(|r| r.bytes).sum();
    assert_eq!(msgs as usize, report.stats.messages);
    assert_eq!(bytes as usize, report.stats.payload_bytes);
}

#[test]
fn crash_recovery_is_deterministic() {
    let (f, cfg, w) = setup(11);
    let run = || {
        let tel = Telemetry::enabled();
        let report = sim(f.clone(), cfg.clone(), crashing_plan())
            .with_telemetry(tel.clone())
            .run(&w);
        (report, tel.trace_jsonl())
    };
    let (a, trace_a) = run();
    let (b, trace_b) = run();
    assert_eq!(a.stats, b.stats, "same seed + crash schedule ⇒ identical stats");
    assert_eq!(a.fault_trace, b.fault_trace);
    assert_eq!(a.quiesced, b.quiesced);
    assert_eq!(trace_a, trace_b, "telemetry trace must be byte-identical");
    assert!(
        trace_a.contains("coordinator_recovered"),
        "recovery emits its trace event"
    );
}

#[test]
fn memory_and_file_backends_replay_identically() {
    let (f, cfg, w) = setup(11);
    let mem = sim(f.clone(), cfg.clone(), crashing_plan())
        .with_store(|| Box::new(MemDisk::new()) as DynDisk, 16)
        .run(&w);
    let dir = std::env::temp_dir().join(format!("automon-crash-recovery-{}", std::process::id()));
    let dir2 = dir.clone();
    let file = sim(f, cfg, crashing_plan())
        .with_store(
            move || Box::new(FileDisk::open(&dir2).expect("temp wal dir")) as DynDisk,
            16,
        )
        .run(&w);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(mem.stats, file.stats, "backends must be behaviorally indistinguishable");
    assert_eq!(mem.fault_trace, file.fault_trace);
    assert_eq!(mem.quiesced, file.quiesced);
}

#[test]
fn snapshot_cadence_does_not_change_results() {
    // Recovery replays checkpoint + WAL suffix; where the checkpoint
    // fell must be invisible to the outcome.
    let (f, cfg, w) = setup(11);
    let base = sim(f.clone(), cfg.clone(), crashing_plan())
        .with_store(|| Box::new(MemDisk::new()) as DynDisk, 1)
        .run(&w);
    for interval in [4usize, 16, 1000] {
        let got = sim(f.clone(), cfg.clone(), crashing_plan())
            .with_store(|| Box::new(MemDisk::new()) as DynDisk, interval)
            .run(&w);
        assert_eq!(got.stats, base.stats, "snapshot interval {interval} changed the run");
        assert_eq!(got.fault_trace, base.fault_trace);
    }
}

#[test]
fn crash_before_initialization_recovers() {
    // Crash at round 0: the store holds only the baseline checkpoint;
    // recovery must not panic and the run must still converge.
    let (f, cfg, w) = setup(3);
    let plan = FaultPlan::seeded(3).with_coordinator_crash(0);
    let report = sim(f, cfg, plan).run(&w);
    assert!(report.quiesced);
    assert_eq!(report.stats.coordinator_recoveries, 1);
    assert!(report.stats.final_error <= EPSILON);
}

#[test]
fn crashes_compose_with_node_faults() {
    // Coordinator crashes while a node is down and frames are dropping:
    // the recovered coordinator must drive eviction/rejoin to
    // completion like an uninterrupted one.
    let (f, cfg, w) = setup(19);
    let plan = FaultPlan::seeded(5)
        .with_drop_rate(0.1)
        .with_crash(2, 25, Some(45))
        .with_coordinator_crash(35);
    let a = sim(f.clone(), cfg.clone(), plan.clone()).run(&w);
    let b = sim(f, cfg, plan).run(&w);
    assert!(a.quiesced, "composite faults must still drain");
    assert_eq!(a.stats.coordinator_recoveries, 1);
    assert_eq!(a.stats, b.stats, "composite runs stay deterministic");
    assert_eq!(a.fault_trace, b.fault_trace);
}
