//! Fleet determinism and conservation contracts (DESIGN §3.14).
//!
//! A fleet run is a deterministic function of (workload, config, fault
//! plan): the round loop is sequential, accounting sections are
//! ordered, shard routing hashes are pinned — so the full report
//! (errors, per-tier message split, combined ledger), the telemetry
//! trace, and the metrics exposition must be *byte-identical* across
//! repeated runs, across every `Parallelism` setting, with and without
//! a membership-fault schedule. The combined two-tier ledger must
//! conserve the fleet's traffic totals in every case.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_core::{MonitorConfig, MonitoredFunction, Parallelism};
use automon_data::synthetic::InnerProductDataset;
use automon_data::windowed_mean_series;
use automon_fleet::{FleetConfig, FleetFaultPlan, LeafCrash, NodeCrash};
use automon_functions::InnerProduct;
use automon_obs::Telemetry;
use automon_sim::{FleetReport, FleetSimulation, Workload};

const STREAMS: usize = 12;
const SHARDS: usize = 4;

fn setup(par: Parallelism) -> (Arc<dyn MonitoredFunction>, MonitorConfig, Workload) {
    let (rounds, dim, seed) = (60, 4, 11);
    let raw = InnerProductDataset::generate(STREAMS, rounds + 19, dim, seed);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
    let cfg = MonitorConfig::builder(0.3).parallelism(par).build();
    (f, cfg, w)
}

fn faults() -> FleetFaultPlan {
    FleetFaultPlan {
        node_crashes: vec![
            NodeCrash {
                stream: 3,
                at: 10,
                restart: Some(25),
            },
            NodeCrash {
                stream: 7,
                at: 15,
                restart: None,
            },
        ],
        leaf_crashes: vec![LeafCrash { leaf: 1, at: 30 }],
    }
}

fn run(par: Parallelism, plan: Option<FleetFaultPlan>) -> (FleetReport, String, String) {
    let (f, cfg, w) = setup(par);
    let tel = Telemetry::enabled();
    let mut sim =
        FleetSimulation::new(f, cfg, FleetConfig::new(SHARDS)).with_telemetry(tel.clone());
    if let Some(plan) = plan {
        sim = sim.with_fault_plan(plan);
    }
    let report = sim.run(&w);
    (report, tel.trace_jsonl(), tel.prometheus())
}

fn report_json(report: &FleetReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn plain_fleet_run_is_byte_identical() {
    let (ra, ta, ma) = run(Parallelism::Sequential, None);
    let (rb, tb, mb) = run(Parallelism::Sequential, None);
    assert!(!ta.is_empty(), "instrumented run must emit events");
    assert_eq!(report_json(&ra), report_json(&rb));
    assert_eq!(ta, tb);
    assert_eq!(ma, mb);
}

#[test]
fn faulted_fleet_run_is_byte_identical() {
    let (ra, ta, ma) = run(Parallelism::Sequential, Some(faults()));
    let (rb, tb, mb) = run(Parallelism::Sequential, Some(faults()));
    assert_eq!(ra.node_crashes, 2);
    assert_eq!(ra.leaf_crashes, 1);
    assert_eq!(ra.rebalances, 1);
    assert_eq!(ra.restarts, 1);
    assert_eq!(report_json(&ra), report_json(&rb));
    assert_eq!(ta, tb);
    assert_eq!(ma, mb);
}

#[test]
fn parallelism_is_a_latency_knob_not_a_semantics_knob() {
    let (reference, ref_trace, ref_metrics) = run(Parallelism::Sequential, Some(faults()));
    for par in [Parallelism::Threads(2), Parallelism::Threads(5), Parallelism::Auto] {
        let (got, trace, metrics) = run(par, Some(faults()));
        assert_eq!(report_json(&reference), report_json(&got), "{par:?}");
        assert_eq!(ref_trace, trace, "{par:?}");
        assert_eq!(ref_metrics, metrics, "{par:?}");
    }
}

#[test]
fn combined_ledger_conserves_two_tier_totals() {
    for plan in [None, Some(faults())] {
        let (report, _, _) = run(Parallelism::Sequential, plan.clone());
        let entries = report.stats.ledger.as_deref().expect("ledger recorded");
        let msgs: u64 = entries.iter().map(|e| e.msgs).sum();
        let bytes: u64 = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(
            msgs,
            report.stats.messages as u64,
            "Σ per-cause msgs == grand total (plan: {})",
            plan.is_some()
        );
        assert_eq!(
            bytes,
            report.stats.payload_bytes as u64,
            "Σ per-cause bytes == grand total (plan: {})",
            plan.is_some()
        );
        assert_eq!(
            report.leaf_messages + report.root_messages,
            report.stats.messages,
            "tier split partitions the total"
        );
    }
}

#[test]
fn root_tier_carries_only_tier_causes_and_stays_sublinear() {
    let (report, _, _) = run(Parallelism::Sequential, None);
    assert!(report.leaf_reports > 0, "drifting data must reach the root");
    assert!(
        report.root_messages < report.leaf_messages,
        "root tier ({}) must carry less than the leaf tiers ({})",
        report.root_messages,
        report.leaf_messages
    );
    let entries = report.stats.ledger.as_deref().expect("ledger recorded");
    let tier_causes = ["leaf_report", "root_sync", "shard_rebalance"];
    let tier_msgs: u64 = entries
        .iter()
        .filter(|e| tier_causes.contains(&e.cause.as_str()))
        .map(|e| e.msgs)
        .sum();
    assert_eq!(
        tier_msgs, report.root_messages as u64,
        "every root-fabric message is charged to a tier cause"
    );
}
