//! The decomposition-cache bit-identity contract (DESIGN §3.11): with
//! `warm_start` off (the default), enabling the cache — under any of
//! the three eviction policies — must leave the monitoring output
//! bit-identical to a cache-off run. Exact hits replay stored
//! decompositions whose inputs matched bitwise, so the protocol cannot
//! observe the cache at all.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_chaos::FaultPlan;
use automon_core::{CachePolicy, DecompCacheConfig, MonitorConfig, MonitoredFunction};
use automon_data::synthetic::{InnerProductDataset, RozenbrockDataset};
use automon_data::windowed_mean_series;
use automon_functions::{InnerProduct, Rozenbrock};
use automon_obs::Telemetry;
use automon_sim::{ChaosSimulation, Simulation, Workload};

const POLICIES: [CachePolicy; 3] = [CachePolicy::LruK, CachePolicy::Slru, CachePolicy::Arc];

/// Rozenbrock: non-constant Hessian, so full syncs run ADCD-X and the
/// cache sits on the hot path.
fn rozenbrock_setup() -> (Arc<dyn MonitoredFunction>, Workload) {
    let raw = RozenbrockDataset::generate(4, 140, 21);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Rozenbrock));
    (f, w)
}

/// Inner product: constant Hessian (ADCD-E), so the cache must be a
/// pure bystander on this path too.
fn inner_product_setup() -> (Arc<dyn MonitoredFunction>, Workload) {
    let raw = InnerProductDataset::generate(4, 120, 4, 42);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(4)));
    (f, w)
}

fn cfg_with(policy: Option<CachePolicy>) -> MonitorConfig {
    let b = MonitorConfig::builder(0.2);
    match policy {
        Some(p) => b.decomp_cache(DecompCacheConfig::with_policy(p)).build(),
        None => b.build(),
    }
}

#[test]
fn cache_on_matches_cache_off_on_section_4_2_functions() {
    type Setup = fn() -> (Arc<dyn MonitoredFunction>, Workload);
    for (name, setup) in [
        ("rozenbrock", rozenbrock_setup as Setup),
        ("inner-product", inner_product_setup as Setup),
    ] {
        let (f, w) = setup();
        let baseline = Simulation::new(f.clone(), cfg_with(None)).run(&w);
        assert!(baseline.full_syncs > 0, "{name}: workload must sync");
        for policy in POLICIES {
            let cached = Simulation::new(f.clone(), cfg_with(Some(policy))).run(&w);
            assert_eq!(cached, baseline, "{name} with {policy:?} diverged");
        }
    }
}

#[test]
fn chaos_run_with_cache_is_byte_identical_under_fixed_seed() {
    let plan = || {
        FaultPlan::seeded(0xC0FFEE)
            .with_drop_rate(0.08)
            .with_duplicate_rate(0.03)
            .with_delay(0.03, 2)
            .with_crash(2, 30, Some(60))
            .with_partition(vec![1], 15, 25)
    };
    let run = || {
        let (f, w) = rozenbrock_setup();
        let cfg = cfg_with(Some(CachePolicy::Arc));
        let tel = Telemetry::enabled();
        let report = ChaosSimulation::new(f, cfg, plan())
            .with_telemetry(tel.clone())
            .run(&w);
        (report, tel.trace_jsonl(), tel.prometheus())
    };
    let (report_a, trace_a, metrics_a) = run();
    let (report_b, trace_b, metrics_b) = run();
    assert!(!trace_a.is_empty(), "instrumented run must emit events");
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(report_a.fault_trace, report_b.fault_trace);
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
}

#[test]
fn chaos_with_cache_matches_chaos_without_cache() {
    let (f, w) = rozenbrock_setup();
    let plain = ChaosSimulation::new(f.clone(), cfg_with(None), FaultPlan::none()).run(&w);
    let cached = ChaosSimulation::new(
        f,
        cfg_with(Some(CachePolicy::Slru)),
        FaultPlan::none(),
    )
    .run(&w);
    assert_eq!(cached.stats, plain.stats);
    assert_eq!(cached.quiesced, plain.quiesced);
}
