//! The reactor-path determinism contract: a run over `Reactor<SimPoller>`
//! is a pure function of `(net_seed, plan, workload)` — same inputs ⇒
//! byte-identical JSONL trace and identical serialized `RunStats`, with
//! chaos faults injected at the decoded-frame boundary. Plus backend
//! parity: a fault-free reactor run reaches the same protocol decisions
//! as the in-process fabric the threaded backend shares its logic with.

use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_chaos::FaultPlan;
use automon_core::{MonitorConfig, MonitoredFunction};
use automon_sim::{NetSimulation, Simulation, Workload};

struct Mean1;
impl ScalarFn for Mean1 {
    fn dim(&self) -> usize {
        1
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0]
    }
}

fn f() -> Arc<dyn MonitoredFunction> {
    Arc::new(AutoDiffFn::new(Mean1))
}

fn workload(n: usize, rounds: usize) -> Workload {
    // A deterministic drifting series with per-node phase offsets —
    // enough motion to trigger violations, syncs, and pulls.
    let series: Vec<Vec<Vec<f64>>> = (0..n)
        .map(|i| {
            (0..rounds)
                .map(|t| {
                    let drift = t as f64 * 0.07;
                    let wiggle = ((t + i) as f64 * 0.9).sin() * 0.35;
                    vec![drift + wiggle + i as f64 * 0.05]
                })
                .collect()
        })
        .collect();
    Workload::from_dense(&series)
}

fn plan() -> FaultPlan {
    FaultPlan::seeded(2024)
        .with_drop_rate(0.08)
        .with_duplicate_rate(0.05)
        .with_reorder_rate(0.05)
        .with_delay(0.05, 3)
}

#[test]
fn same_seed_is_byte_identical_under_faults() {
    let w = workload(4, 60);
    let cfg = MonitorConfig::builder(0.4).build();
    let run = || {
        NetSimulation::new(f(), cfg.clone())
            .with_plan(plan())
            .with_net_seed(7)
            .with_limits(23, 512)
            .run(&w)
    };
    let a = run();
    let b = run();

    assert!(a.quiesced, "protocol must drain after the workload");
    assert!(
        a.faults.injected() > 0,
        "rates this high over {} gated frames must fire",
        a.faults.gated
    );
    assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
    assert_eq!(
        serde_json::to_string(&a.stats).unwrap(),
        serde_json::to_string(&b.stats).unwrap(),
        "RunStats must be identical under replay"
    );
    assert_eq!(a.syscalls, b.syscalls);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn different_net_seed_changes_the_byte_schedule_not_the_outcome() {
    // The net seed only reshuffles how bytes are chunked in transit;
    // with no faults the protocol outcome must be invariant while the
    // syscall schedule differs.
    let w = workload(3, 40);
    let cfg = MonitorConfig::builder(0.4).build();
    let run = |seed| {
        NetSimulation::new(f(), cfg.clone())
            .with_net_seed(seed)
            .with_limits(17, 256)
            .run(&w)
    };
    let a = run(1);
    let b = run(2);
    assert!(a.quiesced && b.quiesced);
    assert_eq!(
        a.trace, b.trace,
        "fault-free protocol events must not depend on byte chunking"
    );
    assert_eq!(
        serde_json::to_string(&a.stats).unwrap(),
        serde_json::to_string(&b.stats).unwrap()
    );
    assert_ne!(
        a.syscalls, b.syscalls,
        "different chunk schedules should change the simulated syscall mix"
    );
}

#[test]
fn different_fault_seed_diverges() {
    let w = workload(4, 60);
    let cfg = MonitorConfig::builder(0.4).build();
    let run = |seed| {
        let p = FaultPlan::seeded(seed)
            .with_drop_rate(0.15)
            .with_delay(0.1, 3);
        NetSimulation::new(f(), cfg.clone())
            .with_plan(p)
            .with_net_seed(7)
            .run(&w)
    };
    let a = run(1);
    let b = run(99);
    assert_ne!(
        a.trace, b.trace,
        "different fault seeds must produce different traces"
    );
}

#[test]
fn fault_free_reactor_matches_in_process_fabric() {
    // Backend parity: with no faults, the reactor path (wire encoding,
    // frame reassembly, writev batching) must reach exactly the protocol
    // decisions the in-process fabric reaches — sync counts, violation
    // counts, and errors — because the transport only moves bytes.
    let w = workload(4, 80);
    let cfg = MonitorConfig::builder(0.4).build();

    let net = NetSimulation::new(f(), cfg.clone()).with_net_seed(3).run(&w);
    assert!(net.quiesced);
    let fabric = Simulation::new(f(), cfg).run(&w);

    assert_eq!(net.stats.full_syncs, fabric.full_syncs);
    assert_eq!(net.stats.lazy_syncs, fabric.lazy_syncs);
    assert_eq!(net.stats.neighborhood_violations, fabric.neighborhood_violations);
    assert_eq!(net.stats.safezone_violations, fabric.safezone_violations);
    assert_eq!(net.stats.missed_violation_rounds, fabric.missed_violation_rounds);
    assert_eq!(net.stats.max_error.to_bits(), fabric.max_error.to_bits());
    assert_eq!(net.stats.mean_error.to_bits(), fabric.mean_error.to_bits());
    assert_eq!(net.stats.retransmits, 0, "no faults, no retransmits");
    assert_eq!(net.stats.injected_faults, 0);
}

#[test]
fn drops_are_recovered_by_retransmission() {
    let w = workload(3, 50);
    let cfg = MonitorConfig::builder(0.4).build();
    let p = FaultPlan::seeded(5).with_drop_rate(0.2);
    let r = NetSimulation::new(f(), cfg).with_plan(p).with_net_seed(11).run(&w);
    assert!(r.quiesced, "dropped frames must not wedge the protocol");
    assert!(r.faults.drops > 0, "a 20% drop rate must fire");
    assert!(
        r.stats.retransmits > 0,
        "dropped frames must force retransmissions"
    );
}
