//! Regression: wrapping the fabric in a `ChaosFabric` with
//! `FaultPlan::none()` must be invisible — same messages, same bytes —
//! on the paper's synthetic inner-product workload, with and without
//! telemetry attached (instrumentation must not perturb the protocol).

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_chaos::FaultPlan;
use automon_core::{MonitorConfig, MonitoredFunction};
use automon_data::synthetic::InnerProductDataset;
use automon_data::windowed_mean_series;
use automon_functions::InnerProduct;
use automon_obs::Telemetry;
use automon_sim::{ChaosSimulation, Simulation, Workload};

fn setup() -> (Arc<dyn MonitoredFunction>, MonitorConfig, Workload) {
    let (nodes, rounds, dim, seed) = (4, 120, 4, 42);
    let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, seed);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
    (f, MonitorConfig::builder(0.2).build(), w)
}

#[test]
fn none_plan_matches_plain_on_inner_product() {
    let (f, cfg, w) = setup();
    let plain = Simulation::new(f.clone(), cfg.clone()).run(&w);
    let chaos = ChaosSimulation::new(f, cfg, FaultPlan::none()).run(&w);
    assert!(chaos.quiesced);
    assert!(chaos.fault_trace.is_empty());
    assert_eq!(chaos.stats.messages, plain.messages);
    assert_eq!(chaos.stats.payload_bytes, plain.payload_bytes);
    assert_eq!(chaos.stats.full_syncs, plain.full_syncs);
    assert_eq!(chaos.stats.lazy_syncs, plain.lazy_syncs);
    assert_eq!(chaos.stats.injected_faults, 0);
}

#[test]
fn telemetry_does_not_perturb_the_protocol() {
    let (f, cfg, w) = setup();
    let bare = Simulation::new(f.clone(), cfg.clone()).run(&w);
    let observed = Simulation::new(f.clone(), cfg.clone())
        .with_telemetry(Telemetry::enabled())
        .run(&w);
    assert_eq!(observed.messages, bare.messages);
    assert_eq!(observed.payload_bytes, bare.payload_bytes);
    assert_eq!(observed.max_error, bare.max_error);

    let bare = ChaosSimulation::new(f.clone(), cfg.clone(), FaultPlan::none()).run(&w);
    let observed = ChaosSimulation::new(f, cfg, FaultPlan::none())
        .with_telemetry(Telemetry::enabled())
        .run(&w);
    assert_eq!(observed.stats, bare.stats);
    assert_eq!(observed.fault_trace, bare.fault_trace);
}
