//! The telemetry determinism contract (DESIGN §3.9): trace events are
//! recorded only from sequential control flow on logical clocks, so two
//! runs with the same seed emit byte-identical JSONL — including under
//! chaos, where fault injection is itself seeded. Metrics rendering is
//! sorted, so the exposition text replays too.

use std::sync::Arc;

use automon_autodiff::AutoDiffFn;
use automon_chaos::FaultPlan;
use automon_core::{MonitorConfig, MonitoredFunction};
use automon_data::synthetic::InnerProductDataset;
use automon_data::windowed_mean_series;
use automon_functions::InnerProduct;
use automon_obs::Telemetry;
use automon_sim::{ChaosSimulation, Simulation, Workload};

fn setup() -> (Arc<dyn MonitoredFunction>, MonitorConfig, Workload) {
    let (nodes, rounds, dim, seed) = (4, 100, 4, 7);
    let raw = InnerProductDataset::generate(nodes, rounds + 19, dim, seed);
    let w = Workload::from_dense(&windowed_mean_series(&raw, 20));
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(InnerProduct::new(dim)));
    (f, MonitorConfig::builder(0.2).build(), w)
}

fn noisy_plan() -> FaultPlan {
    FaultPlan::seeded(0xC0FFEE)
        .with_drop_rate(0.08)
        .with_duplicate_rate(0.03)
        .with_delay(0.03, 2)
        .with_crash(2, 30, Some(60))
        .with_partition(vec![1], 15, 25)
}

fn plain_run() -> (String, String) {
    let (f, cfg, w) = setup();
    let tel = Telemetry::enabled();
    Simulation::new(f, cfg)
        .with_telemetry(tel.clone())
        .run(&w);
    (tel.trace_jsonl(), tel.prometheus())
}

fn chaos_run() -> (String, String) {
    let (f, cfg, w) = setup();
    let tel = Telemetry::enabled();
    ChaosSimulation::new(f, cfg, noisy_plan())
        .with_telemetry(tel.clone())
        .run(&w);
    (tel.trace_jsonl(), tel.prometheus())
}

#[test]
fn plain_trace_is_byte_identical_across_runs() {
    let (trace_a, metrics_a) = plain_run();
    let (trace_b, metrics_b) = plain_run();
    assert!(!trace_a.is_empty(), "instrumented run must emit events");
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
}

#[test]
fn chaos_trace_is_byte_identical_across_runs() {
    let (trace_a, metrics_a) = chaos_run();
    let (trace_b, metrics_b) = chaos_run();
    assert!(
        trace_a.lines().any(|l| l.contains("\"kind\":\"fault\"")),
        "chaos run must record injected faults"
    );
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
}

#[test]
fn trace_sequence_is_gap_free_and_rounds_monotone() {
    let (trace, _) = chaos_run();
    let mut last_round = 0u64;
    for (i, line) in trace.lines().enumerate() {
        let seq_field = format!("\"seq\":{i},");
        assert!(line.starts_with('{') && line.contains(&seq_field), "{line}");
        let round: u64 = line
            .split("\"round\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("round field");
        assert!(round >= last_round, "rounds must be non-decreasing: {line}");
        last_round = round;
    }
}
