//! Neural-network training substrate for AutoMon's evaluation workloads.
//!
//! Two monitored functions in the paper's evaluation (§4.2) are trained
//! neural networks:
//!
//! * **MLP-d** — a 3-hidden-layer tanh network trained to approximate
//!   `x₁·exp(-Σxᵢ²/(d-1))`;
//! * **DNN intrusion detection** — a 5-hidden-layer ReLU network with a
//!   sigmoid output, trained on connection records.
//!
//! The paper trains these with standard Python tooling; this crate is the
//! minimal from-scratch Rust equivalent: dense layers, tanh/ReLU/sigmoid
//! activations, MSE and binary-cross-entropy losses, and SGD-with-momentum
//! and Adam optimizers, all fully deterministic under a seed. Trained
//! weights are plain `f64` tensors (serializable), which the
//! `automon-functions` crate then evaluates *generically over the AD
//! scalar* so AutoMon can differentiate through the network.

mod mlp;
mod train;

pub use mlp::{Activation, Layer, Mlp};
pub use train::{train, Loss, Optimizer, TrainOptions, TrainReport};
