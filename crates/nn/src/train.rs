//! Mini-batch training loop with SGD-momentum and Adam.

use crate::Mlp;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error (regression: MLP-d).
    Mse,
    /// Binary cross-entropy over a sigmoid output (classification: DNN).
    Bce,
}

impl Loss {
    /// Loss value for one sample.
    pub fn value(self, pred: &[f64], target: &[f64]) -> f64 {
        match self {
            Loss::Mse => {
                pred.iter()
                    .zip(target)
                    .map(|(p, t)| 0.5 * (p - t) * (p - t))
                    .sum::<f64>()
                    / pred.len() as f64
            }
            Loss::Bce => {
                let eps = 1e-12;
                pred.iter()
                    .zip(target)
                    .map(|(&p, &t)| {
                        let p = p.clamp(eps, 1.0 - eps);
                        -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
                    })
                    .sum::<f64>()
                    / pred.len() as f64
            }
        }
    }

    /// `∂loss/∂pred` for one sample.
    pub fn gradient(self, pred: &[f64], target: &[f64]) -> Vec<f64> {
        let n = pred.len() as f64;
        match self {
            Loss::Mse => pred.iter().zip(target).map(|(p, t)| (p - t) / n).collect(),
            Loss::Bce => {
                let eps = 1e-12;
                pred.iter()
                    .zip(target)
                    .map(|(&p, &t)| {
                        let p = p.clamp(eps, 1.0 - eps);
                        (p - t) / (p * (1.0 - p)) / n
                    })
                    .collect()
            }
        }
    }
}

/// Parameter-update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// SGD with momentum coefficient.
    Sgd {
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
    /// Adam with the usual `(β₁, β₂, ε)`.
    Adam {
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Denominator stabilizer.
        eps: f64,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Update rule.
    pub optimizer: Optimizer,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 50,
            lr: 1e-2,
            batch_size: 32,
            optimizer: Optimizer::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            loss: Loss::Mse,
            seed: 7,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss after each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// The final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Optimizer state: one slot per (layer, tensor).
struct OptState {
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
    t: usize,
}

/// Train `net` on `(inputs, targets)` pairs.
///
/// # Panics
/// Panics if `inputs` and `targets` lengths differ or either is empty.
pub fn train(
    net: &mut Mlp,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    opts: &TrainOptions,
) -> TrainReport {
    assert_eq!(inputs.len(), targets.len(), "train: inputs/targets mismatch");
    assert!(!inputs.is_empty(), "train: empty dataset");
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut state = OptState {
        m_w: net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
        v_w: net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
        m_b: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        v_b: net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        t: 0,
    };

    let mut epoch_losses = Vec::with_capacity(opts.epochs);
    for _ in 0..opts.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(opts.batch_size.max(1)) {
            // Accumulate batch gradients.
            let mut acc: Vec<(Vec<f64>, Vec<f64>)> = net
                .layers
                .iter()
                .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
                .collect();
            for &k in batch {
                let trace = net.forward_trace(&inputs[k]);
                let pred = trace.last().expect("trace output");
                epoch_loss += opts.loss.value(pred, &targets[k]);
                let gout = opts.loss.gradient(pred, &targets[k]);
                let grads = net.backprop(&trace, &gout);
                for (a, g) in acc.iter_mut().zip(&grads) {
                    for (ai, gi) in a.0.iter_mut().zip(&g.0) {
                        *ai += gi;
                    }
                    for (ai, gi) in a.1.iter_mut().zip(&g.1) {
                        *ai += gi;
                    }
                }
            }
            let inv = 1.0 / batch.len() as f64;
            state.t += 1;
            for (l, (dw, db)) in acc.into_iter().enumerate() {
                apply_update(
                    &mut net.layers[l].w,
                    &dw,
                    inv,
                    opts,
                    &mut state.m_w[l],
                    &mut state.v_w[l],
                    state.t,
                );
                apply_update(
                    &mut net.layers[l].b,
                    &db,
                    inv,
                    opts,
                    &mut state.m_b[l],
                    &mut state.v_b[l],
                    state.t,
                );
            }
        }
        epoch_losses.push(epoch_loss / inputs.len() as f64);
    }
    TrainReport { epoch_losses }
}

fn apply_update(
    params: &mut [f64],
    grad_sum: &[f64],
    inv_batch: f64,
    opts: &TrainOptions,
    m: &mut [f64],
    v: &mut [f64],
    t: usize,
) {
    match opts.optimizer {
        Optimizer::Sgd { momentum } => {
            for ((p, &g), mi) in params.iter_mut().zip(grad_sum).zip(m.iter_mut()) {
                let g = g * inv_batch;
                *mi = momentum * *mi + g;
                *p -= opts.lr * *mi;
            }
        }
        Optimizer::Adam { beta1, beta2, eps } => {
            let bc1 = 1.0 - beta1.powi(t as i32);
            let bc2 = 1.0 - beta2.powi(t as i32);
            for (((p, &g), mi), vi) in params
                .iter_mut()
                .zip(grad_sum)
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let g = g * inv_batch;
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *p -= opts.lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    #[test]
    fn learns_linear_function() {
        // y = 2x - 1 with a single identity neuron.
        let mut net = Mlp::new(&[1, 1], &[Activation::Identity], 3);
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 25.0 - 1.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![2.0 * x[0] - 1.0]).collect();
        let report = train(
            &mut net,
            &inputs,
            &targets,
            &TrainOptions {
                epochs: 300,
                lr: 0.05,
                ..Default::default()
            },
        );
        assert!(report.final_loss() < 1e-5, "loss {}", report.final_loss());
        let y = net.forward(&[0.5])[0];
        assert!((y - 0.0).abs() < 0.05, "y = {y}");
    }

    #[test]
    fn loss_decreases_on_nonlinear_target() {
        let mut net = Mlp::new(&[2, 8, 1], &[Activation::Tanh, Activation::Identity], 5);
        let inputs: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 50.0 - 1.0;
                vec![t, t * t]
            })
            .collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![(x[0] * 3.0).sin()]).collect();
        let report = train(
            &mut net,
            &inputs,
            &targets,
            &TrainOptions {
                epochs: 100,
                ..Default::default()
            },
        );
        assert!(report.epoch_losses[0] > report.final_loss());
        assert!(report.final_loss() < 0.05, "loss {}", report.final_loss());
    }

    #[test]
    fn bce_classifier_separates_classes() {
        // Classify sign of x with a sigmoid neuron.
        let mut net = Mlp::new(&[1, 1], &[Activation::Sigmoid], 9);
        let inputs: Vec<Vec<f64>> = (-20..=20).map(|i| vec![i as f64 / 5.0]).collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![if x[0] > 0.0 { 1.0 } else { 0.0 }])
            .collect();
        let opts = TrainOptions {
            epochs: 200,
            lr: 0.1,
            loss: Loss::Bce,
            ..Default::default()
        };
        train(&mut net, &inputs, &targets, &opts);
        assert!(net.forward(&[2.0])[0] > 0.9);
        assert!(net.forward(&[-2.0])[0] < 0.1);
    }

    #[test]
    fn sgd_momentum_also_trains() {
        let mut net = Mlp::new(&[1, 1], &[Activation::Identity], 3);
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0]]).collect();
        let opts = TrainOptions {
            epochs: 200,
            lr: 0.05,
            optimizer: Optimizer::Sgd { momentum: 0.9 },
            ..Default::default()
        };
        let report = train(&mut net, &inputs, &targets, &opts);
        assert!(report.final_loss() < 1e-4);
    }

    #[test]
    fn loss_functions_sane() {
        assert_eq!(Loss::Mse.value(&[1.0], &[1.0]), 0.0);
        assert!(Loss::Mse.value(&[2.0], &[0.0]) > 0.0);
        assert!(Loss::Bce.value(&[0.99], &[1.0]) < Loss::Bce.value(&[0.5], &[1.0]));
        let g = Loss::Mse.gradient(&[3.0], &[1.0]);
        assert_eq!(g, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut net = Mlp::new(&[1, 1], &[Activation::Identity], 0);
        train(&mut net, &[], &[], &TrainOptions::default());
    }
}
