//! Dense multi-layer perceptron with forward pass and backprop.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `x ↦ x`.
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative, expressed in terms of the *activated* output `y`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// One dense layer: `y = act(W·x + b)` with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    /// Row-major weights, `out_dim × in_dim`.
    pub w: Vec<f64>,
    /// Biases, length `out_dim`.
    pub b: Vec<f64>,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Activation applied element-wise to the affine output.
    pub act: Activation,
}

impl Layer {
    /// Xavier/Glorot-initialized layer.
    pub fn xavier(in_dim: usize, out_dim: usize, act: Activation, rng: &mut SmallRng) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Self {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
            act,
        }
    }

    /// Pre-activation affine output `W·x + b`.
    pub fn affine(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "Layer::affine: input width mismatch");
        let mut z = self.b.clone();
        for (zo, row) in z.iter_mut().zip(self.w.chunks_exact(self.in_dim)) {
            *zo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
        }
        z
    }

    /// Activated output `act(W·x + b)`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.affine(x).into_iter().map(|z| self.act.apply(z)).collect()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// A dense feed-forward network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers, input first.
    pub layers: Vec<Layer>,
}

impl Mlp {
    /// Build a network with the given layer widths and activations.
    ///
    /// `sizes` has `L+1` entries (input width first); `acts` has `L`.
    ///
    /// # Panics
    /// Panics if the lengths disagree or fewer than one layer is requested.
    pub fn new(sizes: &[usize], acts: &[Activation], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "Mlp::new: need at least one layer");
        assert_eq!(sizes.len() - 1, acts.len(), "Mlp::new: sizes/acts mismatch");
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .zip(acts)
            .map(|(w, &act)| Layer::xavier(w[0], w[1], act, &mut rng))
            .collect();
        Self { layers }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty network").in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty network").out_dim
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass keeping every layer's activated output (for backprop).
    /// `result[0]` is the input; `result[L]` the network output.
    pub fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(trace.last().expect("non-empty trace"));
            trace.push(next);
        }
        trace
    }

    /// Backpropagate an output-gradient through the network.
    ///
    /// `grad_out` is `∂loss/∂output` (length `out_dim`); `trace` comes from
    /// [`Mlp::forward_trace`]. Returns per-layer `(∂loss/∂W, ∂loss/∂b)` in
    /// layer order.
    pub fn backprop(&self, trace: &[Vec<f64>], grad_out: &[f64]) -> Vec<(Vec<f64>, Vec<f64>)> {
        assert_eq!(trace.len(), self.layers.len() + 1, "backprop: bad trace");
        let mut grads = vec![(Vec::new(), Vec::new()); self.layers.len()];
        // delta = ∂loss/∂(activated output of current layer)
        let mut delta = grad_out.to_vec();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let out = &trace[l + 1];
            let inp = &trace[l];
            // ∂loss/∂z = delta ⊙ act'(z), using the activated-output form.
            let dz: Vec<f64> = delta
                .iter()
                .zip(out)
                .map(|(&d, &y)| d * layer.act.derivative_from_output(y))
                .collect();
            let mut dw = vec![0.0; layer.w.len()];
            for (o, dzo) in dz.iter().enumerate() {
                for (i, inpi) in inp.iter().enumerate() {
                    dw[o * layer.in_dim + i] = dzo * inpi;
                }
            }
            let db = dz.clone();
            // Propagate to the previous layer's activated output.
            let mut prev = vec![0.0; layer.in_dim];
            for (row, dzo) in layer.w.chunks_exact(layer.in_dim).zip(&dz) {
                for (p, w) in prev.iter_mut().zip(row) {
                    *p += w * dzo;
                }
            }
            grads[l] = (dw, db);
            delta = prev;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_and_derivatives() {
        assert_eq!(Activation::Identity.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        let y = Activation::Tanh.apply(0.3);
        assert!((Activation::Tanh.derivative_from_output(y) - (1.0 - y * y)).abs() < 1e-15);
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
    }

    #[test]
    fn forward_of_known_weights() {
        // Single identity layer y = 2x + 1.
        let layer = Layer {
            w: vec![2.0],
            b: vec![1.0],
            in_dim: 1,
            out_dim: 1,
            act: Activation::Identity,
        };
        let net = Mlp { layers: vec![layer] };
        assert_eq!(net.forward(&[3.0]), vec![7.0]);
        assert_eq!(net.in_dim(), 1);
        assert_eq!(net.out_dim(), 1);
        assert_eq!(net.param_count(), 2);
    }

    #[test]
    fn trace_has_all_layers() {
        let net = Mlp::new(&[2, 3, 1], &[Activation::Tanh, Activation::Identity], 7);
        let trace = net.forward_trace(&[0.1, -0.2]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].len(), 3);
        assert_eq!(trace[2], net.forward(&[0.1, -0.2]));
    }

    #[test]
    fn backprop_matches_finite_difference() {
        let mut net = Mlp::new(&[2, 4, 1], &[Activation::Tanh, Activation::Identity], 11);
        let x = [0.3, -0.8];
        let target = 0.7;
        let loss = |net: &Mlp| {
            let y = net.forward(&x)[0];
            0.5 * (y - target) * (y - target)
        };
        let trace = net.forward_trace(&x);
        let y = trace.last().unwrap()[0];
        let grads = net.backprop(&trace, &[y - target]);

        // Check several weights per layer against finite differences.
        let h = 1e-6;
        #[allow(clippy::needless_range_loop)] // net is mutably re-borrowed inside
        for l in 0..net.layers.len() {
            for k in [0usize, net.layers[l].w.len() / 2] {
                let orig = net.layers[l].w[k];
                net.layers[l].w[k] = orig + h;
                let fp = loss(&net);
                net.layers[l].w[k] = orig - h;
                let fm = loss(&net);
                net.layers[l].w[k] = orig;
                let fd = (fp - fm) / (2.0 * h);
                assert!(
                    (grads[l].0[k] - fd).abs() < 1e-5,
                    "layer {l} w[{k}]: {} vs {}",
                    grads[l].0[k],
                    fd
                );
            }
            // And one bias.
            let orig = net.layers[l].b[0];
            net.layers[l].b[0] = orig + h;
            let fp = loss(&net);
            net.layers[l].b[0] = orig - h;
            let fm = loss(&net);
            net.layers[l].b[0] = orig;
            let fd = (fp - fm) / (2.0 * h);
            assert!((grads[l].1[0] - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Mlp::new(&[3, 5, 1], &[Activation::Relu, Activation::Sigmoid], 42);
        let b = Mlp::new(&[3, 5, 1], &[Activation::Relu, Activation::Sigmoid], 42);
        assert_eq!(a.layers[0].w, b.layers[0].w);
        let c = Mlp::new(&[3, 5, 1], &[Activation::Relu, Activation::Sigmoid], 43);
        assert_ne!(a.layers[0].w, c.layers[0].w);
    }

    #[test]
    #[should_panic(expected = "sizes/acts mismatch")]
    fn mismatched_spec_panics() {
        Mlp::new(&[2, 3], &[Activation::Tanh, Activation::Tanh], 0);
    }
}

impl Mlp {
    /// Serialize the trained network to JSON (weights, biases,
    /// activations) — how evaluation harnesses persist the paper's
    /// MLP-d / DNN models between runs.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Mlp serializes")
    }

    /// Load a network from [`Mlp::to_json`] output.
    ///
    /// # Errors
    /// Returns the underlying parse error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let net = Mlp::new(&[3, 4, 1], &[Activation::Tanh, Activation::Sigmoid], 9);
        let json = net.to_json();
        let back = Mlp::from_json(&json).unwrap();
        let x = [0.2, -0.7, 1.1];
        assert_eq!(net.forward(&x), back.forward(&x));
        assert!(Mlp::from_json("not json").is_err());
    }
}
