//! Fault schedules: what goes wrong, when, with which probability.
//!
//! A [`FaultPlan`] is pure data — rates for the per-frame fault ladder,
//! plus timed node crashes and coordinator↔node partitions — and one RNG
//! seed. The same plan and seed always produce the same injected-fault
//! sequence (see `ChaosFabric`), which is what makes a chaos failure
//! reproducible from its trace.

use automon_core::NodeId;
use serde::{Deserialize, Serialize};

/// A timed node crash, with an optional restart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The node that dies.
    pub node: NodeId,
    /// Round at which it dies (messages to/from it fail from this round).
    pub at: usize,
    /// Round at which a fresh process comes back up, if any. The
    /// restarted node has lost all protocol state and must re-register.
    pub restart: Option<usize>,
}

/// A coordinator↔node partition over a round interval.
///
/// While active, frames between the coordinator and the listed nodes
/// vanish silently in both directions — unlike a crash, nothing ever
/// reports a connection failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Nodes cut off from the coordinator.
    pub nodes: Vec<NodeId>,
    /// First round of the partition (inclusive).
    pub from: usize,
    /// First round after the partition heals (exclusive).
    pub until: usize,
}

impl Partition {
    /// `true` when `node` is unreachable at `round`.
    pub fn cuts(&self, node: NodeId, round: usize) -> bool {
        round >= self.from && round < self.until && self.nodes.contains(&node)
    }
}

/// A deterministic, seeded schedule of faults.
///
/// Per-frame faults (drop, duplicate, reorder, delay) are decided by a
/// single RNG draw per frame against a threshold ladder, so rates are
/// mutually exclusive per frame and must sum to at most 1. Timed faults
/// (crashes, partitions) fire by round number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed; same seed + same plan ⇒ identical fault sequence.
    pub seed: u64,
    /// Probability a frame is dropped.
    pub drop_rate: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a frame is delivered after the frames queued behind it.
    pub reorder_rate: f64,
    /// Probability a frame is held for 1..=`max_delay_rounds` rounds.
    pub delay_rate: f64,
    /// Longest delivery delay, in rounds.
    pub max_delay_rounds: usize,
    /// Timed node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Timed partitions.
    pub partitions: Vec<Partition>,
    /// Rounds at which the *coordinator* crashes and is rebuilt from
    /// its durable store (WAL + snapshot; requires a store-enabled
    /// runner, see `sim::ChaosSimulation`). Absent in plans serialized
    /// by older versions.
    #[serde(default)]
    pub coordinator_crashes: Vec<usize>,
}

impl FaultPlan {
    /// The no-fault plan: wrapping a fabric with it changes nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            delay_rate: 0.0,
            max_delay_rounds: 0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            coordinator_crashes: Vec::new(),
        }
    }

    /// A no-fault plan with a seed, ready for `with_*` composition.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Set the frame drop probability.
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Set the frame duplication probability.
    pub fn with_duplicate_rate(mut self, p: f64) -> Self {
        self.duplicate_rate = p;
        self
    }

    /// Set the frame reorder probability.
    pub fn with_reorder_rate(mut self, p: f64) -> Self {
        self.reorder_rate = p;
        self
    }

    /// Set the frame delay probability and the maximum delay.
    pub fn with_delay(mut self, p: f64, max_rounds: usize) -> Self {
        self.delay_rate = p;
        self.max_delay_rounds = max_rounds;
        self
    }

    /// Schedule a crash (and optional restart) for `node`.
    pub fn with_crash(mut self, node: NodeId, at: usize, restart: Option<usize>) -> Self {
        self.crashes.push(NodeCrash { node, at, restart });
        self
    }

    /// Schedule a coordinator crash (+ recovery from the durable store)
    /// at the start of `round`.
    pub fn with_coordinator_crash(mut self, round: usize) -> Self {
        self.coordinator_crashes.push(round);
        self
    }

    /// Schedule a partition cutting `nodes` off during `[from, until)`.
    pub fn with_partition(mut self, nodes: Vec<NodeId>, from: usize, until: usize) -> Self {
        self.partitions.push(Partition { nodes, from, until });
        self
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.delay_rate == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.coordinator_crashes.is_empty()
    }

    /// `true` when `node` is partitioned from the coordinator at `round`.
    pub fn partitioned(&self, node: NodeId, round: usize) -> bool {
        self.partitions.iter().any(|p| p.cuts(node, round))
    }

    /// `true` when any partition is active at `round`.
    pub fn partition_active(&self, round: usize) -> bool {
        self.partitions
            .iter()
            .any(|p| round >= p.from && round < p.until)
    }

    /// Validate rate invariants.
    ///
    /// # Panics
    /// Panics when a rate is outside `[0, 1]`, the rates sum past 1, or
    /// delay is enabled with `max_delay_rounds == 0`.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("reorder_rate", self.reorder_rate),
            ("delay_rate", self.delay_rate),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of [0, 1]: {p}");
        }
        let total = self.drop_rate + self.duplicate_rate + self.reorder_rate + self.delay_rate;
        assert!(total <= 1.0, "fault rates sum past 1: {total}");
        assert!(
            self.delay_rate == 0.0 || self.max_delay_rounds > 0,
            "delay_rate > 0 requires max_delay_rounds > 0"
        );
    }
}

/// Recovery policy for a chaos run: how patiently the endpoints wait
/// before retransmitting, and how many dead-connection failures the
/// coordinator tolerates before evicting a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Rounds a report/pull stays unanswered before the first
    /// retransmission; subsequent waits double (exponential backoff).
    pub retransmit_after: usize,
    /// Consecutive dead-connection failures before the coordinator
    /// declares the node dead and redistributes its slack.
    pub evict_after: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            retransmit_after: 4,
            evict_after: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().with_drop_rate(0.1).is_none());
        FaultPlan::none().validate();
    }

    #[test]
    fn partition_window_is_half_open() {
        let p = FaultPlan::seeded(1).with_partition(vec![1, 2], 10, 20);
        assert!(!p.partitioned(1, 9));
        assert!(p.partitioned(1, 10));
        assert!(p.partitioned(2, 19));
        assert!(!p.partitioned(2, 20));
        assert!(!p.partitioned(0, 15));
        assert!(p.partition_active(15));
        assert!(!p.partition_active(25));
    }

    #[test]
    #[should_panic(expected = "sum past 1")]
    fn oversubscribed_rates_rejected() {
        FaultPlan::seeded(0)
            .with_drop_rate(0.6)
            .with_duplicate_rate(0.6)
            .validate();
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::seeded(42)
            .with_drop_rate(0.1)
            .with_delay(0.05, 3)
            .with_crash(1, 50, Some(80))
            .with_partition(vec![0], 10, 30);
        let s = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }
}
