//! Deterministic fault injection for the AutoMon protocol.
//!
//! AutoMon's communication savings only matter if the protocol survives
//! the network it saves. This crate provides the adversary: a seeded
//! [`FaultPlan`] describing what goes wrong (per-frame drop, duplicate,
//! reorder and delay probabilities, timed node crashes with optional
//! restarts, coordinator↔node partitions) and a [`ChaosFabric`] that
//! executes the plan at the frame boundary of the in-process fabric.
//! Every injected fault lands in a replayable [`FaultEvent`] trace; the
//! same plan and seed reproduce the same trace bit for bit, so any
//! failure a chaos run finds can be replayed under a debugger.
//!
//! The self-healing counterpart lives in `automon-core` (epoch-tagged
//! sync rounds, node eviction and resynchronization) and `automon-net`
//! (retransmission, heartbeats, reconnects); this crate only breaks
//! things, deterministically.

mod fabric;
pub mod gate;
mod plan;

pub use fabric::{ChaosFabric, DeliveryFailure, Direction, FaultEvent, FaultKind};
pub use gate::{GateCounts, LadderGate};
pub use plan::{FaultPlan, NodeCrash, Partition, RecoveryConfig};
