//! The seeded fault ladder as a standalone, transport-pluggable gate.
//!
//! [`ChaosFabric`](crate::ChaosFabric) applies its probabilistic fault
//! ladder at the decoded-frame boundary of the in-process fabric. The
//! reactor transport (`automon_net::Reactor`) exposes the same boundary
//! through the [`FrameGate`] trait; [`LadderGate`] is the ladder
//! factored out so both paths share one implementation — and, more
//! importantly, one *draw sequence*: a plan that replays byte-identically
//! on the in-process fabric replays byte-identically on the reactor,
//! because the ladder consumes exactly one uniform draw per non-immune
//! frame (plus one bounded draw per delay) in both.

use automon_net::{FrameGate, GateVerdict};
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::plan::FaultPlan;

/// Per-kind tally of faults the gate has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Frames discarded.
    pub drops: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
    /// Frames pushed behind their queue.
    pub reorders: u64,
    /// Frames parked for later rounds.
    pub delays: u64,
    /// Non-immune frames that crossed the gate (denominator).
    pub gated: u64,
}

impl GateCounts {
    /// Total injected faults.
    pub fn injected(&self) -> u64 {
        self.drops + self.duplicates + self.reorders + self.delays
    }
}

/// The probabilistic fault ladder: one draw, at most one fault per
/// frame.
///
/// Cumulative thresholds walk drop → duplicate → reorder → delay; a
/// delay consumes a second draw for its round count. Immune frames (the
/// late copy of a duplicate, a matured delayed frame) deliver untouched
/// and consume **no** randomness, so the draw sequence is a function of
/// how many first-time frames crossed the gate — the invariant behind
/// seed-exact replay.
#[derive(Debug, Clone)]
pub struct LadderGate {
    drop_rate: f64,
    duplicate_rate: f64,
    reorder_rate: f64,
    delay_rate: f64,
    max_delay_rounds: usize,
    rng: SmallRng,
    counts: GateCounts,
}

impl LadderGate {
    /// The ladder of `plan`, seeded from `plan.seed` exactly as
    /// [`ChaosFabric`](crate::ChaosFabric) seeds its own.
    pub fn new(plan: &FaultPlan) -> Self {
        plan.validate();
        Self {
            drop_rate: plan.drop_rate,
            duplicate_rate: plan.duplicate_rate,
            reorder_rate: plan.reorder_rate,
            delay_rate: plan.delay_rate,
            max_delay_rounds: plan.max_delay_rounds,
            rng: SmallRng::seed_from_u64(plan.seed),
            counts: GateCounts::default(),
        }
    }

    /// `true` when every rate is zero — the gate never draws and the
    /// transport behaves exactly as if no gate were installed.
    pub fn is_transparent(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.delay_rate == 0.0
    }

    /// Faults injected so far.
    pub fn counts(&self) -> GateCounts {
        self.counts
    }

    fn decide(&mut self, immune: bool) -> GateVerdict {
        if immune || self.is_transparent() {
            return GateVerdict::Deliver;
        }
        self.counts.gated += 1;
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let mut threshold = self.drop_rate;
        if u < threshold {
            self.counts.drops += 1;
            return GateVerdict::Discard;
        }
        threshold += self.duplicate_rate;
        if u < threshold {
            self.counts.duplicates += 1;
            return GateVerdict::DeliverTwice;
        }
        threshold += self.reorder_rate;
        if u < threshold {
            self.counts.reorders += 1;
            return GateVerdict::Reorder;
        }
        threshold += self.delay_rate;
        if u < threshold {
            let rounds = self.rng.gen_range(1..=self.max_delay_rounds);
            self.counts.delays += 1;
            return GateVerdict::Delay(rounds);
        }
        GateVerdict::Deliver
    }
}

impl FrameGate for LadderGate {
    fn gate(&mut self, immune: bool) -> GateVerdict {
        self.decide(immune)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::seeded(42)
            .with_drop_rate(0.2)
            .with_duplicate_rate(0.1)
            .with_reorder_rate(0.1)
            .with_delay(0.1, 3)
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let mut a = LadderGate::new(&plan());
        let mut b = LadderGate::new(&plan());
        let va: Vec<_> = (0..500).map(|_| a.decide(false)).collect();
        let vb: Vec<_> = (0..500).map(|_| b.decide(false)).collect();
        assert_eq!(va, vb, "ladder must replay bit-identically");
        assert!(a.counts().injected() > 0, "rates this high must fire");
    }

    #[test]
    fn immune_frames_consume_no_draw() {
        let mut a = LadderGate::new(&plan());
        let mut b = LadderGate::new(&plan());
        // Interleave immune frames into `a` only: the non-immune verdict
        // sequence must be unchanged.
        let mut va = Vec::new();
        for i in 0..300 {
            if i % 3 == 0 {
                assert_eq!(a.decide(true), GateVerdict::Deliver);
            }
            va.push(a.decide(false));
        }
        let vb: Vec<_> = (0..300).map(|_| b.decide(false)).collect();
        assert_eq!(va, vb, "immune frames must not advance the rng");
    }

    #[test]
    fn transparent_gate_never_draws() {
        let mut g = LadderGate::new(&FaultPlan::seeded(7));
        assert!(g.is_transparent());
        for _ in 0..100 {
            assert_eq!(g.decide(false), GateVerdict::Deliver);
        }
        assert_eq!(g.counts(), GateCounts::default());
    }
}
