//! The chaos fabric: a fault-injecting wrapper around the in-process
//! [`CountingFabric`].
//!
//! Every frame crossing the fabric — node→coordinator reports and
//! coordinator→node installs alike — passes a *gate* before delivery.
//! The gate first consults the timed schedule (crashed nodes fail the
//! delivery, partitioned nodes swallow it silently), then makes exactly
//! one RNG draw against the plan's threshold ladder to pick at most one
//! probabilistic fault: drop, duplicate, reorder, or delay. Because the
//! draws are strictly sequential and the schedule is pure data, the same
//! plan and seed always yield the same [`FaultEvent`] trace, byte for
//! byte — a chaos failure replays exactly.
//!
//! Re-injected frames (the late copy of a duplicate, a reordered or
//! matured delayed frame) carry an *immunity* flag so they skip the
//! probabilistic ladder — otherwise a duplicate could be re-duplicated
//! forever. Immunity does not bypass crashes or partitions: a delayed
//! frame maturing into a partition still vanishes.

use std::collections::{BTreeMap, VecDeque};

use automon_core::{CommCause, CommLedger, Coordinator, Node, NodeId, NodeMessage, Outbound};
use automon_net::{CountingFabric, TrafficStats};
use automon_obs::{Counter, SpanId, Telemetry};
use crate::gate::LadderGate;
use automon_net::{FrameGate, GateVerdict};
use serde::{Deserialize, Serialize};

use crate::plan::FaultPlan;

/// Which way a frame was travelling when a fault hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Node report heading to the coordinator.
    NodeToCoord,
    /// Coordinator install/pull heading to a node.
    CoordToNode,
}

/// What the fabric did to a frame (or a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Frame discarded.
    Drop,
    /// Frame delivered now and again later.
    Duplicate,
    /// Frame delivered after everything queued behind it.
    Reorder,
    /// Frame held for this many rounds.
    Delay {
        /// Rounds the frame is held before maturing.
        rounds: usize,
    },
    /// Frame addressed to a crashed node/endpoint; the sender observes a
    /// dead connection (surfaced via [`ChaosFabric::take_delivery_failures`]).
    NodeDown,
    /// Frame swallowed by an active partition; the sender observes nothing.
    PartitionDrop,
    /// Scheduled crash fired.
    Crash,
    /// Scheduled restart fired.
    Restart,
    /// Scheduled coordinator crash fired; the runner rebuilds the
    /// coordinator from its durable store before the round proceeds.
    CoordinatorCrash,
}

/// One injected fault, in injection order. Traces from two runs with the
/// same plan compare with `==`; serialize them to diff across processes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Position in the injection sequence (0-based, gap-free).
    pub seq: u64,
    /// Simulation round the fault fired in.
    pub round: usize,
    /// Travel direction of the affected frame ([`Direction::NodeToCoord`]
    /// for `Crash`/`Restart`, which have no frame).
    pub dir: Direction,
    /// The node whose frame/link/process was hit.
    pub node: NodeId,
    /// What happened.
    pub kind: FaultKind,
}

/// A failed delivery the sender can observe: the peer's connection was
/// dead. Partitions deliberately do *not* produce these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryFailure {
    /// The crashed endpoint.
    pub node: NodeId,
    /// Direction the failed frame was travelling.
    pub dir: Direction,
}

/// A frame in flight, with its ladder-immunity flag. Upward frames carry
/// the trace span riding their header and the ledger cause their bytes
/// are charged to on delivery (downward frames carry both inside the
/// [`Outbound`]); a re-injected copy keeps them, so a duplicate or
/// matured delayed frame is charged like the original.
#[derive(Debug, Clone)]
enum Pending {
    ToCoord {
        msg: NodeMessage,
        span: SpanId,
        cause: CommCause,
        immune: bool,
    },
    ToNode {
        out: Outbound,
        immune: bool,
    },
}

impl Pending {
    fn immune_copy(&self) -> Self {
        match self {
            Self::ToCoord {
                msg, span, cause, ..
            } => Self::ToCoord {
                msg: msg.clone(),
                span: *span,
                cause: *cause,
                immune: true,
            },
            Self::ToNode { out, .. } => Self::ToNode {
                out: out.clone(),
                immune: true,
            },
        }
    }

    fn endpoint(&self) -> (NodeId, Direction) {
        match self {
            Self::ToCoord { msg, .. } => (msg.sender(), Direction::NodeToCoord),
            Self::ToNode { out, .. } => (out.to, Direction::CoordToNode),
        }
    }

    fn immune(&self) -> bool {
        match self {
            Self::ToCoord { immune, .. } | Self::ToNode { immune, .. } => *immune,
        }
    }
}

/// Per-fault-kind counters plus the trace handle. The fabric is strictly
/// sequential (one `record` call at a time, in deterministic order), so
/// it may emit trace events — the fault trace in the JSONL sink replays
/// byte-identically, mirroring [`ChaosFabric::trace`].
#[derive(Debug, Default)]
struct FabricTel {
    tel: Telemetry,
    drop: Counter,
    duplicate: Counter,
    reorder: Counter,
    delay: Counter,
    node_down: Counter,
    partition_drop: Counter,
    crash: Counter,
    restart: Counter,
    coordinator_crash: Counter,
}

impl FabricTel {
    fn new(tel: Telemetry) -> Self {
        let c = |k: &str| {
            tel.counter(
                &format!("automon_chaos_faults_total{{kind=\"{k}\"}}"),
                "Faults injected by the chaos fabric, by kind",
            )
        };
        Self {
            drop: c("drop"),
            duplicate: c("duplicate"),
            reorder: c("reorder"),
            delay: c("delay"),
            node_down: c("node_down"),
            partition_drop: c("partition_drop"),
            crash: c("crash"),
            restart: c("restart"),
            coordinator_crash: c("coordinator_crash"),
            tel,
        }
    }

    fn counter_for(&self, kind: FaultKind) -> &Counter {
        match kind {
            FaultKind::Drop => &self.drop,
            FaultKind::Duplicate => &self.duplicate,
            FaultKind::Reorder => &self.reorder,
            FaultKind::Delay { .. } => &self.delay,
            FaultKind::NodeDown => &self.node_down,
            FaultKind::PartitionDrop => &self.partition_drop,
            FaultKind::Crash => &self.crash,
            FaultKind::Restart => &self.restart,
            FaultKind::CoordinatorCrash => &self.coordinator_crash,
        }
    }
}

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Drop => "drop",
        FaultKind::Duplicate => "duplicate",
        FaultKind::Reorder => "reorder",
        FaultKind::Delay { .. } => "delay",
        FaultKind::NodeDown => "node_down",
        FaultKind::PartitionDrop => "partition_drop",
        FaultKind::Crash => "crash",
        FaultKind::Restart => "restart",
        FaultKind::CoordinatorCrash => "coordinator_crash",
    }
}

/// Fault-injecting wrapper around [`CountingFabric`].
///
/// Counters only advance for frames that actually deliver, so a run
/// under [`FaultPlan::none`] produces byte-identical [`TrafficStats`] to
/// the bare fabric.
#[derive(Debug)]
pub struct ChaosFabric {
    inner: CountingFabric,
    plan: FaultPlan,
    ladder: LadderGate,
    round: usize,
    crashed: Vec<bool>,
    trace: Vec<FaultEvent>,
    /// Frames held by `Delay`, keyed by the round they mature in.
    delayed: BTreeMap<usize, Vec<Pending>>,
    failures: Vec<DeliveryFailure>,
    /// Observability handles (no-op until `set_telemetry`).
    tel: FabricTel,
}

impl ChaosFabric {
    /// Wrap `inner`, injecting faults per `plan` over `n` nodes.
    ///
    /// # Panics
    /// Panics when the plan violates [`FaultPlan::validate`] or schedules
    /// a crash/partition for a node id `>= n`.
    pub fn new(inner: CountingFabric, plan: FaultPlan, n: usize) -> Self {
        plan.validate();
        for c in &plan.crashes {
            assert!(c.node < n, "crash scheduled for unknown node {}", c.node);
        }
        for p in &plan.partitions {
            for &node in &p.nodes {
                assert!(node < n, "partition names unknown node {node}");
            }
        }
        let ladder = LadderGate::new(&plan);
        Self {
            inner,
            plan,
            ladder,
            round: 0,
            crashed: vec![false; n],
            trace: Vec::new(),
            delayed: BTreeMap::new(),
            failures: Vec::new(),
            tel: FabricTel::default(),
        }
    }

    /// Install an observability handle: per-kind fault counters plus a
    /// `fault` trace event per injection, mirroring the in-memory
    /// [`ChaosFabric::trace`].
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = FabricTel::new(tel);
    }

    /// The wrapped fabric's traffic counters (delivered frames only).
    pub fn stats(&self) -> &TrafficStats {
        self.inner.stats()
    }

    /// The wrapped fabric's communication ledger (delivered frames only:
    /// dropped, swallowed, and still-delayed frames are uncharged, so
    /// conservation against [`ChaosFabric::stats`] holds under faults).
    pub fn ledger(&self) -> &CommLedger {
        self.inner.ledger()
    }

    /// Messages involving each node, delegated from the inner fabric.
    pub fn per_node_messages(&self) -> &[usize] {
        self.inner.per_node_messages()
    }

    /// The plan this fabric is executing.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault injected so far, in injection order.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Number of injected faults (the trace length).
    pub fn injected_faults(&self) -> usize {
        self.trace.len()
    }

    /// `true` while `node`'s process is down.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node]
    }

    /// Drain the dead-connection failures observed since the last call.
    /// The caller (the recovery loop) uses these to count strikes toward
    /// eviction.
    pub fn take_delivery_failures(&mut self) -> Vec<DeliveryFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Frames currently parked in the delay queue.
    pub fn delayed_frames(&self) -> usize {
        self.delayed.values().map(Vec::len).sum()
    }

    /// Advance to `round`: fire scheduled crashes, then restarts.
    /// Returns the ids restarted *this* round — the caller must replace
    /// each with a fresh, state-less [`Node`] before delivering anything
    /// (in particular before [`ChaosFabric::release_delayed`]).
    pub fn begin_round(&mut self, round: usize) -> Vec<NodeId> {
        self.round = round;
        self.inner.set_round(round as u64);
        if self.plan.coordinator_crashes.contains(&round) {
            // The coordinator has no NodeId; by convention its fault
            // events carry node 0 with the NodeToCoord direction.
            self.record(Direction::NodeToCoord, 0, FaultKind::CoordinatorCrash);
        }
        let crashes = self.plan.crashes.clone();
        for c in &crashes {
            if c.at == round && !self.crashed[c.node] {
                self.crashed[c.node] = true;
                self.record(Direction::NodeToCoord, c.node, FaultKind::Crash);
            }
        }
        let mut restarted = Vec::new();
        for c in &crashes {
            if c.restart == Some(round) && self.crashed[c.node] {
                self.crashed[c.node] = false;
                self.record(Direction::NodeToCoord, c.node, FaultKind::Restart);
                restarted.push(c.node);
            }
        }
        restarted
    }

    /// Deliver every delayed frame that matured by the current round,
    /// cascading replies as usual. Returns how many matured.
    pub fn release_delayed(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
    ) -> usize {
        let due: Vec<usize> = self
            .delayed
            .range(..=self.round)
            .map(|(&r, _)| r)
            .collect();
        let mut inbox = VecDeque::new();
        for r in due {
            // Matured frames already paid their ladder toll; immune.
            inbox.extend(
                self.delayed
                    .remove(&r)
                    .unwrap_or_default()
                    .into_iter()
                    .map(|p| p.immune_copy()),
            );
        }
        let matured = inbox.len();
        self.drain(coord, nodes, inbox);
        matured
    }

    /// Deliver a node report to the coordinator and cascade every reply
    /// to quiescence, gating each frame. The chaos analogue of
    /// [`CountingFabric::route`].
    pub fn route(&mut self, coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) {
        let cause = CommCause::of_node_message(&first);
        self.route_as(coord, nodes, first, cause, SpanId::NONE);
    }

    /// [`ChaosFabric::route`] with an explicit ledger cause and trace
    /// span for the first frame — e.g. `CommCause::Rejoin` for a
    /// restarted node's re-registration, or the sim's violation span.
    pub fn route_as(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        first: NodeMessage,
        cause: CommCause,
        span: SpanId,
    ) {
        self.drain(
            coord,
            nodes,
            VecDeque::from([Pending::ToCoord {
                msg: first,
                span,
                cause,
                immune: false,
            }]),
        );
    }

    /// Inject coordinator-initiated frames (retransmitted pulls, evictions'
    /// fresh syncs) and cascade to quiescence.
    pub fn route_outbounds(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        outs: Vec<Outbound>,
    ) {
        self.drain(
            coord,
            nodes,
            outs.into_iter()
                .map(|out| Pending::ToNode { out, immune: false })
                .collect(),
        );
    }

    /// [`ChaosFabric::route_outbounds`] with every frame's ledger cause
    /// overridden — recovery traffic (`Retransmit`, `Eviction`) is
    /// charged separably from the steady-state cause the coordinator
    /// stamped on the outbound.
    pub fn route_outbounds_as(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        outs: Vec<Outbound>,
        cause: CommCause,
    ) {
        self.drain(
            coord,
            nodes,
            outs.into_iter()
                .map(|mut out| {
                    out.cause = cause;
                    Pending::ToNode { out, immune: false }
                })
                .collect(),
        );
    }

    /// FIFO delivery loop: pop a frame, gate it, deliver survivors
    /// through the counting fabric, enqueue replies at the back.
    fn drain(&mut self, coord: &mut Coordinator, nodes: &mut [Node], mut inbox: VecDeque<Pending>) {
        while let Some(frame) = inbox.pop_front() {
            let (node, dir) = frame.endpoint();
            if self.crashed[node] {
                self.record(dir, node, FaultKind::NodeDown);
                self.failures.push(DeliveryFailure { node, dir });
                continue;
            }
            if self.plan.partitioned(node, self.round) {
                self.record(dir, node, FaultKind::PartitionDrop);
                continue;
            }
            match self.gate(frame.immune()) {
                GateVerdict::Discard => {
                    self.record(dir, node, FaultKind::Drop);
                }
                GateVerdict::Reorder => {
                    self.record(dir, node, FaultKind::Reorder);
                    inbox.push_back(frame.immune_copy());
                }
                GateVerdict::Delay(rounds) => {
                    self.record(dir, node, FaultKind::Delay { rounds });
                    self.delayed
                        .entry(self.round + rounds)
                        .or_default()
                        .push(frame);
                }
                GateVerdict::DeliverTwice => {
                    self.record(dir, node, FaultKind::Duplicate);
                    inbox.push_back(frame.immune_copy());
                    self.deliver(coord, nodes, frame, &mut inbox);
                }
                GateVerdict::Deliver => {
                    self.deliver(coord, nodes, frame, &mut inbox);
                }
            }
        }
    }

    fn deliver(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        frame: Pending,
        inbox: &mut VecDeque<Pending>,
    ) {
        match frame {
            Pending::ToCoord {
                msg, span, cause, ..
            } => {
                for out in self.inner.deliver_to_coordinator_as(coord, msg, cause, span) {
                    inbox.push_back(Pending::ToNode { out, immune: false });
                }
            }
            Pending::ToNode { out, .. } => {
                let to = out.to;
                // The reply inherits the eliciting outbound's span and
                // cause (a pull reply answers the pull).
                if let Some((reply, span, cause)) =
                    self.inner.deliver_to_node_tagged(&mut nodes[to], out)
                {
                    inbox.push_back(Pending::ToCoord {
                        msg: reply,
                        span,
                        cause,
                        immune: false,
                    });
                }
            }
        }
    }

    /// The probabilistic ladder: one draw, at most one fault. An immune
    /// frame still *consumes no draw* — the draw sequence depends only on
    /// how many non-immune frames crossed the fabric, which is itself a
    /// deterministic function of plan + seed + workload.
    fn gate(&mut self, immune: bool) -> GateVerdict {
        // Shared with the reactor transport (`crates/net`): one ladder,
        // one draw sequence — see [`LadderGate`].
        self.ladder.gate(immune)
    }

    fn record(&mut self, dir: Direction, node: NodeId, kind: FaultKind) {
        self.tel.counter_for(kind).inc();
        if self.tel.tel.is_enabled() {
            let dir_name = match dir {
                Direction::NodeToCoord => "node_to_coord",
                Direction::CoordToNode => "coord_to_node",
            };
            let mut fields: Vec<(&str, automon_obs::FieldValue)> = vec![
                ("fault", kind_name(kind).into()),
                ("node", node.into()),
                ("dir", dir_name.into()),
            ];
            if let FaultKind::Delay { rounds } = kind {
                fields.push(("delay_rounds", rounds.into()));
            }
            self.tel.tel.event("fault", &fields);
        }
        self.trace.push(FaultEvent {
            seq: self.trace.len() as u64,
            round: self.round,
            dir,
            node,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::{MonitorConfig, MonitoredFunction};
    use std::sync::Arc;

    struct Mean;
    impl ScalarFn for Mean {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            (x[0] + x[1]) * S::from_f64(0.5)
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Mean))
    }

    fn setup(n: usize) -> (Coordinator, Vec<Node>) {
        let f = f();
        let coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.5).build());
        let nodes = (0..n).map(|i| Node::new(i, f.clone())).collect();
        (coord, nodes)
    }

    /// Run a short noisy workload and return (trace, stats).
    fn run_noisy(plan: FaultPlan, rounds: usize) -> (Vec<FaultEvent>, TrafficStats) {
        let n = 4;
        let (mut coord, mut nodes) = setup(n);
        let mut fabric = ChaosFabric::new(CountingFabric::new(), plan, n);
        for round in 0..rounds {
            let restarted = fabric.begin_round(round);
            for id in restarted {
                nodes[id] = Node::new(id, f());
            }
            fabric.release_delayed(&mut coord, &mut nodes);
            for i in 0..n {
                if fabric.is_crashed(i) {
                    continue;
                }
                let drift = (round as f64) * 0.37 + i as f64;
                if let Some(m) = nodes[i].update_data(vec![drift.sin(), drift.cos()]) {
                    fabric.route(&mut coord, &mut nodes, m);
                }
            }
        }
        (fabric.trace().to_vec(), fabric.stats().clone())
    }

    #[test]
    fn same_seed_same_trace_and_stats() {
        let plan = FaultPlan::seeded(0xC0FFEE)
            .with_drop_rate(0.10)
            .with_duplicate_rate(0.05)
            .with_reorder_rate(0.05)
            .with_delay(0.05, 3)
            .with_crash(2, 10, Some(20))
            .with_partition(vec![1], 5, 9);
        let (trace_a, stats_a) = run_noisy(plan.clone(), 30);
        let (trace_b, stats_b) = run_noisy(plan, 30);
        assert!(!trace_a.is_empty(), "noisy plan should inject something");
        assert_eq!(trace_a, trace_b, "same seed must replay bit-identically");
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn different_seed_different_trace() {
        let base = FaultPlan::seeded(1).with_drop_rate(0.25);
        let (trace_a, _) = run_noisy(base.clone(), 30);
        let (trace_b, _) = run_noisy(FaultPlan { seed: 2, ..base }, 30);
        assert_ne!(trace_a, trace_b);
    }

    #[test]
    fn none_plan_is_transparent() {
        let n = 3;
        let (mut coord_a, mut nodes_a) = setup(n);
        let mut bare = CountingFabric::new();
        let (mut coord_b, mut nodes_b) = setup(n);
        let mut chaos = ChaosFabric::new(CountingFabric::new(), FaultPlan::none(), n);
        for round in 0..20 {
            assert!(chaos.begin_round(round).is_empty());
            assert_eq!(chaos.release_delayed(&mut coord_b, &mut nodes_b), 0);
            for i in 0..n {
                let x = vec![(round * 7 + i) as f64 * 0.11, (round + i) as f64 * -0.3];
                if let Some(m) = nodes_a[i].update_data(x.clone()) {
                    bare.route(&mut coord_a, &mut nodes_a, m);
                }
                if let Some(m) = nodes_b[i].update_data(x) {
                    chaos.route(&mut coord_b, &mut nodes_b, m);
                }
            }
        }
        assert_eq!(chaos.trace(), &[] as &[FaultEvent]);
        assert_eq!(
            chaos.stats(),
            bare.stats(),
            "FaultPlan::none must be byte-identical to the unwrapped fabric"
        );
        assert_eq!(chaos.per_node_messages(), bare.per_node_messages());
    }

    #[test]
    fn crash_reports_node_down_and_restart_fires_once() {
        let n = 2;
        let (mut coord, mut nodes) = setup(n);
        let plan = FaultPlan::seeded(9).with_crash(1, 1, Some(3));
        let mut fabric = ChaosFabric::new(CountingFabric::new(), plan, n);

        assert!(fabric.begin_round(0).is_empty());
        for i in 0..n {
            if let Some(m) = nodes[i].update_data(vec![0.1 * i as f64, 0.2]) {
                fabric.route(&mut coord, &mut nodes, m);
            }
        }

        assert!(fabric.begin_round(1).is_empty());
        assert!(fabric.is_crashed(1));
        // A pull addressed to the dead node must fail observably.
        fabric.route_outbounds(
            &mut coord,
            &mut nodes,
            vec![Outbound::new(
                1,
                automon_core::CoordinatorMessage::RequestLocalVector { epoch: 0 },
                CommCause::FullSync,
            )],
        );
        let failures = fabric.take_delivery_failures();
        assert_eq!(
            failures,
            vec![DeliveryFailure {
                node: 1,
                dir: Direction::CoordToNode
            }]
        );
        assert!(fabric.take_delivery_failures().is_empty(), "drained");

        assert!(fabric.begin_round(2).is_empty());
        assert_eq!(fabric.begin_round(3), vec![1]);
        assert!(!fabric.is_crashed(1));
        assert_eq!(fabric.begin_round(4), vec![], "restart fires once");

        let kinds: Vec<FaultKind> = fabric.trace().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::Crash));
        assert!(kinds.contains(&FaultKind::NodeDown));
        assert!(kinds.contains(&FaultKind::Restart));
    }

    #[test]
    fn partition_swallows_without_failure() {
        let n = 2;
        let (mut coord, mut nodes) = setup(n);
        let plan = FaultPlan::seeded(4).with_partition(vec![0], 0, 5);
        let mut fabric = ChaosFabric::new(CountingFabric::new(), plan, n);
        fabric.begin_round(0);
        let m = nodes[0].update_data(vec![1.0, 2.0]).expect("first report");
        fabric.route(&mut coord, &mut nodes, m);
        assert_eq!(fabric.stats().node_to_coord_msgs, 0, "frame swallowed");
        assert!(fabric.take_delivery_failures().is_empty());
        assert_eq!(fabric.trace().len(), 1);
        assert_eq!(fabric.trace()[0].kind, FaultKind::PartitionDrop);

        // After the partition heals, the node's retransmission of the
        // still-outstanding report goes through.
        fabric.begin_round(5);
        let m = nodes[0].retransmit_report().expect("outstanding report");
        fabric.route(&mut coord, &mut nodes, m);
        assert_eq!(fabric.stats().node_to_coord_msgs, 1);
    }

    #[test]
    fn delayed_frames_mature_in_order() {
        let n = 2;
        let (mut coord, mut nodes) = setup(n);
        // delay_rate 1.0: every non-immune frame is delayed.
        let plan = FaultPlan::seeded(11).with_delay(1.0, 2);
        let mut fabric = ChaosFabric::new(CountingFabric::new(), plan, n);
        fabric.begin_round(0);
        let m = nodes[0].update_data(vec![0.5, 0.5]).expect("report");
        fabric.route(&mut coord, &mut nodes, m);
        assert_eq!(fabric.stats().node_to_coord_msgs, 0);
        assert_eq!(fabric.delayed_frames(), 1);

        let mut delivered = 0;
        for round in 1..=3 {
            fabric.begin_round(round);
            delivered += fabric.release_delayed(&mut coord, &mut nodes);
        }
        assert_eq!(delivered, 1);
        assert_eq!(fabric.delayed_frames(), 0);
        assert_eq!(fabric.stats().node_to_coord_msgs, 1, "matured and counted");
    }

    #[test]
    fn duplicate_delivers_twice_and_is_not_reduplicated() {
        let n = 2;
        let (mut coord, mut nodes) = setup(n);
        let plan = FaultPlan::seeded(5).with_duplicate_rate(1.0);
        let mut fabric = ChaosFabric::new(CountingFabric::new(), plan, n);
        fabric.begin_round(0);
        let m = nodes[0].update_data(vec![0.5, 0.5]).expect("report");
        fabric.route(&mut coord, &mut nodes, m);
        // The report is duplicated (2 deliveries); the coordinator's
        // replies are gated too but the immune copies are not re-split,
        // so the cascade terminates.
        assert_eq!(fabric.stats().node_to_coord_msgs, 2);
        let dups = fabric
            .trace()
            .iter()
            .filter(|e| e.kind == FaultKind::Duplicate)
            .count();
        assert!(dups >= 1);
        assert!(
            fabric.trace().len() < 64,
            "duplication must not cascade unboundedly"
        );
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn plan_naming_unknown_node_rejected() {
        let plan = FaultPlan::seeded(0).with_crash(9, 1, None);
        let _ = ChaosFabric::new(CountingFabric::new(), plan, 2);
    }
}
