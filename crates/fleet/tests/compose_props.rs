//! Property: weighted composition of shard partial means is *bitwise*
//! equal to the flat global mean, provided both sides follow the
//! canonical shard-major summation order (DESIGN §3.14). This is the
//! contract that lets a fleet run and a flat run share one truth
//! series; it holds for any shard count, any assignment (round-robin
//! or cell-router), and any rebalancing history, because the order is
//! fixed by the *current* shard map, not by how it came to be.

use automon_fleet::compose::{compose_global_mean, flat_global_mean, partials_of};
use automon_fleet::ShardMap;
use proptest::prelude::*;

fn assert_bitwise_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-robin maps: composed == flat, bitwise, for random data
    /// spanning several orders of magnitude (where FP non-associativity
    /// actually bites).
    #[test]
    fn round_robin_composition_is_bitwise_exact(
        shards in 1usize..8,
        extra in 0usize..20,
        dim in 1usize..5,
        scale in proptest::collection::vec(-9i32..9, 1..5),
        seed in proptest::collection::vec(-1.0f64..1.0, 1..200),
    ) {
        let streams = shards + extra;
        let map = ShardMap::round_robin(streams, shards);
        let xs: Vec<Vec<f64>> = (0..streams)
            .map(|g| {
                (0..dim)
                    .map(|k| {
                        let s = seed[(g * dim + k) % seed.len()];
                        let e = scale[(g + k) % scale.len()];
                        s * 10f64.powi(e)
                    })
                    .collect()
            })
            .collect();
        let composed = compose_global_mean(&partials_of(&map, &xs));
        let flat = flat_global_mean(&map, &xs);
        assert_bitwise_eq(&composed, &flat);
    }

    /// Cell-router maps (data-dependent, hash-assigned, backfilled):
    /// the same bitwise contract holds.
    #[test]
    fn cell_router_composition_is_bitwise_exact(
        shards in 1usize..5,
        extra in 0usize..12,
        seed in proptest::collection::vec(-100.0f64..100.0, 2..100),
    ) {
        let streams = shards + extra;
        let xs: Vec<Vec<f64>> = (0..streams)
            .map(|g| vec![seed[g % seed.len()], seed[(g * 7 + 1) % seed.len()]])
            .collect();
        let map = ShardMap::by_cell(&xs, 1e-3, shards);
        let composed = compose_global_mean(&partials_of(&map, &xs));
        let flat = flat_global_mean(&map, &xs);
        assert_bitwise_eq(&composed, &flat);
    }

    /// Rebalancing moves members between shards but the contract is a
    /// property of the *resulting* map: after an adoption, composition
    /// under the new map still matches the flat reference bitwise.
    #[test]
    fn composition_survives_adoption_bitwise(
        shards in 2usize..6,
        extra in 0usize..15,
        from in 0usize..6,
        seed in proptest::collection::vec(-10.0f64..10.0, 1..80),
    ) {
        let streams = shards + extra;
        let mut map = ShardMap::round_robin(streams, shards);
        let from = from % shards;
        let to = (from + 1) % shards;
        map.adopt(from, to);
        let xs: Vec<Vec<f64>> = (0..streams)
            .map(|g| vec![seed[g % seed.len()], seed[(g + 3) % seed.len()]])
            .collect();
        let composed = compose_global_mean(&partials_of(&map, &xs));
        let flat = flat_global_mean(&map, &xs);
        assert_bitwise_eq(&composed, &flat);
    }
}
