//! Deterministic fault schedules for fleet runs.
//!
//! The flat simulator's chaos engine injects frame-level faults
//! (drops, delays, partitions) behind the fabric; the fleet instead
//! takes an explicit, fully deterministic schedule of *membership*
//! faults — node crashes with optional restarts, and permanent leaf
//! crashes — because the hierarchy's interesting failure modes are
//! rebalancing ones, and byte-identical replay requires the schedule
//! to be data, not dice.

/// One stream (node) crash, with an optional restart round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// Global stream id.
    pub stream: usize,
    /// Round the crash takes effect (before that round's updates).
    pub at: u64,
    /// Round the node restarts and re-registers, if it ever does.
    pub restart: Option<u64>,
}

/// One permanent leaf-coordinator crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafCrash {
    /// Leaf (shard) index.
    pub leaf: usize,
    /// Round the crash takes effect (before that round's updates).
    pub at: u64,
}

/// A fleet fault schedule: what dies (and possibly returns) when.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetFaultPlan {
    /// Node crashes, applied in declaration order within a round.
    pub node_crashes: Vec<NodeCrash>,
    /// Leaf crashes, applied in declaration order within a round,
    /// after the round's node crashes.
    pub leaf_crashes: Vec<LeafCrash>,
}

impl FleetFaultPlan {
    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty() && self.leaf_crashes.is_empty()
    }

    /// Streams that crash at round `t`, in declaration order.
    pub fn node_crashes_at(&self, t: u64) -> impl Iterator<Item = usize> + '_ {
        self.node_crashes
            .iter()
            .filter(move |c| c.at == t)
            .map(|c| c.stream)
    }

    /// Streams that restart at round `t`, in declaration order.
    pub fn restarts_at(&self, t: u64) -> impl Iterator<Item = usize> + '_ {
        self.node_crashes
            .iter()
            .filter(move |c| c.restart == Some(t))
            .map(|c| c.stream)
    }

    /// Leaves that crash at round `t`, in declaration order.
    pub fn leaf_crashes_at(&self, t: u64) -> impl Iterator<Item = usize> + '_ {
        self.leaf_crashes
            .iter()
            .filter(move |c| c.at == t)
            .map(|c| c.leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_filters_by_round() {
        let plan = FleetFaultPlan {
            node_crashes: vec![
                NodeCrash {
                    stream: 3,
                    at: 5,
                    restart: Some(9),
                },
                NodeCrash {
                    stream: 1,
                    at: 5,
                    restart: None,
                },
            ],
            leaf_crashes: vec![LeafCrash { leaf: 2, at: 7 }],
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.node_crashes_at(5).collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(plan.node_crashes_at(6).count(), 0);
        assert_eq!(plan.restarts_at(9).collect::<Vec<_>>(), vec![3]);
        assert_eq!(plan.leaf_crashes_at(7).collect::<Vec<_>>(), vec![2]);
        assert!(FleetFaultPlan::default().is_empty());
    }
}
