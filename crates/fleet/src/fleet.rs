//! The two-tier coordinator fleet (DESIGN.md §3.14).
//!
//! Every shard of streams gets a full [`Coordinator`] — the *leaf* —
//! running the unmodified flat protocol over its members with a
//! fraction of the error budget. Each leaf is simultaneously a *node*
//! of the *root* tier: a proxy [`Node`] per shard holds a root-assigned
//! safe zone over the shard's scaled partial mean, and the leaf
//! contacts the root only when a completed intra-shard sync moves that
//! partial mean out of the proxy's zone. Silence at the root is the
//! communication saving: a shard-local violation is resolved by the
//! leaf's own lazy/full sync and never crosses the tier boundary unless
//! the *shard aggregate* actually moved.
//!
//! Proxy vectors are scaled so the root's unweighted mean recovers the
//! global mean: leaf `l` publishes `v_l = (S·n_l/N)·μ_l`, where `μ_l`
//! is its partial mean, `n_l` its alive member count, `N` the alive
//! population, and `S` the alive leaf count — then
//! `(1/S)·Σ v_l = Σ (n_l/N)·μ_l = x̄`.

use std::sync::Arc;

use automon_core::{
    CommCause, Coordinator, CoordinatorStats, Epoch, MonitorConfig, MonitoredFunction, Node,
    NodeMessage, SharedDecompCache, TierMessage,
};
use automon_net::ShardedFabric;
use automon_obs::{Counter, Gauge, SpanId, Telemetry};

use crate::fault::FleetFaultPlan;
use crate::shard::ShardMap;

/// Decomposition-cache namespace shared by every leaf coordinator:
/// all leaves monitor the same `f` over same-dimension shard means, so
/// their cache entries are mutually reusable.
pub const LEAF_CACHE_FN_ID: u64 = 1;
/// Decomposition-cache namespace of the root coordinator (its streams
/// are scaled partial means — different dynamics, same `f`).
pub const ROOT_CACHE_FN_ID: u64 = 2;

/// Fleet-level configuration on top of the per-coordinator
/// [`MonitorConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shards (leaf coordinators).
    pub shards: usize,
    /// Fraction of `ε` given to the leaf tier; the root gets the rest.
    pub leaf_epsilon_frac: f64,
}

impl FleetConfig {
    /// Defaults: an even ε split.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            leaf_epsilon_frac: 0.5,
        }
    }
}

/// Fleet-level event counters (protocol messages are accounted by the
/// fabrics; these count the *events* the hierarchy adds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetEvents {
    /// Leaf→root reports routed (tier-boundary crossings).
    pub leaf_reports: u64,
    /// Shard rebalances performed (leaf crashes with survivors).
    pub rebalances: u64,
    /// Node crashes applied.
    pub node_crashes: u64,
    /// Node restarts applied.
    pub restarts: u64,
    /// Leaf crashes applied.
    pub leaf_crashes: u64,
}

struct FleetTel {
    reports: Counter,
    rebalances: Counter,
    alive_leaves: Gauge,
    alive_streams: Gauge,
}

impl FleetTel {
    fn new(tel: &Telemetry) -> Self {
        Self {
            reports: tel.counter(
                "automon_fleet_leaf_reports_total",
                "Leaf-to-root reports crossing the tier boundary",
            ),
            rebalances: tel.counter(
                "automon_fleet_rebalances_total",
                "Shard rebalances after leaf crashes",
            ),
            alive_leaves: tel.gauge(
                "automon_fleet_alive_leaves",
                "Leaf coordinators currently alive",
            ),
            alive_streams: tel.gauge(
                "automon_fleet_alive_streams",
                "Streams currently in the monitored population",
            ),
        }
    }
}

struct Leaf {
    coord: Coordinator,
    nodes: Vec<Node>,
    /// Leaf epoch whose `x0` was last pushed to the proxy.
    pushed_epoch: Epoch,
    /// Alive member count at the last proxy push (scale input).
    pushed_weight: usize,
}

/// The assembled two-tier fleet: leaves, root, proxies, and the
/// sharded fabric accounting every frame on both tiers.
pub struct Fleet {
    f: Arc<dyn MonitoredFunction>,
    leaf_cfg: MonitorConfig,
    map: ShardMap,
    leaves: Vec<Leaf>,
    leaf_alive: Vec<bool>,
    stream_alive: Vec<bool>,
    root: Coordinator,
    proxies: Vec<Node>,
    fabric: ShardedFabric,
    latest: Vec<Option<Vec<f64>>>,
    shared_cache: Option<SharedDecompCache>,
    events: FleetEvents,
    tel: Telemetry,
    ftel: FleetTel,
}

impl Fleet {
    /// Build a fleet of `fc.shards` leaves over `streams` streams
    /// monitoring `f`. `cfg.epsilon` is split between the tiers per
    /// `fc.leaf_epsilon_frac`; every other knob applies to both tiers.
    /// When `cfg.decomp_cache` is set, one [`SharedDecompCache`] is
    /// shared across all leaf coordinators (and, under a separate
    /// namespace, the root).
    pub fn new(
        f: Arc<dyn MonitoredFunction>,
        streams: usize,
        cfg: MonitorConfig,
        fc: FleetConfig,
    ) -> Self {
        assert!(
            fc.leaf_epsilon_frac > 0.0 && fc.leaf_epsilon_frac < 1.0,
            "leaf_epsilon_frac must be in (0, 1)"
        );
        let map = ShardMap::round_robin(streams, fc.shards);
        Self::with_shard_map(f, map, cfg, fc.leaf_epsilon_frac)
    }

    /// [`Fleet::new`] with an explicit stream→shard assignment (e.g.
    /// from [`ShardMap::by_cell`]).
    pub fn with_shard_map(
        f: Arc<dyn MonitoredFunction>,
        map: ShardMap,
        cfg: MonitorConfig,
        leaf_epsilon_frac: f64,
    ) -> Self {
        assert!(
            leaf_epsilon_frac > 0.0 && leaf_epsilon_frac < 1.0,
            "leaf_epsilon_frac must be in (0, 1)"
        );
        let shards = map.shards();
        let streams = map.streams();
        let mut leaf_cfg = cfg.clone();
        leaf_cfg.epsilon = cfg.epsilon * leaf_epsilon_frac;
        let mut root_cfg = cfg.clone();
        root_cfg.epsilon = cfg.epsilon * (1.0 - leaf_epsilon_frac);
        // One shared cache across the whole fleet; the per-coordinator
        // caches Coordinator::new would build from the config are
        // replaced below.
        let shared_cache = cfg
            .decomp_cache
            .as_ref()
            .map(|c| SharedDecompCache::from_config(c.clone()));
        let leaves: Vec<Leaf> = (0..shards)
            .map(|s| {
                let k = map.members(s).len();
                let mut coord = Coordinator::new(f.clone(), k, leaf_cfg.clone());
                if let Some(cache) = &shared_cache {
                    coord.set_decomp_cache(cache.clone(), LEAF_CACHE_FN_ID);
                }
                Leaf {
                    coord,
                    nodes: (0..k).map(|i| Node::new(i, f.clone())).collect(),
                    pushed_epoch: 0,
                    pushed_weight: 0,
                }
            })
            .collect();
        let mut root = Coordinator::new(f.clone(), shards, root_cfg);
        if let Some(cache) = &shared_cache {
            root.set_decomp_cache(cache.clone(), ROOT_CACHE_FN_ID);
        }
        let fabric = ShardedFabric::new(shards).with_parallelism(cfg.parallelism);
        let tel = Telemetry::disabled();
        let ftel = FleetTel::new(&tel);
        Self {
            proxies: (0..shards).map(|l| Node::new(l, f.clone())).collect(),
            f,
            leaf_cfg,
            map,
            leaves,
            leaf_alive: vec![true; shards],
            stream_alive: vec![true; streams],
            root,
            fabric,
            latest: vec![None; streams],
            shared_cache,
            events: FleetEvents::default(),
            tel,
            ftel,
        }
    }

    /// Attach telemetry to every coordinator, node, and fabric in the
    /// fleet, and register the fleet-level counters and gauges.
    /// Coordinator metrics aggregate across leaves (shared names);
    /// trace spans parent per tier, so the causal tree separates what
    /// the shared counters merge.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        for leaf in &mut self.leaves {
            leaf.coord.set_telemetry(tel.clone());
            for node in &mut leaf.nodes {
                node.set_telemetry(&tel);
            }
        }
        self.root.set_telemetry(tel.clone());
        for proxy in &mut self.proxies {
            proxy.set_telemetry(&tel);
        }
        self.fabric = self.fabric.with_telemetry(&tel);
        self.ftel = FleetTel::new(&tel);
        self.ftel.alive_leaves.set(self.alive_leaves() as f64);
        self.ftel.alive_streams.set(self.alive_streams() as f64);
        self.tel = tel;
        self
    }

    /// Stamp the round on every fabric (ledger row key).
    pub fn set_round(&mut self, round: u64) {
        self.fabric.set_round(round);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.leaves.len()
    }

    /// Leaf coordinators still alive.
    pub fn alive_leaves(&self) -> usize {
        self.leaf_alive.iter().filter(|&&a| a).count()
    }

    /// Streams still in the monitored population.
    pub fn alive_streams(&self) -> usize {
        self.stream_alive.iter().filter(|&&a| a).count()
    }

    /// The stream→shard assignment currently in force.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The root coordinator.
    pub fn root(&self) -> &Coordinator {
        &self.root
    }

    /// Leaf `l`'s coordinator.
    pub fn leaf_coord(&self, l: usize) -> &Coordinator {
        &self.leaves[l].coord
    }

    /// `true` while leaf `l` has not crashed.
    pub fn leaf_is_alive(&self, l: usize) -> bool {
        self.leaf_alive[l]
    }

    /// `true` while stream `g` has not crashed (or has restarted).
    pub fn stream_is_alive(&self, g: usize) -> bool {
        self.stream_alive[g]
    }

    /// The two-tier fabric (stats, ledgers, conservation).
    pub fn fabric(&self) -> &ShardedFabric {
        &self.fabric
    }

    /// Fleet-level event counters.
    pub fn events(&self) -> &FleetEvents {
        &self.events
    }

    /// The shared decomposition cache, when configured.
    pub fn decomp_cache(&self) -> Option<&SharedDecompCache> {
        self.shared_cache.as_ref()
    }

    /// The root's current approximation `f(x0)`, once both tiers have
    /// completed their first syncs.
    pub fn estimate(&self) -> Option<f64> {
        self.root.current_value()
    }

    /// Protocol statistics summed over every leaf coordinator.
    pub fn leaf_stats_total(&self) -> CoordinatorStats {
        let mut total = CoordinatorStats::default();
        for leaf in &self.leaves {
            let s = leaf.coord.stats();
            total.full_syncs += s.full_syncs;
            total.lazy_syncs += s.lazy_syncs;
            total.neighborhood_violations += s.neighborhood_violations;
            total.safezone_violations += s.safezone_violations;
            total.faulty_reports += s.faulty_reports;
            total.r_doublings += s.r_doublings;
            total.stale_discards += s.stale_discards;
            total.resyncs += s.resyncs;
            total.evictions += s.evictions;
            total.rejoins += s.rejoins;
        }
        total
    }

    /// Push one data update for global stream `g` through the
    /// hierarchy: leaf-local constraint check, intra-shard resolution
    /// on violation, and a root report only if the resolved shard
    /// aggregate left the proxy's root-assigned zone.
    pub fn update(&mut self, g: usize, x: Vec<f64>) {
        assert!(g < self.latest.len(), "unknown stream {g}");
        if !self.stream_alive[g] {
            return;
        }
        self.latest[g] = Some(x.clone());
        let (l, local) = self.map.locate(g);
        if !self.leaf_alive[l] {
            return;
        }
        let Some(msg) = self.leaves[l].nodes[local].update_data(x) else {
            return;
        };
        let cause = CommCause::of_node_message(&msg);
        let span = self.tel.span_begin(
            "violation",
            SpanId::NONE,
            &[
                ("tier", "leaf".into()),
                ("shard", l.into()),
                ("node", g.into()),
                ("cause", cause.name().into()),
            ],
        );
        let leaf = &mut self.leaves[l];
        self.fabric
            .leaf(l)
            .route_as(&mut leaf.coord, &mut leaf.nodes, msg, cause, span);
        self.after_leaf_activity(l, span);
        self.tel.span_end(span, &[]);
    }

    /// After any exchange on leaf `l`: refresh its proxy if its
    /// partial mean moved (epoch bump), or every proxy if the
    /// population weights moved (membership change — all scales
    /// depend on `N`).
    fn after_leaf_activity(&mut self, l: usize, parent: SpanId) {
        let leaf = &self.leaves[l];
        if leaf.coord.alive_count() != leaf.pushed_weight {
            self.refresh_all_proxies(parent);
        } else if leaf.coord.epoch() != leaf.pushed_epoch {
            self.refresh_proxy(l, parent);
        }
    }

    /// Re-derive every proxy vector under the current weights.
    fn refresh_all_proxies(&mut self, parent: SpanId) {
        for l in 0..self.leaves.len() {
            self.refresh_proxy(l, parent);
        }
    }

    /// Push leaf `l`'s scaled partial mean into its proxy; on proxy
    /// violation, report to the root and resolve the root tier.
    fn refresh_proxy(&mut self, l: usize, parent: SpanId) {
        if !self.leaf_alive[l] {
            return;
        }
        let (s_alive, n_alive) = self.population();
        let leaf = &mut self.leaves[l];
        let Some(zone) = leaf.coord.zone() else {
            // Shard not initialized yet: nothing to publish.
            return;
        };
        if n_alive == 0 {
            return;
        }
        let n_l = leaf.coord.alive_count();
        let scale = (s_alive as f64) * (n_l as f64) / (n_alive as f64);
        let v: Vec<f64> = zone.x0.iter().map(|&c| c * scale).collect();
        leaf.pushed_epoch = leaf.coord.epoch();
        leaf.pushed_weight = n_l;
        let Some(viol) = self.proxies[l].update_data(v.clone()) else {
            return;
        };
        let NodeMessage::Violation { kind, epoch, .. } = viol else {
            unreachable!("update_data only reports violations");
        };
        let report = TierMessage::LeafReport {
            leaf: l,
            kind,
            partial: v,
            weight: n_l as u64,
            epoch,
        };
        let span = self.tel.span_begin(
            "violation",
            parent,
            &[
                ("tier", "root".into()),
                ("shard", l.into()),
                ("violation", format!("{kind:?}").into()),
            ],
        );
        self.events.leaf_reports += 1;
        self.ftel.reports.inc();
        self.fabric
            .route_leaf_report(&mut self.root, &mut self.proxies, &report, span);
        self.tel.span_end(span, &[]);
    }

    /// `(alive leaves, alive population over alive leaves)` — the
    /// scale inputs. Population counts a leaf's *registered* alive
    /// members, so restarts count from re-registration, exactly when
    /// they re-enter the shard mean.
    fn population(&self) -> (usize, usize) {
        let mut leaves = 0;
        let mut population = 0;
        for (l, leaf) in self.leaves.iter().enumerate() {
            if self.leaf_alive[l] {
                leaves += 1;
                population += leaf.coord.alive_count();
            }
        }
        (leaves, population)
    }

    /// Crash stream `g`: its leaf evicts the member (redistributing
    /// the shard's slack over the survivors) and every proxy scale is
    /// re-derived. A leaf left empty is torn down like a crashed leaf.
    pub fn crash_node(&mut self, g: usize) {
        if !self.stream_alive[g] {
            return;
        }
        self.stream_alive[g] = false;
        self.events.node_crashes += 1;
        self.ftel.alive_streams.set(self.alive_streams() as f64);
        let (l, local) = self.map.locate(g);
        if !self.leaf_alive[l] {
            return;
        }
        let leaf = &mut self.leaves[l];
        let outs = leaf.coord.evict(local);
        self.fabric.leaf(l).route_outbounds_as(
            &mut leaf.coord,
            &mut leaf.nodes,
            outs,
            CommCause::Eviction,
        );
        if self.leaves[l].coord.alive_count() == 0 {
            // Nothing left to monitor in the shard: retire the leaf.
            self.retire_leaf(l);
            return;
        }
        self.after_leaf_activity(l, SpanId::NONE);
    }

    /// Restart stream `g`: a fresh node re-registers from the stream's
    /// last vector (charged as `rejoin`), and the leaf's full sync
    /// re-admits it.
    pub fn restart_node(&mut self, g: usize) {
        if self.stream_alive[g] {
            return;
        }
        let (l, local) = self.map.locate(g);
        if !self.leaf_alive[l] {
            return;
        }
        self.stream_alive[g] = true;
        self.events.restarts += 1;
        self.ftel.alive_streams.set(self.alive_streams() as f64);
        let mut node = Node::new(local, self.f.clone());
        if self.tel.is_enabled() {
            node.set_telemetry(&self.tel);
        }
        self.leaves[l].nodes[local] = node;
        if let Some(x) = self.latest[g].clone() {
            let leaf = &mut self.leaves[l];
            if let Some(m) = leaf.nodes[local].update_data(x) {
                self.fabric.leaf(l).route_as(
                    &mut leaf.coord,
                    &mut leaf.nodes,
                    m,
                    CommCause::Rejoin,
                    SpanId::NONE,
                );
            }
            self.after_leaf_activity(l, SpanId::NONE);
        }
    }

    /// Crash leaf `l` permanently: the root evicts its proxy, the next
    /// alive leaf adopts its surviving streams (one `Rebalance`
    /// directive, then an intra-shard rebuild re-registering every
    /// member), and all proxy scales are re-derived.
    pub fn crash_leaf(&mut self, l: usize) {
        if !self.leaf_alive[l] {
            return;
        }
        self.events.leaf_crashes += 1;
        let survivors: Vec<usize> = self
            .map
            .members(l)
            .iter()
            .copied()
            .filter(|&g| self.stream_alive[g])
            .collect();
        for &g in self.map.members(l) {
            self.stream_alive[g] = false;
        }
        self.retire_leaf(l);
        let shards = self.leaves.len();
        let Some(successor) =
            (1..shards).map(|k| (l + k) % shards).find(|&k| self.leaf_alive[k])
        else {
            return;
        };
        if survivors.is_empty() {
            self.refresh_all_proxies(SpanId::NONE);
            return;
        }
        self.map.adopt(l, successor);
        for &g in &survivors {
            self.stream_alive[g] = true;
        }
        let directive = TierMessage::Rebalance {
            leaf: successor,
            adopted: survivors,
            epoch: self.root.epoch(),
        };
        self.tel.event(
            "rebalance",
            &[
                ("from", l.into()),
                ("to", directive.leaf().into()),
                ("adopted", (self.map.members(successor).len()).into()),
            ],
        );
        let directive = self.fabric.send_rebalance(&directive, SpanId::NONE);
        let TierMessage::Rebalance { leaf, .. } = directive else {
            unreachable!()
        };
        self.events.rebalances += 1;
        self.ftel.rebalances.inc();
        self.ftel.alive_streams.set(self.alive_streams() as f64);
        self.rebuild_leaf(leaf);
        self.refresh_all_proxies(SpanId::NONE);
    }

    /// Mark leaf `l` dead and evict its proxy from the root group
    /// (recovery traffic lifts to `shard_rebalance`).
    fn retire_leaf(&mut self, l: usize) {
        self.leaf_alive[l] = false;
        self.ftel.alive_leaves.set(self.alive_leaves() as f64);
        self.ftel.alive_streams.set(self.alive_streams() as f64);
        let outs = self.root.evict(l);
        self.fabric.root().route_outbounds_as(
            &mut self.root,
            &mut self.proxies,
            outs,
            CommCause::Eviction,
        );
    }

    /// Rebuild leaf `s`'s coordinator over its (enlarged) member set:
    /// the coordinator's group size is fixed at construction, so
    /// adoption means a fresh coordinator and a re-registration of
    /// every member from its last known vector — an intra-shard full
    /// sync charged as `rejoin`.
    fn rebuild_leaf(&mut self, s: usize) {
        let members = self.map.members(s).to_vec();
        let k = members.len();
        let mut coord = Coordinator::new(self.f.clone(), k, self.leaf_cfg.clone());
        if let Some(cache) = &self.shared_cache {
            coord.set_decomp_cache(cache.clone(), LEAF_CACHE_FN_ID);
        }
        if self.tel.is_enabled() {
            coord.set_telemetry(self.tel.clone());
        }
        let mut nodes: Vec<Node> = (0..k).map(|i| Node::new(i, self.f.clone())).collect();
        if self.tel.is_enabled() {
            for node in &mut nodes {
                node.set_telemetry(&self.tel);
            }
        }
        // Dead members stay dead in the new incarnation.
        for (local, &g) in members.iter().enumerate() {
            if !self.stream_alive[g] {
                let _ = coord.evict(local);
            }
        }
        self.leaves[s] = Leaf {
            coord,
            nodes,
            pushed_epoch: 0,
            pushed_weight: 0,
        };
        // Proxy state belongs to the old incarnation; a fresh node
        // re-registers at the root on the first post-rebuild push.
        let mut proxy = Node::new(s, self.f.clone());
        if self.tel.is_enabled() {
            proxy.set_telemetry(&self.tel);
        }
        self.proxies[s] = proxy;
        for (local, &g) in members.iter().enumerate() {
            if !self.stream_alive[g] {
                continue;
            }
            let Some(x) = self.latest[g].clone() else {
                continue;
            };
            let leaf = &mut self.leaves[s];
            if let Some(m) = leaf.nodes[local].update_data(x) {
                self.fabric.leaf(s).route_as(
                    &mut leaf.coord,
                    &mut leaf.nodes,
                    m,
                    CommCause::Rejoin,
                    SpanId::NONE,
                );
            }
        }
    }

    /// Apply one round's scheduled faults (crashes first, then
    /// restarts, then leaf crashes — declaration order within each).
    pub fn apply_faults(&mut self, plan: &FleetFaultPlan, round: u64) {
        let crashes: Vec<usize> = plan.node_crashes_at(round).collect();
        for g in crashes {
            self.crash_node(g);
        }
        let restarts: Vec<usize> = plan.restarts_at(round).collect();
        for g in restarts {
            self.restart_node(g);
        }
        let leaf_crashes: Vec<usize> = plan.leaf_crashes_at(round).collect();
        for l in leaf_crashes {
            self.crash_leaf(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::NeighborhoodMode;

    struct Mean2;
    impl ScalarFn for Mean2 {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0] + x[1]
        }
    }

    fn fleet(streams: usize, shards: usize) -> Fleet {
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Mean2));
        let cfg = MonitorConfig::builder(0.5)
            .neighborhood(NeighborhoodMode::Fixed(1.0))
            .build();
        Fleet::new(f, streams, cfg, FleetConfig::new(shards))
    }

    fn seed_all(fl: &mut Fleet, streams: usize) {
        for g in 0..streams {
            fl.update(g, vec![0.1 * g as f64, 0.2]);
        }
    }

    #[test]
    fn fleet_initializes_both_tiers_and_estimates() {
        let mut fl = fleet(6, 2);
        assert!(fl.estimate().is_none());
        seed_all(&mut fl, 6);
        // Every leaf synced, every proxy registered, root synced.
        for l in 0..2 {
            assert!(fl.leaf_coord(l).current_value().is_some());
        }
        let est = fl.estimate().expect("root initialized");
        // Truth: f(x̄) with x̄ = mean of all 6 vectors.
        let mean0 = (0..6).map(|g| 0.1 * g as f64).sum::<f64>() / 6.0;
        let truth = mean0 + 0.2;
        assert!((est - truth).abs() <= 0.5 + 1e-9, "est {est} truth {truth}");
        assert_eq!(fl.fabric().check_conservation(), None);
        assert!(fl.events().leaf_reports >= 2);
    }

    #[test]
    fn quiet_updates_do_not_reach_the_root() {
        let mut fl = fleet(6, 2);
        seed_all(&mut fl, 6);
        let root_msgs_before = fl.fabric().root_ref().stats().total_msgs();
        // Re-send the same vectors: inside every zone, total silence.
        seed_all(&mut fl, 6);
        assert_eq!(
            fl.fabric().root_ref().stats().total_msgs(),
            root_msgs_before
        );
    }

    #[test]
    fn node_crash_restart_round_trips() {
        let mut fl = fleet(6, 2);
        seed_all(&mut fl, 6);
        fl.crash_node(2);
        assert!(!fl.stream_is_alive(2));
        assert_eq!(fl.leaf_stats_total().evictions, 1);
        assert_eq!(fl.fabric().check_conservation(), None);
        fl.restart_node(2);
        assert!(fl.stream_is_alive(2));
        assert_eq!(fl.leaf_stats_total().rejoins, 1);
        assert_eq!(fl.fabric().check_conservation(), None);
        assert!(fl.estimate().is_some());
    }

    #[test]
    fn leaf_crash_rebalances_survivors_onto_successor() {
        let mut fl = fleet(6, 3);
        seed_all(&mut fl, 6);
        fl.crash_leaf(1);
        assert!(!fl.leaf_is_alive(1));
        assert_eq!(fl.alive_leaves(), 2);
        // Members 1 and 4 moved to shard 2.
        assert_eq!(fl.shard_map().locate(1).0, 2);
        assert_eq!(fl.shard_map().locate(4).0, 2);
        assert_eq!(fl.alive_streams(), 6);
        assert_eq!(fl.events().rebalances, 1);
        assert_eq!(fl.fabric().check_conservation(), None);
        // The fleet still runs: updates flow through the adopter.
        for g in 0..6 {
            fl.update(g, vec![1.0 + 0.1 * g as f64, 0.4]);
        }
        assert!(fl.estimate().is_some());
        assert_eq!(fl.fabric().check_conservation(), None);
        // Root-fabric rows all carry tier causes.
        for cause in fl.fabric().root_ref().ledger().by_cause().keys() {
            assert_eq!(cause.at_root(), *cause);
        }
    }

    #[test]
    fn fault_plan_applies_in_order() {
        use crate::fault::{LeafCrash, NodeCrash};
        let mut fl = fleet(6, 3);
        seed_all(&mut fl, 6);
        let plan = FleetFaultPlan {
            node_crashes: vec![NodeCrash {
                stream: 0,
                at: 1,
                restart: Some(2),
            }],
            leaf_crashes: vec![LeafCrash { leaf: 2, at: 2 }],
        };
        fl.apply_faults(&plan, 1);
        assert!(!fl.stream_is_alive(0));
        fl.apply_faults(&plan, 2);
        assert!(fl.stream_is_alive(0));
        assert!(!fl.leaf_is_alive(2));
        assert_eq!(fl.fabric().check_conservation(), None);
    }
}
