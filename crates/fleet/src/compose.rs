//! Canonical weighted composition of shard partial means.
//!
//! Floating-point addition is not associative, so "the global mean" is
//! only well-defined bitwise once a summation order is fixed. The
//! fleet's canonical order is **shard-major**: each shard's member
//! vectors are summed left-to-right in local-id order, the per-shard
//! partial sums are combined left-to-right in shard order, and the
//! total is divided by the population once, at the end. Everything
//! that claims bitwise agreement with the fleet — the flat reference
//! below, the simulator's truth series — must follow this exact
//! grouping; any other grouping agrees only approximately.

use crate::shard::ShardMap;

/// Sum `vectors` left-to-right into one `d`-vector (stage 1 of the
/// canonical order: a shard's partial sum over its members in local-id
/// order).
pub fn shard_partial_sum<'a>(vectors: impl Iterator<Item = &'a [f64]>, d: usize) -> Vec<f64> {
    let mut sum = vec![0.0; d];
    for v in vectors {
        debug_assert_eq!(v.len(), d);
        for (s, &x) in sum.iter_mut().zip(v) {
            *s += x;
        }
    }
    sum
}

/// Compose per-shard `(partial_sum, member_count)` pairs into the
/// global mean: fold the partial sums left-to-right in the given
/// (shard) order, then divide by the total count once.
///
/// # Panics
/// Panics when the total count is zero or the partials are ragged.
pub fn compose_global_mean(partials: &[(Vec<f64>, u64)]) -> Vec<f64> {
    let d = partials.first().map_or(0, |(v, _)| v.len());
    let mut total = vec![0.0; d];
    let mut count = 0u64;
    for (sum, weight) in partials {
        assert_eq!(sum.len(), d, "ragged partial sums");
        for (t, &s) in total.iter_mut().zip(sum) {
            *t += s;
        }
        count += weight;
    }
    assert!(count > 0, "compose_global_mean: empty population");
    let inv = count as f64;
    for t in &mut total {
        *t /= inv;
    }
    total
}

/// The flat reference: the global mean computed directly from the raw
/// per-stream vectors under the same canonical shard-major order. An
/// un-sharded run that wants bitwise agreement with the fleet computes
/// its truth through this function.
pub fn flat_global_mean(map: &ShardMap, xs: &[Vec<f64>]) -> Vec<f64> {
    assert_eq!(xs.len(), map.streams(), "one vector per stream");
    let d = xs.first().map_or(0, Vec::len);
    let mut total = vec![0.0; d];
    for s in 0..map.shards() {
        let partial = shard_partial_sum(map.members(s).iter().map(|&g| xs[g].as_slice()), d);
        for (t, &p) in total.iter_mut().zip(&partial) {
            *t += p;
        }
    }
    let inv = map.streams() as f64;
    for t in &mut total {
        *t /= inv;
    }
    total
}

/// The fleet-side view of the same computation: per-shard partial sums
/// in shard order, ready for [`compose_global_mean`].
pub fn partials_of(map: &ShardMap, xs: &[Vec<f64>]) -> Vec<(Vec<f64>, u64)> {
    let d = xs.first().map_or(0, Vec::len);
    (0..map.shards())
        .map(|s| {
            let members = map.members(s);
            (
                shard_partial_sum(members.iter().map(|&g| xs[g].as_slice()), d),
                members.len() as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_matches_flat_reference_bitwise() {
        let map = ShardMap::round_robin(7, 3);
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|g| vec![0.1 * g as f64, 1.0 / (g + 1) as f64])
            .collect();
        let composed = compose_global_mean(&partials_of(&map, &xs));
        let flat = flat_global_mean(&map, &xs);
        assert_eq!(composed, flat);
        for (c, f) in composed.iter().zip(&flat) {
            assert_eq!(c.to_bits(), f.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_rejected() {
        compose_global_mean(&[(vec![1.0], 0)]);
    }
}
