//! Stream→shard assignment for the coordinator fleet.

use automon_core::quant;

/// Deterministic FNV-1a over a quantized cell — the stable hash the
/// cell router buckets with. (Not `DefaultHasher`: its algorithm is
/// explicitly unspecified across releases, and shard assignment must be
/// reproducible byte-for-byte.)
fn fnv1a_cells(cells: &[i64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in cells {
        for b in c.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Which shard (leaf coordinator) each global stream belongs to, and
/// the stream's local node id within that shard.
///
/// Local ids are dense per shard: member `k` of shard `s` is local node
/// `k` of `s`'s leaf coordinator. Rebalancing ([`ShardMap::adopt`])
/// appends the moved streams to the receiving shard, so survivors keep
/// their local ids and the adoptees get fresh ones — the receiving leaf
/// rebuilds its coordinator at the enlarged size anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shard_of: Vec<usize>,
    local_of: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl ShardMap {
    /// Round-robin assignment: stream `g` to shard `g % shards`. The
    /// default — balanced by construction and independent of the data.
    pub fn round_robin(streams: usize, shards: usize) -> Self {
        assert!(shards >= 1, "ShardMap: need at least one shard");
        assert!(
            streams >= shards,
            "ShardMap: {streams} streams cannot fill {shards} shards"
        );
        Self::from_assignment(shards, (0..streams).map(|g| g % shards).collect())
    }

    /// Cell-router assignment: bucket each stream by the quantized cell
    /// of its initial vector (the same [`quant::quantize_cell`] the
    /// decomposition-cache key uses, so streams that land in one cell —
    /// and would hit the same cache entries — colocate on one leaf).
    /// Shards left empty by the hash are backfilled round-robin so
    /// every leaf coordinator has at least one member.
    pub fn by_cell(x0s: &[Vec<f64>], cell: f64, shards: usize) -> Self {
        assert!(shards >= 1, "ShardMap: need at least one shard");
        assert!(
            x0s.len() >= shards,
            "ShardMap: {} streams cannot fill {shards} shards",
            x0s.len()
        );
        let mut shard_of: Vec<usize> = x0s
            .iter()
            .map(|x| (fnv1a_cells(&quant::quantize_cell(x, cell)) % shards as u64) as usize)
            .collect();
        let mut count = vec![0usize; shards];
        for &s in &shard_of {
            count[s] += 1;
        }
        for s in 0..shards {
            while count[s] == 0 {
                // Steal a stream from the fullest shard, lowest stream
                // id first — deterministic and minimal.
                let donor = (0..shards).max_by_key(|&k| count[k]).unwrap();
                let g = shard_of.iter().position(|&x| x == donor).unwrap();
                shard_of[g] = s;
                count[donor] -= 1;
                count[s] += 1;
            }
        }
        Self::from_assignment(shards, shard_of)
    }

    fn from_assignment(shards: usize, shard_of: Vec<usize>) -> Self {
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut local_of = vec![0usize; shard_of.len()];
        for (g, &s) in shard_of.iter().enumerate() {
            local_of[g] = members[s].len();
            members[s].push(g);
        }
        Self {
            shard_of,
            local_of,
            members,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.members.len()
    }

    /// Number of global streams.
    pub fn streams(&self) -> usize {
        self.shard_of.len()
    }

    /// `(shard, local node id)` of global stream `g`.
    pub fn locate(&self, g: usize) -> (usize, usize) {
        (self.shard_of[g], self.local_of[g])
    }

    /// Global stream ids of shard `s`, in local-id order.
    pub fn members(&self, s: usize) -> &[usize] {
        &self.members[s]
    }

    /// Move every member of shard `from` to the end of shard `to`
    /// (leaf-crash rebalancing). Returns the moved streams in their old
    /// local order; `from` is left empty.
    pub fn adopt(&mut self, from: usize, to: usize) -> Vec<usize> {
        assert_ne!(from, to, "adopt: shard cannot adopt itself");
        let moved = std::mem::take(&mut self.members[from]);
        for &g in &moved {
            self.shard_of[g] = to;
            self.local_of[g] = self.members[to].len();
            self.members[to].push(g);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced_and_consistent() {
        let m = ShardMap::round_robin(10, 3);
        assert_eq!(m.shards(), 3);
        assert_eq!(m.streams(), 10);
        assert_eq!(m.members(0), &[0, 3, 6, 9]);
        assert_eq!(m.members(1), &[1, 4, 7]);
        for g in 0..10 {
            let (s, l) = m.locate(g);
            assert_eq!(m.members(s)[l], g);
        }
    }

    #[test]
    fn cell_router_colocates_equal_cells_and_fills_every_shard() {
        // Streams 0 and 2 share cell [0, 0]; 1 and 3 share cell
        // [1, 0]. The two cells hash to different shards mod 2, so no
        // backfill disturbs the colocation this test asserts.
        let x0s = vec![
            vec![0.0001, 0.0],
            vec![0.0011, 0.0],
            vec![0.0009, 0.0],
            vec![0.0019, 0.0],
        ];
        let m = ShardMap::by_cell(&x0s, 1e-3, 2);
        assert_eq!(m.locate(0).0, m.locate(2).0);
        assert_eq!(m.locate(1).0, m.locate(3).0);
        for s in 0..2 {
            assert!(!m.members(s).is_empty());
        }
        // Deterministic: same inputs, same map.
        assert_eq!(m, ShardMap::by_cell(&x0s, 1e-3, 2));
    }

    #[test]
    fn adopt_moves_members_and_keeps_locations_consistent() {
        let mut m = ShardMap::round_robin(7, 3);
        let moved = m.adopt(1, 2);
        assert_eq!(moved, vec![1, 4]);
        assert!(m.members(1).is_empty());
        assert_eq!(m.members(2), &[2, 5, 1, 4]);
        for g in 0..7 {
            let (s, l) = m.locate(g);
            assert_eq!(m.members(s)[l], g);
        }
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn more_shards_than_streams_rejected() {
        ShardMap::round_robin(2, 3);
    }
}
