//! # automon-fleet — hierarchical sharded coordinator fleet
//!
//! Scales AutoMon monitoring past a single coordinator by stacking the
//! protocol on itself (DESIGN.md §3.14). Streams are partitioned into
//! shards; each shard gets a full leaf [`Coordinator`] running the
//! unmodified geometric-monitoring protocol over its members with a
//! fraction of the error budget. Above the leaves, a *root*
//! coordinator monitors `f` of the global average by treating each
//! leaf's scaled partial mean as one node stream — a proxy
//! [`automon_core::Node`] per shard holds the root-assigned safe zone.
//! A shard-local violation is resolved by the leaf's own lazy/full
//! sync; the root hears about it only when the *resolved shard
//! aggregate* leaves the proxy's zone, which is what makes root-tier
//! message volume sublinear in the stream count.
//!
//! Module map:
//! - [`shard`] — stream→shard assignment ([`ShardMap`]): round-robin
//!   or cell-router (same quantization as the decomposition-cache
//!   key), plus crash-time adoption.
//! - [`compose`] — the canonical shard-major summation order under
//!   which weighted composition of partial means is *bitwise* equal to
//!   the flat global mean.
//! - [`fault`] — deterministic membership-fault schedules
//!   ([`FleetFaultPlan`]): crashes are data, not dice, so fleet runs
//!   replay byte-identically.
//! - [`fleet`] — the assembled two-tier engine ([`Fleet`]).
//!
//! [`Coordinator`]: automon_core::Coordinator

pub mod compose;
mod fault;
mod fleet;
mod shard;

pub use fault::{FleetFaultPlan, LeafCrash, NodeCrash};
pub use fleet::{Fleet, FleetConfig, FleetEvents, LEAF_CACHE_FN_ID, ROOT_CACHE_FN_ID};
pub use shard::ShardMap;
