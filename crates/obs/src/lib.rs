//! # automon-obs — deterministic observability
//!
//! Metrics and structured tracing for the AutoMon reproduction, built to
//! the same contract as the rest of the workspace: **offline, no external
//! dependencies, and bit-deterministic under a fixed seed**.
//!
//! Three pieces:
//!
//! * [`metrics`] — lock-cheap counters/gauges/fixed-bucket histograms in
//!   a sorted [`metrics::Registry`], rendered as Prometheus text
//!   exposition. Histogram sums are fixed-point so snapshots merge
//!   associatively/commutatively (parallel lanes ≡ sequential).
//! * [`trace`] — a JSONL event sink stamped by a [`trace::LogicalClock`]
//!   (protocol round + deterministic op counter, never wall time), so
//!   same-seed runs emit byte-identical traces.
//! * [`serve`] / [`expo`] — a minimal HTTP/1.0 scrape endpoint and the
//!   matching exposition parser for round-trip validation.
//!
//! The entry point is [`Telemetry`]: a cheaply clonable handle threaded
//! through coordinator, nodes, net, chaos fabric, and sim runners.
//! [`Telemetry::disabled()`] carries no allocation and every operation on
//! it is a single `Option` branch, preserving the instrumented hot paths'
//! performance when observability is off (the default everywhere).

pub mod expo;
pub mod metrics;
pub mod reader;
pub mod serve;
pub mod trace;

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

pub use expo::{parse_prometheus, value_of, Sample};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use reader::{parse_trace, span_path_at, JsonVal, TraceEvent};
pub use serve::MetricsServer;
pub use trace::{FieldValue, LogicalClock, SpanId, TraceCtx, Tracer, RESERVED_KEYS};

/// Shared state behind an enabled [`Telemetry`].
#[derive(Default)]
struct Inner {
    registry: Registry,
    tracer: Tracer,
    clock: LogicalClock,
}

/// The observability handle threaded through the protocol stack.
///
/// `Clone` is an `Option<Arc>` copy; pass it by value freely. A disabled
/// handle is `None` inside, so instrumentation costs one branch per call
/// site — cheap enough to leave compiled into hot paths.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A no-op handle. All registrations return inert metric handles, all
    /// events vanish, all sinks render empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle with a fresh registry, tracer, and logical clock.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter. See [`Registry::counter`].
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(i) => i.registry.counter(name, help),
        }
    }

    /// Register (or look up) a gauge. See [`Registry::gauge`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(i) => i.registry.gauge(name, help),
        }
    }

    /// Register (or look up) a histogram. See [`Registry::histogram`].
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(i) => i.registry.histogram(name, help, bounds),
        }
    }

    /// Set the logical clock's protocol round.
    #[inline]
    pub fn set_round(&self, round: u64) {
        if let Some(i) = &self.inner {
            i.clock.set_round(round);
        }
    }

    /// Current protocol round (0 when disabled).
    pub fn round(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.round())
    }

    /// Advance the deterministic op counter by `n` work units.
    #[inline]
    pub fn add_ops(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.clock.add_ops(n);
        }
    }

    /// Total deterministic ops (0 when disabled).
    pub fn ops(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.ops())
    }

    /// Record a trace event. **Call only from sequential control flow**
    /// (see the determinism contract in [`trace`]).
    #[inline]
    pub fn event(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        if let Some(i) = &self.inner {
            i.tracer.record(&i.clock, kind, fields);
        }
    }

    /// Open a causal span under `parent` (use [`SpanId::NONE`] for a
    /// root). Returns [`SpanId::NONE`] when disabled — one branch, no
    /// allocation. Sequential contexts only, like [`Telemetry::event`].
    #[inline]
    pub fn span_begin(
        &self,
        name: &str,
        parent: SpanId,
        fields: &[(&str, FieldValue)],
    ) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(i) => i.tracer.span_begin(&i.clock, name, parent, fields),
        }
    }

    /// Close a span opened with [`Telemetry::span_begin`]. A no-op when
    /// disabled or when `span` is [`SpanId::NONE`].
    #[inline]
    pub fn span_end(&self, span: SpanId, fields: &[(&str, FieldValue)]) {
        if let Some(i) = &self.inner {
            if span.is_some() {
                i.tracer.span_end(&i.clock, span, fields);
            }
        }
    }

    /// Open a root span with an RAII guard: emits `span_begin` now and
    /// `span_end` (with the deterministic op delta as `span_ops`) when
    /// the guard drops. Sequential contexts only, like
    /// [`Telemetry::event`].
    pub fn span(&self, name: &str) -> SpanGuard {
        let start_ops = self.ops();
        let id = self.span_begin(name, SpanId::NONE, &[]);
        SpanGuard {
            tel: self.clone(),
            id,
            start_ops,
        }
    }

    /// Number of recorded trace events (0 when disabled).
    pub fn trace_len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.tracer.len())
    }

    /// Render the metrics registry as Prometheus text exposition
    /// (empty when disabled).
    pub fn prometheus(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |i| i.registry.render_prometheus())
    }

    /// The trace as JSONL (empty when disabled).
    pub fn trace_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |i| i.tracer.to_jsonl())
    }

    /// Dump the Prometheus exposition to `path`.
    pub fn write_metrics(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.prometheus().as_bytes())
    }

    /// Dump the JSONL trace to `path`.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.trace_jsonl().as_bytes())
    }

    /// Move buffered trace events out to `w` (see [`Tracer::drain_to`]).
    /// Call between rounds to stream `--trace-out` with bounded memory;
    /// the concatenation of all drains plus a final [`Telemetry::trace_jsonl`]
    /// is byte-identical to an undrained trace. Returns bytes written
    /// (0 when disabled).
    pub fn drain_trace_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<usize> {
        match &self.inner {
            None => Ok(0),
            Some(i) => i.tracer.drain_to(w),
        }
    }
}

/// RAII guard closing a [`Telemetry::span`]. The `span_end` event carries
/// the span's deterministic op count, the logical-clock analogue of
/// duration.
pub struct SpanGuard {
    tel: Telemetry,
    id: SpanId,
    start_ops: u64,
}

impl SpanGuard {
    /// The guarded span's id ([`SpanId::NONE`] when telemetry is off).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id.is_some() {
            let delta = self.tel.ops() - self.start_ops;
            self.tel.span_end(self.id, &[("span_ops", delta.into())]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_cheap_to_clone() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("c", "c").inc();
        tel.set_round(9);
        tel.add_ops(100);
        tel.event("x", &[]);
        {
            let _span = tel.span("adcd");
        }
        assert_eq!(tel.round(), 0);
        assert_eq!(tel.ops(), 0);
        assert_eq!(tel.trace_len(), 0);
        assert_eq!(tel.prometheus(), "");
        assert_eq!(tel.trace_jsonl(), "");
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        tel.counter("automon_x_total", "x").inc();
        other.counter("automon_x_total", "x").add(4);
        assert_eq!(tel.counter("automon_x_total", "x").get(), 5);
        tel.set_round(3);
        assert_eq!(other.round(), 3);
    }

    #[test]
    fn span_emits_begin_and_end_with_op_delta() {
        let tel = Telemetry::enabled();
        tel.set_round(2);
        {
            let span = tel.span("decompose");
            assert_eq!(span.id(), SpanId(1));
            tel.add_ops(17);
        }
        let jsonl = tel.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span_begin\""), "{}", lines[0]);
        assert!(lines[0].contains("\"name\":\"decompose\""), "{}", lines[0]);
        assert!(lines[0].contains("\"parent\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"span_end\""), "{}", lines[1]);
        assert!(lines[1].contains("\"span\":1"), "{}", lines[1]);
        assert!(lines[1].contains("\"span_ops\":17"), "{}", lines[1]);
    }

    #[test]
    fn explicit_spans_propagate_parents_across_handles() {
        let tel = Telemetry::enabled();
        let node_side = tel.span_begin("violation", SpanId::NONE, &[("node", 2u64.into())]);
        // The id crosses the wire; the coordinator side resumes under it.
        let coord_side = tel.span_begin("handle", node_side, &[]);
        tel.span_end(coord_side, &[]);
        tel.span_end(node_side, &[]);
        let jsonl = tel.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[1].contains("\"name\":\"handle\""), "{}", lines[1]);
        assert!(lines[1].contains("\"parent\":1"), "{}", lines[1]);
        assert_eq!(tel.trace_len(), 4);
    }

    #[test]
    fn file_sinks_write_exact_bytes() {
        let tel = Telemetry::enabled();
        tel.counter("automon_y_total", "y").add(2);
        tel.event("done", &[("ok", true.into())]);
        let dir = std::env::temp_dir().join("automon-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = dir.join("metrics.prom");
        let t = dir.join("trace.jsonl");
        tel.write_metrics(&m).unwrap();
        tel.write_trace(&t).unwrap();
        assert_eq!(std::fs::read_to_string(&m).unwrap(), tel.prometheus());
        assert_eq!(std::fs::read_to_string(&t).unwrap(), tel.trace_jsonl());
        let _ = std::fs::remove_file(m);
        let _ = std::fs::remove_file(t);
    }
}
