//! Lock-cheap metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Handles are `Option<Arc<atomic>>` wrappers: a handle from a disabled
//! [`Telemetry`](crate::Telemetry) holds `None`, so every operation is a
//! single predictable branch — cheap enough to leave in the protocol hot
//! path. Enabled handles touch relaxed atomics only; the registry lock is
//! taken at registration and render time, never per update.
//!
//! Histogram sums are accumulated in **fixed-point** (micro-units, see
//! [`SUM_SCALE`]): integer addition is associative and commutative, so
//! observations split across worker threads — or across per-lane
//! histograms later [`HistogramSnapshot::merge`]d — produce byte-identical
//! snapshots regardless of interleaving. An `f64` sum would not.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Fixed-point scale for histogram sums: 1 unit = 1e-6 of the observed
/// value. Chosen to hold protocol-scale quantities (errors, byte counts,
/// operation counts) without overflow at realistic run lengths.
pub const SUM_SCALE: f64 = 1e6;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update.
    pub fn disabled() -> Self {
        Self(None)
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Self(Some(cell))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update.
    pub fn disabled() -> Self {
        Self(None)
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Self(Some(cell))
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared storage of one histogram. Buckets hold *non-cumulative* counts;
/// the Prometheus renderer accumulates them into `le` form.
#[derive(Debug)]
pub struct HistogramCore {
    /// Upper bucket bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Fixed-point sum of observations ([`SUM_SCALE`] units).
    sum_fp: AtomicI64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_fp: AtomicI64::new(0),
        }
    }
}

/// A fixed-bucket histogram.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores every update.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// An unregistered, live histogram — for per-lane accumulation that
    /// ends in [`HistogramSnapshot::merge`] rather than exposition.
    pub fn standalone(bounds: &[f64]) -> Self {
        Self(Some(Arc::new(HistogramCore::new(bounds))))
    }

    pub(crate) fn live(core: Arc<HistogramCore>) -> Self {
        Self(Some(core))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            let idx = h
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(h.bounds.len());
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum_fp
                .fetch_add((v * SUM_SCALE).round() as i64, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the histogram's state. Empty (no bounds,
    /// zero counts) when disabled.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::empty(&[]),
            Some(h) => HistogramSnapshot {
                bounds: h.bounds.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count.load(Ordering::Relaxed),
                sum_fp: h.sum_fp.load(Ordering::Relaxed),
            },
        }
    }
}

/// An owned, mergeable copy of a histogram's state.
///
/// `merge` is integer addition per field, so it is associative and
/// commutative — the algebraic property the determinism proptests pin
/// down. Two snapshots compare with `==` field-for-field (bucket bounds
/// come from configuration, never computation, so `f64` equality on them
/// is sound).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (excluding the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Fixed-point sum ([`SUM_SCALE`] units).
    pub sum_fp: i64,
}

impl HistogramSnapshot {
    /// A zeroed snapshot over `bounds`.
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum_fp: 0,
        }
    }

    /// Combine two snapshots of histograms with identical bounds.
    ///
    /// # Panics
    /// Panics when the bucket layouts disagree.
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.bounds, other.bounds, "merge: bucket layout mismatch");
        Self {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum_fp: self.sum_fp + other.sum_fp,
        }
    }

    /// The sum of observations, back in value units.
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / SUM_SCALE
    }
}

/// One registered metric.
enum Metric {
    Counter {
        help: String,
        cell: Arc<AtomicU64>,
    },
    Gauge {
        help: String,
        cell: Arc<AtomicU64>,
    },
    Histogram {
        help: String,
        core: Arc<HistogramCore>,
    },
}

/// A named collection of metrics, rendered in deterministic (sorted)
/// order. Registration is idempotent: asking for an existing name returns
/// a handle to the same cell, which is how every node shares one
/// `automon_node_checks_total`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter. Counter and gauge names may carry
    /// a Prometheus label set (`name{k="v"}`); the exposition's `# HELP`/
    /// `# TYPE` lines use the base name.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut m = self.inner.lock();
        let entry = m.entry(name.to_string()).or_insert_with(|| Metric::Counter {
            help: help.to_string(),
            cell: Arc::new(AtomicU64::new(0)),
        });
        match entry {
            Metric::Counter { cell, .. } => Counter::live(cell.clone()),
            _ => panic!("metric `{name}` already registered as a non-counter"),
        }
    }

    /// Register (or look up) a gauge.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut m = self.inner.lock();
        let entry = m.entry(name.to_string()).or_insert_with(|| Metric::Gauge {
            help: help.to_string(),
            cell: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        });
        match entry {
            Metric::Gauge { cell, .. } => Gauge::live(cell.clone()),
            _ => panic!("metric `{name}` already registered as a non-gauge"),
        }
    }

    /// Register (or look up) a histogram. Histogram names must be
    /// label-free (labels would collide with the generated `le`).
    ///
    /// # Panics
    /// Panics on a kind mismatch or a labelled name.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        assert!(
            !name.contains('{'),
            "histogram `{name}`: labels are not supported on histograms"
        );
        let mut m = self.inner.lock();
        let entry = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram {
                help: help.to_string(),
                core: Arc::new(HistogramCore::new(bounds)),
            });
        match entry {
            Metric::Histogram { core, .. } => Histogram::live(core.clone()),
            _ => panic!("metric `{name}` already registered as a non-histogram"),
        }
    }

    /// Render every metric in Prometheus text-exposition format
    /// (version 0.0.4), sorted by name.
    pub fn render_prometheus(&self) -> String {
        let m = self.inner.lock();
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, metric) in m.iter() {
            let base = name.split('{').next().expect("split yields one part");
            let (help, kind) = match metric {
                Metric::Counter { help, .. } => (help, "counter"),
                Metric::Gauge { help, .. } => (help, "gauge"),
                Metric::Histogram { help, .. } => (help, "histogram"),
            };
            if last_base.as_deref() != Some(base) {
                out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} {kind}\n"));
                last_base = Some(base.to_string());
            }
            match metric {
                Metric::Counter { cell, .. } => {
                    out.push_str(&format!("{name} {}\n", cell.load(Ordering::Relaxed)));
                }
                Metric::Gauge { cell, .. } => {
                    let v = f64::from_bits(cell.load(Ordering::Relaxed));
                    out.push_str(&format!("{name} {}\n", format_value(v)));
                }
                Metric::Histogram { core, .. } => {
                    let snap = Histogram::live(core.clone()).snapshot();
                    let mut cumulative = 0u64;
                    for (i, b) in snap.bounds.iter().enumerate() {
                        cumulative += snap.buckets[i];
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            format_value(*b)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
                    out.push_str(&format!("{name}_sum {}\n", format_value(snap.sum())));
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                }
            }
        }
        out
    }
}

/// Prometheus sample-value formatting: shortest-roundtrip decimal, with
/// the exposition spellings for the non-finite values.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::disabled();
        h.observe(1.0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn registry_shares_cells_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.gauge("x", "x");
        let _ = r.counter("x", "x");
    }

    #[test]
    fn histogram_buckets_and_fixed_point_sum() {
        let h = Histogram::standalone(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum() - 56.05).abs() < 1e-9, "{}", s.sum());
    }

    #[test]
    fn snapshot_merge_adds_fields() {
        let a = Histogram::standalone(&[1.0]);
        let b = Histogram::standalone(&[1.0]);
        a.observe(0.5);
        b.observe(2.0);
        b.observe(0.25);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.buckets, vec![2, 1]);
        assert!((merged.sum() - 2.75).abs() < 1e-9);
    }

    #[test]
    fn render_is_sorted_and_groups_labelled_families() {
        let r = Registry::new();
        r.counter("zz_total", "last").inc();
        r.counter("automon_faults_total{kind=\"drop\"}", "faults").add(2);
        r.counter("automon_faults_total{kind=\"delay\"}", "faults").add(1);
        r.gauge("automon_round", "round").set(7.0);
        let text = r.render_prometheus();
        let type_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE automon_faults_total counter",
                "# TYPE automon_round gauge",
                "# TYPE zz_total counter",
            ]
        );
        assert!(text.contains("automon_faults_total{kind=\"drop\"} 2\n"));
        assert!(text.contains("automon_round 7\n"));
    }
}
