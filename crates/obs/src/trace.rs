//! Span-based structured tracing on a logical clock.
//!
//! Wall-clock time is banned from the trace: events are stamped with the
//! protocol round and a deterministic operation counter, both advanced
//! only by instrumented code. Same seed ⇒ same control flow ⇒ the same
//! stamps in the same order ⇒ a byte-identical JSONL file.
//!
//! The determinism contract has one rule for writers: **trace events may
//! only be emitted from sequential control flow** (the coordinator's
//! handler path, full-sync/ADCD, the chaos fabric, the sim round loop).
//! Parallel contexts — node batch handlers, net reader threads — must
//! stick to commutative counters. The sequence number below is an atomic
//! only so the `Tracer` is `Sync`; correctness of the byte-identical
//! guarantee rests on that single-writer discipline.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

thread_local! {
    /// Reusable per-thread formatting buffer. `record` renders each event
    /// here before appending it to the shared trace, so steady-state
    /// tracing allocates nothing per event — both this scratch and the
    /// shared buffer grow geometrically and are then reused.
    static SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Round + deterministic-op clock. `ops` counts algorithmic work units
/// (Hessian replays, probe evaluations) declared by instrumented code, so
/// it advances identically on identical inputs — a portable stand-in for
/// "elapsed time" that survives re-runs and machine changes.
#[derive(Debug, Default)]
pub struct LogicalClock {
    round: AtomicU64,
    ops: AtomicU64,
}

impl LogicalClock {
    /// Set the current protocol round.
    pub fn set_round(&self, r: u64) {
        self.round.store(r, Ordering::Relaxed);
    }

    /// The current protocol round.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Advance the deterministic op counter by `n` work units.
    pub fn add_ops(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Total deterministic ops so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

/// A typed field value for a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Append-only JSONL event sink.
///
/// Events accumulate in one shared newline-delimited buffer; rendering
/// happens in a thread-local scratch [`String`] so the steady state does
/// no per-event heap allocation.
#[derive(Debug, Default)]
pub struct Tracer {
    seq: AtomicU64,
    buf: Mutex<TraceBuf>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    jsonl: String,
    events: usize,
}

impl Tracer {
    /// Record one event. Each line is a flat JSON object:
    /// `{"seq":N,"round":R,"ops":O,"kind":"...", <fields>...}`.
    pub fn record(&self, clock: &LogicalClock, kind: &str, fields: &[(&str, FieldValue)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        SCRATCH.with(|cell| {
            let mut line = cell.borrow_mut();
            line.clear();
            let _ = write!(
                line,
                "{{\"seq\":{seq},\"round\":{},\"ops\":{},\"kind\":\"{}\"",
                clock.round(),
                clock.ops(),
                Escaped(kind)
            );
            for (k, v) in fields {
                let _ = write!(line, ",\"{}\":", Escaped(k));
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    FieldValue::F64(x) => {
                        if x.is_finite() {
                            // Rust's shortest-roundtrip `{}` for f64 is
                            // deterministic and valid JSON for finite values.
                            let _ = write!(line, "{x}");
                        } else {
                            let _ = write!(line, "null");
                        }
                    }
                    FieldValue::Str(s) => {
                        let _ = write!(line, "\"{}\"", Escaped(s));
                    }
                    FieldValue::Bool(b) => {
                        let _ = write!(line, "{b}");
                    }
                }
            }
            line.push('}');
            line.push('\n');
            let mut buf = self.buf.lock();
            buf.jsonl.push_str(&line);
            buf.events += 1;
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buf.lock().events
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full trace as JSONL (one event per line, trailing newline when
    /// non-empty).
    pub fn to_jsonl(&self) -> String {
        self.buf.lock().jsonl.clone()
    }
}

/// JSON string escaping for the minimal set a flat event line needs.
struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_char(c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_clock_and_fields() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        clock.set_round(3);
        clock.add_ops(10);
        t.record(
            &clock,
            "full_sync",
            &[("epoch", 2u64.into()), ("r", 0.5f64.into())],
        );
        t.record(&clock, "fault", &[("kind", "drop".into())]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"round\":3,\"ops\":10,\"kind\":\"full_sync\",\"epoch\":2,\"r\":0.5}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"round\":3,\"ops\":10,\"kind\":\"fault\",\"kind\":\"drop\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        t.record(&clock, "x", &[("msg", "a\"b\\c\nd".into())]);
        assert!(t.to_jsonl().contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        t.record(&clock, "x", &[("v", f64::NAN.into())]);
        assert!(t.to_jsonl().contains("\"v\":null"));
    }
}
