//! Span-based structured tracing on a logical clock.
//!
//! Wall-clock time is banned from the trace: events are stamped with the
//! protocol round and a deterministic operation counter, both advanced
//! only by instrumented code. Same seed ⇒ same control flow ⇒ the same
//! stamps in the same order ⇒ a byte-identical JSONL file.
//!
//! The determinism contract has one rule for writers: **trace events may
//! only be emitted from sequential control flow** (the coordinator's
//! handler path, full-sync/ADCD, the chaos fabric, the sim round loop).
//! Parallel contexts — node batch handlers, net reader threads — must
//! stick to commutative counters. The sequence number below is an atomic
//! only so the `Tracer` is `Sync`; correctness of the byte-identical
//! guarantee rests on that single-writer discipline.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Envelope keys every event line starts with; user fields must not
/// reuse them or the line would carry duplicate JSON keys and readers
/// would silently drop one of the two values.
pub const RESERVED_KEYS: [&str; 4] = ["seq", "round", "ops", "kind"];

/// Identifier of one causal span. Allocated deterministically by
/// [`Tracer::span_begin`] in emission order, so the same seed assigns
/// the same ids. `SpanId::NONE` (0) means "no enclosing span" — it is
/// what rides in a frame header when telemetry is disabled, and what a
/// root span records as its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots; disabled-telemetry context).
    pub const NONE: SpanId = SpanId(0);

    /// True when this is a real span, not [`SpanId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Wire-propagated trace context: the open span on the sending side plus
/// the sender's epoch. The span id rides in every frame header
/// (`automon_net::wire`); the epoch is recovered from the message body on
/// decode. Carrying the context across the transport makes a node-side
/// violation span the causal parent of the coordinator's handler span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The open span on the sending side; `SpanId::NONE` when telemetry
    /// is disabled or no span is open.
    pub span: SpanId,
    /// The sender's protocol epoch at emission time.
    pub epoch: u64,
}

impl TraceCtx {
    /// The empty context (no span, epoch 0).
    pub const NONE: TraceCtx = TraceCtx {
        span: SpanId::NONE,
        epoch: 0,
    };

    /// Context for `span` at `epoch`.
    pub fn new(span: SpanId, epoch: u64) -> Self {
        Self { span, epoch }
    }
}

thread_local! {
    /// Reusable per-thread formatting buffer. `record` renders each event
    /// here before appending it to the shared trace, so steady-state
    /// tracing allocates nothing per event — both this scratch and the
    /// shared buffer grow geometrically and are then reused.
    static SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Round + deterministic-op clock. `ops` counts algorithmic work units
/// (Hessian replays, probe evaluations) declared by instrumented code, so
/// it advances identically on identical inputs — a portable stand-in for
/// "elapsed time" that survives re-runs and machine changes.
#[derive(Debug, Default)]
pub struct LogicalClock {
    round: AtomicU64,
    ops: AtomicU64,
}

impl LogicalClock {
    /// Set the current protocol round.
    pub fn set_round(&self, r: u64) {
        self.round.store(r, Ordering::Relaxed);
    }

    /// The current protocol round.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Advance the deterministic op counter by `n` work units.
    pub fn add_ops(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Total deterministic ops so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

/// A typed field value for a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Append-only JSONL event sink.
///
/// Events accumulate in one shared newline-delimited buffer; rendering
/// happens in a thread-local scratch [`String`] so the steady state does
/// no per-event heap allocation.
#[derive(Debug, Default)]
pub struct Tracer {
    seq: AtomicU64,
    next_span: AtomicU64,
    buf: Mutex<TraceBuf>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    jsonl: String,
}

impl Tracer {
    /// Record one event. Each line is a flat JSON object:
    /// `{"seq":N,"round":R,"ops":O,"kind":"...", <fields>...}`.
    ///
    /// Field names must avoid the [`RESERVED_KEYS`] envelope keys —
    /// reusing one would emit a duplicate JSON key (debug builds assert).
    pub fn record(&self, clock: &LogicalClock, kind: &str, fields: &[(&str, FieldValue)]) {
        debug_assert!(
            fields.iter().all(|(k, _)| !RESERVED_KEYS.contains(k)),
            "trace field collides with an envelope key ({RESERVED_KEYS:?}): {:?}",
            fields.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        );
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        SCRATCH.with(|cell| {
            let mut line = cell.borrow_mut();
            line.clear();
            let _ = write!(
                line,
                "{{\"seq\":{seq},\"round\":{},\"ops\":{},\"kind\":\"{}\"",
                clock.round(),
                clock.ops(),
                Escaped(kind)
            );
            for (k, v) in fields {
                let _ = write!(line, ",\"{}\":", Escaped(k));
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(line, "{n}");
                    }
                    FieldValue::F64(x) => {
                        if x.is_finite() {
                            // Rust's shortest-roundtrip `{}` for f64 is
                            // deterministic and valid JSON for finite values.
                            let _ = write!(line, "{x}");
                        } else {
                            let _ = write!(line, "null");
                        }
                    }
                    FieldValue::Str(s) => {
                        let _ = write!(line, "\"{}\"", Escaped(s));
                    }
                    FieldValue::Bool(b) => {
                        let _ = write!(line, "{b}");
                    }
                }
            }
            line.push('}');
            line.push('\n');
            let mut buf = self.buf.lock();
            buf.jsonl.push_str(&line);
        });
    }

    /// Open a causal span and return its id. Emits a `span_begin` event
    /// carrying the span id, its parent (0 for roots), and the span
    /// `name`, plus any extra `fields`. Ids are allocated in emission
    /// order starting from 1, so they are as deterministic as the event
    /// stream itself.
    pub fn span_begin(
        &self,
        clock: &LogicalClock,
        name: &str,
        parent: SpanId,
        fields: &[(&str, FieldValue)],
    ) -> SpanId {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1);
        let mut all: Vec<(&str, FieldValue)> = Vec::with_capacity(fields.len() + 3);
        all.push(("span", id.0.into()));
        all.push(("parent", parent.0.into()));
        all.push(("name", name.into()));
        all.extend_from_slice(fields);
        self.record(clock, "span_begin", &all);
        id
    }

    /// Close a span opened by [`Tracer::span_begin`]. Emits a `span_end`
    /// event for `span` with any extra `fields` (callers typically attach
    /// the deterministic-op delta as `span_ops`).
    pub fn span_end(&self, clock: &LogicalClock, span: SpanId, fields: &[(&str, FieldValue)]) {
        let mut all: Vec<(&str, FieldValue)> = Vec::with_capacity(fields.len() + 1);
        all.push(("span", span.0.into()));
        all.extend_from_slice(fields);
        self.record(clock, "span_end", &all);
    }

    /// Number of events recorded since creation (drained or not).
    pub fn len(&self) -> usize {
        self.seq.load(Ordering::Relaxed) as usize
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The currently buffered trace as JSONL (one event per line,
    /// trailing newline when non-empty). Events already moved out by
    /// [`Tracer::drain_to`] are not re-returned.
    pub fn to_jsonl(&self) -> String {
        self.buf.lock().jsonl.clone()
    }

    /// Move the buffered events out to `w`, leaving the buffer empty.
    /// Repeated drains interleaved with records reproduce exactly the
    /// bytes a single final [`Tracer::to_jsonl`] would have returned, so
    /// long runs can stream the trace with bounded memory. Returns the
    /// number of bytes written.
    pub fn drain_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<usize> {
        let chunk = {
            let mut buf = self.buf.lock();
            if buf.jsonl.is_empty() {
                return Ok(0);
            }
            std::mem::take(&mut buf.jsonl)
        };
        w.write_all(chunk.as_bytes())?;
        Ok(chunk.len())
    }
}

/// JSON string escaping for the minimal set a flat event line needs.
struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_char(c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_clock_and_fields() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        clock.set_round(3);
        clock.add_ops(10);
        t.record(
            &clock,
            "full_sync",
            &[("epoch", 2u64.into()), ("r", 0.5f64.into())],
        );
        t.record(&clock, "fault", &[("fault", "drop".into())]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"round\":3,\"ops\":10,\"kind\":\"full_sync\",\"epoch\":2,\"r\":0.5}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"round\":3,\"ops\":10,\"kind\":\"fault\",\"fault\":\"drop\"}"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "envelope key")]
    fn reserved_envelope_keys_are_rejected() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        t.record(&clock, "fault", &[("kind", "drop".into())]);
    }

    #[test]
    fn spans_allocate_deterministic_ids_and_nest() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        clock.set_round(2);
        let root = t.span_begin(&clock, "violation", SpanId::NONE, &[("node", 1u64.into())]);
        let child = t.span_begin(&clock, "handle", root, &[]);
        t.span_end(&clock, child, &[("span_ops", 4u64.into())]);
        t.span_end(&clock, root, &[]);
        assert_eq!(root, SpanId(1));
        assert_eq!(child, SpanId(2));
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"round\":2,\"ops\":0,\"kind\":\"span_begin\",\"span\":1,\"parent\":0,\"name\":\"violation\",\"node\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"round\":2,\"ops\":0,\"kind\":\"span_begin\",\"span\":2,\"parent\":1,\"name\":\"handle\"}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"round\":2,\"ops\":0,\"kind\":\"span_end\",\"span\":2,\"span_ops\":4}"
        );
        assert_eq!(
            lines[3],
            "{\"seq\":3,\"round\":2,\"ops\":0,\"kind\":\"span_end\",\"span\":1}"
        );
    }

    #[test]
    fn drain_to_streams_the_same_bytes_as_to_jsonl() {
        let clock = LogicalClock::default();
        let reference = Tracer::default();
        let streamed = Tracer::default();
        let mut out: Vec<u8> = Vec::new();
        for i in 0..5u64 {
            reference.record(&clock, "tick", &[("i", i.into())]);
            streamed.record(&clock, "tick", &[("i", i.into())]);
            if i % 2 == 0 {
                streamed.drain_to(&mut out).unwrap();
            }
        }
        assert_eq!(streamed.len(), 5, "len counts drained events too");
        streamed.drain_to(&mut out).unwrap();
        assert_eq!(streamed.drain_to(&mut out).unwrap(), 0, "empty drain");
        assert!(streamed.to_jsonl().is_empty());
        assert_eq!(String::from_utf8(out).unwrap(), reference.to_jsonl());
    }

    #[test]
    fn strings_are_escaped() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        t.record(&clock, "x", &[("msg", "a\"b\\c\nd".into())]);
        assert!(t.to_jsonl().contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        t.record(&clock, "x", &[("v", f64::NAN.into())]);
        assert!(t.to_jsonl().contains("\"v\":null"));
    }
}
