//! Prometheus text-exposition parsing (version 0.0.4).
//!
//! The renderer lives in [`crate::metrics::Registry::render_prometheus`];
//! this module is the other half of the round-trip: a small parser used
//! by tests (and available to tools) to validate that whatever we serve
//! on `--serve-metrics` is well-formed exposition text.

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name, without the label set.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` map to the matching `f64`).
    pub value: f64,
}

/// Parse Prometheus text exposition into its sample lines.
///
/// Comment (`#`) and blank lines are skipped after validating that
/// comments are well-formed `# HELP`/`# TYPE` lines. Returns an error
/// describing the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment form: {raw}", lineno + 1));
            }
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// Find the value of `name` with exactly the given labels.
pub fn value_of(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (wk, wv))| k == wk && v == wv)
        })
        .map(|s| s.value)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(_) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (line[..close + 1].to_string(), line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or_default().to_string();
            let rest = it.next().ok_or_else(|| "missing value".to_string())?;
            (name, rest.trim())
        }
    };

    let (name, labels) = match name_part.find('{') {
        None => (name_part, Vec::new()),
        Some(brace) => {
            let name = name_part[..brace].to_string();
            let body = &name_part[brace + 1..name_part.len() - 1];
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name `{name}`"));
    }

    let value = parse_value(value_part)?;
    Ok(Sample { name, labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(' ') | Some(',')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}`: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("label `{key}`: unterminated value")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("label `{key}`: bad escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
    }
    Ok(labels)
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn parses_plain_and_labelled_samples() {
        let text = "# HELP x help\n# TYPE x counter\nx 3\ny{a=\"b\",c=\"d e\"} 1.5\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(value_of(&samples, "x", &[]), Some(3.0));
        assert_eq!(value_of(&samples, "y", &[("a", "b"), ("c", "d e")]), Some(1.5));
    }

    #[test]
    fn parses_nonfinite_and_escapes() {
        let samples =
            parse_prometheus("h_bucket{le=\"+Inf\"} 4\nz{s=\"q\\\"\\\\\"} -Inf\n").unwrap();
        assert_eq!(value_of(&samples, "h_bucket", &[("le", "+Inf")]), Some(4.0));
        assert_eq!(
            value_of(&samples, "z", &[("s", "q\"\\")]),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_prometheus("x\n").is_err());
        assert!(parse_prometheus("x{a=b} 1\n").is_err());
        assert!(parse_prometheus("# NOTE whatever\n").is_err());
        assert!(parse_prometheus("x{a=\"b\"} zero\n").is_err());
    }

    #[test]
    fn registry_render_round_trips() {
        let r = Registry::new();
        r.counter("automon_messages_total", "messages").add(42);
        r.counter("automon_faults_total{kind=\"drop\"}", "faults").add(3);
        r.gauge("automon_error", "estimate error").set(0.125);
        let h = r.histogram("automon_sync_bytes", "bytes per sync", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5000.0);

        let text = r.render_prometheus();
        let samples = parse_prometheus(&text).expect("rendered exposition must parse");

        assert_eq!(value_of(&samples, "automon_messages_total", &[]), Some(42.0));
        assert_eq!(
            value_of(&samples, "automon_faults_total", &[("kind", "drop")]),
            Some(3.0)
        );
        assert_eq!(value_of(&samples, "automon_error", &[]), Some(0.125));
        // Histogram buckets must be cumulative and end at +Inf == count.
        assert_eq!(
            value_of(&samples, "automon_sync_bytes_bucket", &[("le", "10")]),
            Some(1.0)
        );
        assert_eq!(
            value_of(&samples, "automon_sync_bytes_bucket", &[("le", "100")]),
            Some(2.0)
        );
        assert_eq!(
            value_of(&samples, "automon_sync_bytes_bucket", &[("le", "+Inf")]),
            Some(3.0)
        );
        assert_eq!(value_of(&samples, "automon_sync_bytes_count", &[]), Some(3.0));
        assert_eq!(value_of(&samples, "automon_sync_bytes_sum", &[]), Some(5055.0));
    }
}
