//! Minimal HTTP/1.0 metrics responder.
//!
//! Serves the current Prometheus exposition on every request, whatever
//! the path — a scrape endpoint, not a web server. Built directly on
//! `std::net` so `crates/obs` stays dependency-free (`crates/net` already
//! depends on `core`, which depends on us).
//!
//! The accept loop polls a nonblocking listener and checks a shutdown
//! flag between polls, so dropping the [`MetricsServer`] stops the
//! background thread promptly without a wakeup connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::Telemetry;

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// A background thread serving `telemetry.prometheus()` over HTTP/1.0.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving.
    pub fn bind(addr: &str, telemetry: Telemetry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = thread::Builder::new()
            .name("obs-metrics-http".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are rare and tiny, a
                            // thread per connection would be pure noise.
                            let _ = respond(stream, &telemetry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and wait for the thread to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn respond(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    // Drain the request line + headers; we answer every request the same
    // way, so parsing beyond "the client sent something" is unnecessary.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = telemetry.prometheus();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::{parse_prometheus, value_of};

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn serves_valid_exposition_and_shuts_down() {
        let tel = Telemetry::enabled();
        tel.counter("automon_messages_total", "messages").add(7);
        let server = MetricsServer::bind("127.0.0.1:0", tel.clone()).expect("bind");
        let addr = server.local_addr();

        let response = scrape(addr);
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains(CONTENT_TYPE), "{head}");
        let samples = parse_prometheus(body).expect("body must be valid exposition");
        assert_eq!(value_of(&samples, "automon_messages_total", &[]), Some(7.0));

        // A second scrape sees updated values.
        tel.counter("automon_messages_total", "messages").add(3);
        let response = scrape(addr);
        let body = response.split_once("\r\n\r\n").expect("split").1;
        let samples = parse_prometheus(body).expect("parse");
        assert_eq!(value_of(&samples, "automon_messages_total", &[]), Some(10.0));

        // Shutdown must join the server thread without hanging.
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_still_gets_an_exposition() {
        let tel = Telemetry::enabled();
        tel.counter("automon_x_total", "x").add(1);
        let server = MetricsServer::bind("127.0.0.1:0", tel).expect("bind");
        let addr = server.local_addr();

        // Not HTTP at all: the responder answers every connection the
        // same way rather than wedging on parse errors.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"\x00\xffnot http\r\n").expect("garbage");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        let (head, body) = out.split_once("\r\n\r\n").expect("split");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        let samples = parse_prometheus(body).expect("valid exposition");
        assert_eq!(value_of(&samples, "automon_x_total", &[]), Some(1.0));

        // The server remains healthy for a well-formed scrape after.
        let response = scrape(addr);
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let tel = Telemetry::enabled();
        tel.counter("automon_y_total", "y").add(5);
        let server = MetricsServer::bind("127.0.0.1:0", tel).expect("bind");
        let addr = server.local_addr();

        let workers: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || scrape(addr)))
            .collect();
        for w in workers {
            let response = w.join().expect("scraper thread");
            let body = response.split_once("\r\n\r\n").expect("split").1;
            let samples = parse_prometheus(body).expect("valid exposition");
            assert_eq!(value_of(&samples, "automon_y_total", &[]), Some(5.0));
        }
    }

    #[test]
    fn connection_drop_mid_response_does_not_kill_the_server() {
        let tel = Telemetry::enabled();
        // A fat body so the write can outlive an early hangup.
        for i in 0..256 {
            tel.counter(&format!("automon_bulk_{i}_total"), "bulk").add(i);
        }
        let server = MetricsServer::bind("127.0.0.1:0", tel).expect("bind");
        let addr = server.local_addr();

        // Connect, send nothing, and hang up immediately — the respond
        // path hits either a read timeout or a broken-pipe write.
        for _ in 0..3 {
            let stream = TcpStream::connect(addr).expect("connect");
            drop(stream);
        }
        // And one that dies right after the request line.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
        drop(stream);

        // The accept loop must still be alive and serving.
        let response = scrape(addr);
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        server.shutdown();
    }
}
