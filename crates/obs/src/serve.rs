//! Minimal HTTP/1.0 metrics responder.
//!
//! Serves the current Prometheus exposition on every request, whatever
//! the path — a scrape endpoint, not a web server. Built directly on
//! `std::net` so `crates/obs` stays dependency-free (`crates/net` already
//! depends on `core`, which depends on us).
//!
//! The accept loop polls a nonblocking listener and checks a shutdown
//! flag between polls, so dropping the [`MetricsServer`] stops the
//! background thread promptly without a wakeup connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::Telemetry;

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// A background thread serving `telemetry.prometheus()` over HTTP/1.0.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving.
    pub fn bind(addr: &str, telemetry: Telemetry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = thread::Builder::new()
            .name("obs-metrics-http".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are rare and tiny, a
                            // thread per connection would be pure noise.
                            let _ = respond(stream, &telemetry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and wait for the thread to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn respond(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    // Drain the request line + headers; we answer every request the same
    // way, so parsing beyond "the client sent something" is unnecessary.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = telemetry.prometheus();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::{parse_prometheus, value_of};

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn serves_valid_exposition_and_shuts_down() {
        let tel = Telemetry::enabled();
        tel.counter("automon_messages_total", "messages").add(7);
        let server = MetricsServer::bind("127.0.0.1:0", tel.clone()).expect("bind");
        let addr = server.local_addr();

        let response = scrape(addr);
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains(CONTENT_TYPE), "{head}");
        let samples = parse_prometheus(body).expect("body must be valid exposition");
        assert_eq!(value_of(&samples, "automon_messages_total", &[]), Some(7.0));

        // A second scrape sees updated values.
        tel.counter("automon_messages_total", "messages").add(3);
        let response = scrape(addr);
        let body = response.split_once("\r\n\r\n").expect("split").1;
        let samples = parse_prometheus(body).expect("parse");
        assert_eq!(value_of(&samples, "automon_messages_total", &[]), Some(10.0));

        // Shutdown must join the server thread without hanging.
        server.shutdown();
    }
}
