//! Reader for the JSONL traces the [`crate::trace::Tracer`] emits.
//!
//! The tracer writes flat JSON objects — no nesting, no arrays — so this
//! module carries its own small tokenizer instead of a JSON dependency.
//! It parses each line into a [`TraceEvent`] (envelope plus typed
//! fields), and reconstructs causal structure from `span_begin` /
//! `span_end` events: [`span_path_at`] names the open-span stack
//! enclosing any sequence number, which is what the `automon trace diff`
//! determinism debugger reports at the first divergence.

use std::fmt;

/// A decoded field value from one trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl JsonVal {
    /// The value as a u64 when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::U64(n) => Some(*n),
            JsonVal::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an f64 when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::U64(n) => Some(*n as f64),
            JsonVal::I64(n) => Some(*n as f64),
            JsonVal::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed trace line: the envelope stamps plus the remaining fields
/// in emission order, with the raw line kept for faithful reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub seq: u64,
    pub round: u64,
    pub ops: u64,
    pub kind: String,
    pub fields: Vec<(String, JsonVal)>,
    pub raw: String,
}

impl TraceEvent {
    /// Look up a non-envelope field by name.
    pub fn field(&self, key: &str) -> Option<&JsonVal> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as u64 (`None` when absent or non-integer).
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(JsonVal::as_u64)
    }

    /// Field as string slice.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(JsonVal::as_str)
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a whole JSONL trace. Empty lines are rejected — the tracer
/// never emits them, so one signals a corrupt file.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            parse_line(line).map_err(|reason| TraceParseError {
                line: i + 1,
                reason,
            })
        })
        .collect()
}

/// Parse one event line.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser {
        rest: line.as_bytes(),
    };
    p.expect(b'{')?;
    let mut seq = None;
    let mut round = None;
    let mut ops = None;
    let mut kind = None;
    let mut fields = Vec::new();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        let val = p.value()?;
        match key.as_str() {
            "seq" => seq = val.as_u64(),
            "round" => round = val.as_u64(),
            "ops" => ops = val.as_u64(),
            "kind" => kind = val.as_str().map(str::to_string),
            _ => fields.push((key, val)),
        }
        match p.bump()? {
            b',' => continue,
            b'}' => break,
            c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
        }
    }
    if !p.rest.is_empty() {
        return Err("trailing bytes after object".into());
    }
    Ok(TraceEvent {
        seq: seq.ok_or("missing seq")?,
        round: round.ok_or("missing round")?,
        ops: ops.ok_or("missing ops")?,
        kind: kind.ok_or("missing kind")?,
        fields,
        raw: line.to_string(),
    })
}

/// Names of the spans open at (i.e. enclosing) event `seq`, outermost
/// first — the "span path" `automon trace diff` prints. Rebuilt by
/// replaying `span_begin`/`span_end` up to but not including `seq`; an
/// event past the end of the trace sees whatever is still open.
pub fn span_path_at(events: &[TraceEvent], seq: u64) -> Vec<String> {
    let mut stack: Vec<(u64, String)> = Vec::new();
    for ev in events {
        if ev.seq >= seq {
            break;
        }
        match ev.kind.as_str() {
            "span_begin" => {
                let id = ev.u64("span").unwrap_or(0);
                let name = ev.str("name").unwrap_or("?").to_string();
                stack.push((id, name));
            }
            "span_end" => {
                if let Some(id) = ev.u64("span") {
                    if let Some(pos) = stack.iter().rposition(|(open, _)| *open == id) {
                        stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    stack.into_iter().map(|(_, name)| name).collect()
}

/// Byte-level tokenizer over one line. The tracer's output grammar is a
/// strict subset of JSON: object of string keys and scalar values, no
/// whitespace, no nesting.
struct Parser<'a> {
    rest: &'a [u8],
}

impl Parser<'_> {
    fn bump(&mut self) -> Result<u8, String> {
        let (&c, rest) = self.rest.split_first().ok_or("unexpected end of line")?;
        self.rest = rest;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!("expected `{}`, got `{}`", want as char, got as char));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()? as char;
                            code = code * 16
                                + d.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    e => return Err(format!("bad escape `\\{}`", e as char)),
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a UTF-8 multibyte sequence.
                    let extra = match c {
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        _ => 3,
                    };
                    let mut bytes = vec![c];
                    for _ in 0..extra {
                        bytes.push(self.bump()?);
                    }
                    out.push_str(
                        std::str::from_utf8(&bytes).map_err(|_| "bad utf-8")?,
                    );
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.rest.first().copied().ok_or("unexpected end of line")? {
            b'"' => Ok(JsonVal::Str(self.string()?)),
            b't' => self.literal(b"true", JsonVal::Bool(true)),
            b'f' => self.literal(b"false", JsonVal::Bool(false)),
            b'n' => self.literal(b"null", JsonVal::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &[u8], val: JsonVal) -> Result<JsonVal, String> {
        if self.rest.starts_with(lit) {
            self.rest = &self.rest[lit.len()..];
            Ok(val)
        } else {
            Err(format!(
                "bad literal near `{}`",
                String::from_utf8_lossy(&self.rest[..self.rest.len().min(8)])
            ))
        }
    }

    fn number(&mut self) -> Result<JsonVal, String> {
        let end = self
            .rest
            .iter()
            .position(|&c| !matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            .unwrap_or(self.rest.len());
        let text = std::str::from_utf8(&self.rest[..end]).map_err(|_| "bad number")?;
        if text.is_empty() {
            return Err("expected a value".into());
        }
        self.rest = &self.rest[end..];
        if text.bytes().all(|c| c.is_ascii_digit()) {
            return text
                .parse()
                .map(JsonVal::U64)
                .map_err(|_| format!("bad integer `{text}`"));
        }
        if text.bytes().all(|c| c.is_ascii_digit() || c == b'-') {
            return text
                .parse()
                .map(JsonVal::I64)
                .map_err(|_| format!("bad integer `{text}`"));
        }
        text.parse()
            .map(JsonVal::F64)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LogicalClock, SpanId, Tracer};

    #[test]
    fn round_trips_tracer_output() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        clock.set_round(4);
        clock.add_ops(9);
        t.record(
            &clock,
            "full_sync",
            &[
                ("epoch", 3u64.into()),
                ("value", 0.25f64.into()),
                ("msg", "a\"b\nc".into()),
                ("ok", true.into()),
                ("none", f64::NAN.into()),
            ],
        );
        let events = parse_trace(&t.to_jsonl()).unwrap();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!((ev.seq, ev.round, ev.ops), (0, 4, 9));
        assert_eq!(ev.kind, "full_sync");
        assert_eq!(ev.u64("epoch"), Some(3));
        assert_eq!(ev.field("value"), Some(&JsonVal::F64(0.25)));
        assert_eq!(ev.str("msg"), Some("a\"b\nc"));
        assert_eq!(ev.field("ok"), Some(&JsonVal::Bool(true)));
        assert_eq!(ev.field("none"), Some(&JsonVal::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"seq\":1}").is_err(), "missing envelope keys");
        assert!(parse_line("{\"seq\":1,\"round\":0,\"ops\":0,\"kind\":\"x\"} ").is_err());
        assert!(parse_trace("{\"seq\":0,\"round\":0,\"ops\":0,\"kind\":\"x\"}\n\nbad")
            .is_err());
    }

    #[test]
    fn span_paths_follow_open_spans() {
        let clock = LogicalClock::default();
        let t = Tracer::default();
        let outer = t.span_begin(&clock, "violation", SpanId::NONE, &[]);
        let inner = t.span_begin(&clock, "handle", outer, &[]);
        t.record(&clock, "full_sync", &[]);
        t.span_end(&clock, inner, &[]);
        t.record(&clock, "round", &[]);
        t.span_end(&clock, outer, &[]);
        let events = parse_trace(&t.to_jsonl()).unwrap();
        assert_eq!(span_path_at(&events, 0), Vec::<String>::new());
        assert_eq!(span_path_at(&events, 2), vec!["violation", "handle"]);
        assert_eq!(span_path_at(&events, 4), vec!["violation"]);
        assert_eq!(span_path_at(&events, 99), Vec::<String>::new());
    }
}
