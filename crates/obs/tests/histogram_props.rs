//! Property tests for histogram snapshots: merging is associative and
//! commutative (the fixed-point integer sum makes it exact, no float
//! reassociation error), and concurrent observation over atomics lands
//! on the same snapshot as a single sequential pass.

use automon_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

const BOUNDS: &[f64] = &[0.1, 1.0, 10.0, 100.0];

fn snap_of(samples: &[f64]) -> HistogramSnapshot {
    let h = Histogram::standalone(BOUNDS);
    for &v in samples {
        h.observe(v);
    }
    h.snapshot()
}

fn lane() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..1000.0, 0..64usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) == merge(b, a).
    #[test]
    fn merge_is_commutative(a in lane(), b in lane()) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(a in lane(), b in lane(), c in lane()) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// Merging per-lane snapshots equals observing the concatenation,
    /// and observing lanes concurrently into ONE histogram from scoped
    /// threads also equals it — the atomics commute exactly.
    #[test]
    fn parallel_lanes_equal_sequential(lanes in proptest::collection::vec(lane(), 1..6usize)) {
        let all: Vec<f64> = lanes.iter().flatten().copied().collect();
        let sequential = snap_of(&all);

        let mut merged = HistogramSnapshot::empty(BOUNDS);
        for lane in &lanes {
            merged = merged.merge(&snap_of(lane));
        }
        prop_assert_eq!(&merged, &sequential);

        let shared = Histogram::standalone(BOUNDS);
        crossbeam::scope(|s| {
            for lane in &lanes {
                let h = &shared;
                s.spawn(move |_| {
                    for &v in lane {
                        h.observe(v);
                    }
                });
            }
        })
        .expect("no worker panicked");
        prop_assert_eq!(shared.snapshot(), sequential);
    }
}
