//! Matrix-free Lanczos iteration for extreme eigenvalues.
//!
//! ADCD-X (paper §3.1/§3.4) only needs `λ_min`/`λ_max` of a Hessian per
//! probe point, and the AD engine can apply `H·v` (a Hessian-vector
//! product) without materializing `H`. Lanczos builds an orthonormal
//! Krylov basis from such products and reads the extreme eigenvalues off
//! a small tridiagonal projection — the extremes converge first, which
//! is exactly the access pattern the eigen search has.
//!
//! Design choices, all in service of determinism (same input ⇒ same
//! bits, independent of thread count — the run loop is strictly
//! sequential and every reduction is a fixed-order loop):
//!
//! * **Full reorthogonalization** (two Gram-Schmidt passes against the
//!   entire basis per step). The basis stays orthonormal to machine
//!   precision, so no ghost eigenvalues; cost is fine at ADCD sizes.
//! * **Gershgorin-seeded shift**: the caller passes a shift (midpoint of
//!   a Gershgorin enclosure of the Hessian at the neighborhood center)
//!   and a scale (its half-width) so convergence tests are relative to
//!   the actual spectral range.
//! * **Warm-starting**: the workspace keeps the Ritz vector of the
//!   requested extreme from the previous run and uses it as the next
//!   starting vector. Neighboring probe points have nearby Hessians, so
//!   successive probes converge in a handful of iterations.
//! * **Deterministic breakdown recovery**: a (happy) breakdown means an
//!   invariant subspace was captured; the iteration restarts with the
//!   first canonical basis vector that survives orthogonalization
//!   against the current basis, keeping a zero coupling in `T`.

use crate::tridiag::ql_implicit;
use crate::Matrix;

/// A symmetric linear operator `v ↦ A·v`, applied matrix-free.
///
/// `apply` takes `&mut self` so implementations can reuse scratch
/// buffers (e.g. an AD graph replay workspace) across applications.
pub trait SymOperator {
    /// The operator's dimension `d`.
    fn dim(&self) -> usize;
    /// Compute `out ← A·v`. Both slices have length [`Self::dim`].
    fn apply(&mut self, v: &[f64], out: &mut [f64]);
}

/// [`SymOperator`] view of a dense symmetric [`Matrix`] (tests, oracle
/// comparisons, and callers that already hold a materialized Hessian).
pub struct MatrixOperator<'a> {
    m: &'a Matrix,
}

impl<'a> MatrixOperator<'a> {
    /// Wrap a square matrix.
    pub fn new(m: &'a Matrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "MatrixOperator: matrix must be square");
        Self { m }
    }
}

impl SymOperator for MatrixOperator<'_> {
    fn dim(&self) -> usize {
        self.m.rows()
    }
    fn apply(&mut self, v: &[f64], out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += self.m[(i, j)] * vj;
            }
            *o = acc;
        }
    }
}

/// Options for [`LanczosWorkspace::extremes`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Declare convergence when both extreme Ritz values move by at most
    /// `tol * scale` between consecutive iterations, twice in a row.
    pub tol: f64,
    /// Cap on Lanczos iterations; `0` means the operator dimension
    /// (at which point the projection is exact).
    pub max_iters: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_iters: 0,
        }
    }
}

/// Counters describing one or more Lanczos runs (merged additively).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LanczosStats {
    /// Lanczos iterations (one operator application each).
    pub iterations: u64,
    /// Gram-Schmidt reorthogonalization passes over the basis.
    pub reorth_passes: u64,
    /// Operator applications (`A·v` evaluations).
    pub applies: u64,
    /// Deterministic restarts after a happy breakdown.
    pub restarts: u64,
}

/// Which extreme's Ritz vector to keep as the next warm start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RitzSide {
    /// Track the smallest eigenvalue's Ritz vector.
    Smallest,
    /// Track the largest eigenvalue's Ritz vector.
    Largest,
}

/// Reusable scratch (Krylov basis, tridiagonal coefficients, warm-start
/// vector) for repeated extreme-eigenvalue extractions.
#[derive(Debug, Clone)]
pub struct LanczosWorkspace {
    /// Orthonormal basis, row `j` at `q[j*d..(j+1)*d]`.
    q: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    w: Vec<f64>,
    td: Vec<f64>,
    te: Vec<f64>,
    start: Vec<f64>,
    zsmall: Matrix,
}

impl Default for LanczosWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl LanczosWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    pub fn new() -> Self {
        Self {
            q: Vec::new(),
            alpha: Vec::new(),
            beta: Vec::new(),
            w: Vec::new(),
            td: Vec::new(),
            te: Vec::new(),
            start: Vec::new(),
            zsmall: Matrix::zeros(0, 0),
        }
    }

    /// Seed the next run's starting vector (e.g. an eigenvector of the
    /// Hessian at the neighborhood center). Overridden by the Ritz
    /// vector each [`Self::extremes`] call leaves behind.
    pub fn set_start(&mut self, v: &[f64]) {
        self.start.clear();
        self.start.extend_from_slice(v);
    }

    /// The current start vector: after an [`Self::extremes`] run this
    /// holds the chosen side's normalized Ritz vector, so callers can
    /// capture it to warm-start a later search (empty before any run
    /// or seed).
    pub fn start_vector(&self) -> &[f64] {
        &self.start
    }

    /// Extreme eigenvalues `(λ_min, λ_max)` of `op`, matrix-free.
    ///
    /// `shift` is subtracted from the operator during the iteration and
    /// added back to the returned values (a Gershgorin-midpoint shift
    /// balances the spectrum around zero); `scale` sets the absolute
    /// convergence/breakdown scale and should be a bound on the spectral
    /// half-width. The Ritz vector of the `side` extreme is stored as
    /// the next run's starting vector (warm start).
    ///
    /// # Panics
    /// Panics if `op.dim() == 0`.
    pub fn extremes(
        &mut self,
        op: &mut dyn SymOperator,
        shift: f64,
        scale: f64,
        side: RitzSide,
        opts: &LanczosOptions,
        stats: &mut LanczosStats,
    ) -> (f64, f64) {
        let d = op.dim();
        assert!(d > 0, "LanczosWorkspace: empty operator");
        let scale = scale.abs().max(f64::MIN_POSITIVE);
        let m_max = if opts.max_iters == 0 {
            d
        } else {
            opts.max_iters.min(d)
        };
        let breakdown_tol = 8.0 * f64::EPSILON * scale;

        self.w.resize(d, 0.0);
        self.prepare_start(d);
        self.q.clear();
        self.q.reserve(m_max * d);
        self.q.extend_from_slice(&self.start);
        self.alpha.clear();
        self.beta.clear();

        let mut prev_lo = f64::INFINITY;
        let mut prev_hi = f64::NEG_INFINITY;
        let mut stable = 0u32;
        let mut restart_from = 0usize;

        for j in 0..m_max {
            {
                let qj = &self.q[j * d..(j + 1) * d];
                op.apply(qj, &mut self.w);
            }
            stats.applies += 1;
            stats.iterations += 1;
            let qj = &self.q[j * d..(j + 1) * d];
            if shift != 0.0 {
                for (wi, &qi) in self.w.iter_mut().zip(qj) {
                    *wi -= shift * qi;
                }
            }
            let a_j = dot(&self.w, qj);
            self.alpha.push(a_j);
            for (wi, &qi) in self.w.iter_mut().zip(qj) {
                *wi -= a_j * qi;
            }
            if j > 0 {
                let b = self.beta[j - 1];
                let qm = &self.q[(j - 1) * d..j * d];
                for (wi, &qi) in self.w.iter_mut().zip(qm) {
                    *wi -= b * qi;
                }
            }
            // Full reorthogonalization, two fixed-order passes.
            for _ in 0..2 {
                for k in 0..=j {
                    let qk = &self.q[k * d..(k + 1) * d];
                    let c = dot(&self.w, qk);
                    for (wi, &qi) in self.w.iter_mut().zip(qk) {
                        *wi -= c * qi;
                    }
                }
                stats.reorth_passes += 1;
            }

            if j + 1 == m_max {
                break;
            }

            let b_j = norm(&self.w);
            if b_j <= breakdown_tol {
                // Happy breakdown: the basis spans an invariant
                // subspace. Restart deterministically, keeping a zero
                // coupling in T (the projection stays block-diagonal).
                if !self.restart_vector(j + 1, d, &mut restart_from) {
                    break;
                }
                self.beta.push(0.0);
                stats.restarts += 1;
                let w = std::mem::take(&mut self.w);
                self.q.extend_from_slice(&w);
                self.w = w;
            } else {
                self.beta.push(b_j);
                let inv = 1.0 / b_j;
                let w = std::mem::take(&mut self.w);
                self.q.extend(w.iter().map(|&x| x * inv));
                self.w = w;
            }

            // Convergence test on the current projection's extremes.
            let m = self.alpha.len();
            if m >= 2 {
                self.load_tridiag(m);
                if ql_implicit(&mut self.td[..m], &mut self.te[..m], None).is_ok() {
                    let (lo, hi) = extreme_pair(&self.td[..m]);
                    if (lo - prev_lo).abs() <= opts.tol * scale
                        && (hi - prev_hi).abs() <= opts.tol * scale
                    {
                        stable += 1;
                        if stable >= 2 {
                            break;
                        }
                    } else {
                        stable = 0;
                    }
                    prev_lo = lo;
                    prev_hi = hi;
                }
            }
        }

        // Final projection with Ritz vectors for the warm start.
        let m = self.alpha.len();
        self.load_tridiag(m);
        self.reset_zsmall(m);
        let (lo_idx, hi_idx);
        if ql_implicit(&mut self.td[..m], &mut self.te[..m], Some(&mut self.zsmall)).is_ok() {
            let (i_lo, i_hi) = argmin_argmax(&self.td[..m]);
            lo_idx = i_lo;
            hi_idx = i_hi;
        } else {
            // QL failed on the projection (essentially unreachable);
            // fall back to the Jacobi oracle on the dense tridiagonal.
            let mut t = Matrix::zeros(m, m);
            for i in 0..m {
                t[(i, i)] = self.alpha[i];
                if i > 0 {
                    t[(i, i - 1)] = self.beta[i - 1];
                    t[(i - 1, i)] = self.beta[i - 1];
                }
            }
            let eig = crate::SymEigen::with_options(&t, crate::JacobiOptions::default());
            self.td[..m].copy_from_slice(&eig.values);
            self.zsmall = eig.vectors;
            lo_idx = 0;
            hi_idx = m - 1;
        }
        let lambda_lo = self.td[lo_idx] + shift;
        let lambda_hi = self.td[hi_idx] + shift;

        // Compose the chosen extreme's Ritz vector in the original space
        // and stash it as the next warm start.
        let col = match side {
            RitzSide::Smallest => lo_idx,
            RitzSide::Largest => hi_idx,
        };
        self.start.clear();
        self.start.resize(d, 0.0);
        for k in 0..m {
            let zk = self.zsmall[(k, col)];
            if zk == 0.0 {
                continue;
            }
            let qk = &self.q[k * d..(k + 1) * d];
            for (si, &qi) in self.start.iter_mut().zip(qk) {
                *si += zk * qi;
            }
        }
        let sn = norm(&self.start);
        if sn > 0.0 {
            let inv = 1.0 / sn;
            for s in &mut self.start {
                *s *= inv;
            }
        }

        (lambda_lo, lambda_hi)
    }

    /// Normalize `self.start`, or fill it with a deterministic
    /// pseudo-random unit vector when absent/degenerate.
    fn prepare_start(&mut self, d: usize) {
        if self.start.len() == d {
            let n = norm(&self.start);
            if n > 0.0 && n.is_finite() {
                let inv = 1.0 / n;
                for s in &mut self.start {
                    *s *= inv;
                }
                return;
            }
        }
        self.start.clear();
        self.start.resize(d, 0.0);
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for s in &mut self.start {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *s = ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        }
        let n = norm(&self.start);
        let inv = 1.0 / n;
        for s in &mut self.start {
            *s *= inv;
        }
    }

    /// Fill `self.w` with a unit vector orthogonal to basis rows
    /// `0..basis_len`, trying canonical vectors from `*from` on.
    /// Returns `false` when none survives (basis spans the space).
    fn restart_vector(&mut self, basis_len: usize, d: usize, from: &mut usize) -> bool {
        while *from < d {
            let k = *from;
            *from += 1;
            self.w.iter_mut().for_each(|x| *x = 0.0);
            self.w[k] = 1.0;
            for _ in 0..2 {
                for b in 0..basis_len {
                    let qb = &self.q[b * d..(b + 1) * d];
                    let c = dot(&self.w, qb);
                    for (wi, &qi) in self.w.iter_mut().zip(qb) {
                        *wi -= c * qi;
                    }
                }
            }
            let n = norm(&self.w);
            if n > 1e-3 {
                let inv = 1.0 / n;
                for wi in &mut self.w {
                    *wi *= inv;
                }
                return true;
            }
        }
        false
    }

    /// Copy the projection's coefficients into the QL scratch in the
    /// layout [`ql_implicit`] expects (`te[0]` unused).
    fn load_tridiag(&mut self, m: usize) {
        self.td.clear();
        self.td.extend_from_slice(&self.alpha[..m]);
        self.te.clear();
        self.te.push(0.0);
        self.te.extend_from_slice(&self.beta[..m - 1]);
    }

    fn reset_zsmall(&mut self, m: usize) {
        if self.zsmall.rows() == m && self.zsmall.cols() == m {
            self.zsmall.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
            for i in 0..m {
                self.zsmall[(i, i)] = 1.0;
            }
        } else {
            self.zsmall = Matrix::identity(m);
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn extreme_pair(v: &[f64]) -> (f64, f64) {
    let mut lo = v[0];
    let mut hi = v[0];
    for &x in &v[1..] {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    (lo, hi)
}

fn argmin_argmax(v: &[f64]) -> (usize, usize) {
    let mut i_lo = 0;
    let mut i_hi = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x < v[i_lo] {
            i_lo = i;
        }
        if x > v[i_hi] {
            i_hi = i;
        }
    }
    (i_lo, i_hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymEigen;

    fn random_sym(n: usize, mut seed: u64) -> Matrix {
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        a.symmetrize();
        a
    }

    fn gershgorin(h: &Matrix) -> (f64, f64) {
        let n = h.rows();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut r = 0.0;
            for j in 0..n {
                if j != i {
                    r += h[(i, j)].abs();
                }
            }
            lo = lo.min(h[(i, i)] - r);
            hi = hi.max(h[(i, i)] + r);
        }
        (lo, hi)
    }

    fn extremes_of(h: &Matrix, ws: &mut LanczosWorkspace, stats: &mut LanczosStats) -> (f64, f64) {
        let (glo, ghi) = gershgorin(h);
        let shift = 0.5 * (glo + ghi);
        let scale = 0.5 * (ghi - glo);
        let mut op = MatrixOperator::new(h);
        ws.extremes(
            &mut op,
            shift,
            scale,
            RitzSide::Smallest,
            &LanczosOptions::default(),
            stats,
        )
    }

    #[test]
    fn matches_full_decomposition_on_random_matrices() {
        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        for (n, seed) in [(1usize, 2u64), (2, 3), (3, 5), (8, 7), (24, 11)] {
            let h = random_sym(n, seed);
            let eig = SymEigen::new(&h);
            let (lo, hi) = extremes_of(&h, &mut ws, &mut stats);
            let scale = eig.lambda_max().abs().max(eig.lambda_min().abs()).max(1.0);
            assert!(
                (lo - eig.lambda_min()).abs() <= 1e-9 * scale,
                "n={n}: λ_min {lo} vs {}",
                eig.lambda_min()
            );
            assert!(
                (hi - eig.lambda_max()).abs() <= 1e-9 * scale,
                "n={n}: λ_max {hi} vs {}",
                eig.lambda_max()
            );
        }
        assert!(stats.applies > 0);
        assert_eq!(stats.applies, stats.iterations);
    }

    #[test]
    fn warm_start_cuts_iterations_on_nearby_matrix() {
        let n = 24;
        let h = random_sym(n, 19);
        let mut ws = LanczosWorkspace::new();
        let mut cold = LanczosStats::default();
        let (lo0, hi0) = extremes_of(&h, &mut ws, &mut cold);
        // Perturb slightly; the warm-started rerun should converge in
        // fewer iterations and to the perturbed spectrum.
        let mut h2 = h.clone();
        for i in 0..n {
            h2[(i, i)] += 1e-6 * (i as f64);
        }
        let mut warm = LanczosStats::default();
        let (lo1, hi1) = extremes_of(&h2, &mut ws, &mut warm);
        let eig2 = SymEigen::new(&h2);
        let scale = hi0.abs().max(lo0.abs()).max(1.0);
        assert!((lo1 - eig2.lambda_min()).abs() <= 1e-8 * scale);
        assert!((hi1 - eig2.lambda_max()).abs() <= 1e-8 * scale);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn identical_inputs_are_bit_identical() {
        let h = random_sym(16, 23);
        let run = || {
            let mut ws = LanczosWorkspace::new();
            let mut stats = LanczosStats::default();
            let a = extremes_of(&h, &mut ws, &mut stats);
            let b = extremes_of(&h, &mut ws, &mut stats);
            (a, b, stats)
        };
        let (a1, b1, s1) = run();
        let (a2, b2, s2) = run();
        assert_eq!(a1.0.to_bits(), a2.0.to_bits());
        assert_eq!(a1.1.to_bits(), a2.1.to_bits());
        assert_eq!(b1.0.to_bits(), b2.0.to_bits());
        assert_eq!(b1.1.to_bits(), b2.1.to_bits());
        assert_eq!(s1, s2);
    }

    #[test]
    fn survives_breakdown_on_low_rank_input() {
        // Rank-1 matrix: the Krylov space collapses after two steps, so
        // reaching both extremes (4 and 0) requires restarts.
        let n = 6;
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = 2.0 / (n as f64).sqrt() * 2.0 / (n as f64).sqrt();
            }
        }
        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        let (lo, hi) = extremes_of(&h, &mut ws, &mut stats);
        assert!((hi - 4.0).abs() < 1e-9, "λ_max {hi}");
        assert!(lo.abs() < 1e-9, "λ_min {lo}");
        assert!(stats.restarts > 0, "expected a breakdown restart");
    }

    #[test]
    fn diagonal_matrix_is_exact() {
        let h = Matrix::from_diag(&[4.0, -2.0, 1.0, 0.5]);
        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        let (lo, hi) = extremes_of(&h, &mut ws, &mut stats);
        assert!((lo + 2.0).abs() < 1e-10);
        assert!((hi - 4.0).abs() < 1e-10);
    }
}
