//! Symmetric eigendecomposition: tridiagonal QL by default, cyclic
//! Jacobi as the oracle.
//!
//! ADCD-E (paper Lemma 2) needs the full spectral decomposition
//! `H = QΛQᵀ` of a constant Hessian so it can split it into a PSD part
//! `H⁺ = QΛ⁺Qᵀ` and an NSD part `H⁻ = QΛ⁻Qᵀ`. The DC heuristic (paper
//! §3.4) and ADCD-X both need extreme eigenvalues of Hessians evaluated
//! at points. The default path is Householder tridiagonalization +
//! implicit-shift QL ([`crate::tridiag`]) — an order of magnitude
//! faster than Jacobi at ADCD sizes — with cyclic Jacobi retained under
//! [`SymEigen::with_options`] / [`SpectralBackend::Jacobi`] as the
//! simple, unconditionally convergent test oracle and escape hatch (and
//! as the deterministic fallback should QL ever hit its iteration cap).

use crate::tridiag::{ql_implicit, tridiagonalize};
use crate::Matrix;

/// Which spectral kernel to use for eigendecompositions.
///
/// Lives here (rather than in core's config) so every layer — config,
/// CLI, benches, tests — shares one vocabulary for the escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralBackend {
    /// Householder tridiagonalization + implicit-shift QL for full
    /// spectra; matrix-free Lanczos for extreme-only queries. The
    /// default and the fast path.
    #[default]
    Ql,
    /// Cyclic threshold Jacobi everywhere: the original kernel, kept as
    /// the test oracle and rollback switch.
    Jacobi,
}

/// Options controlling the Jacobi iteration.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Stop when the largest off-diagonal magnitude falls below
    /// `tol * frobenius_norm`.
    pub tol: f64,
    /// Hard cap on full sweeps (each sweep rotates every off-diagonal pair).
    pub max_sweeps: usize,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_sweeps: 64,
        }
    }
}

/// The eigendecomposition `H = QΛQᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted ascending; `vectors` holds the corresponding
/// eigenvectors as columns and is orthonormal.
///
/// ```
/// use automon_linalg::{Matrix, SymEigen};
///
/// // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
/// let h = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
/// let eig = SymEigen::new(&h);
/// assert!((eig.lambda_min() - 1.0).abs() < 1e-10);
/// assert!((eig.lambda_max() - 3.0).abs() < 1e-10);
/// // Lemma 2's split: H⁺ + H⁻ = H, with H⁺ ⪰ 0 ⪰ H⁻.
/// assert!(eig.psd_part().add(&eig.nsd_part()).approx_eq(&h, 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues `λ₁ ≤ λ₂ ≤ … ≤ λ_d`.
    pub values: Vec<f64>,
    /// Orthonormal eigenvector matrix `Q`; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Decompose a symmetric matrix with the default (QL) backend.
    ///
    /// # Panics
    /// Panics if `h` is not square. Input asymmetry up to roundoff is
    /// tolerated: the matrix is symmetrized first.
    pub fn new(h: &Matrix) -> Self {
        Self::ql(h)
    }

    /// Decompose with an explicit [`SpectralBackend`].
    pub fn with_backend(h: &Matrix, backend: SpectralBackend) -> Self {
        match backend {
            SpectralBackend::Ql => Self::ql(h),
            SpectralBackend::Jacobi => Self::with_options(h, JacobiOptions::default()),
        }
    }

    /// Decompose via Householder tridiagonalization + implicit-shift QL,
    /// falling back to Jacobi if QL hits its iteration cap (the
    /// fallback decision depends only on the tridiagonal coefficients,
    /// which are identical across the values-only and full flavors, so
    /// [`EigenWorkspace`]'s bit-identity contract survives it).
    fn ql(h: &Matrix) -> Self {
        assert_eq!(h.rows(), h.cols(), "SymEigen: matrix must be square");
        let n = h.rows();
        let mut a = h.clone();
        a.symmetrize();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tridiagonalize(&mut a, &mut d, &mut e, true);
        if ql_implicit(&mut d, &mut e, Some(&mut a)).is_err() {
            return Self::with_options(h, JacobiOptions::default());
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("NaN eigenvalue"));
        let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
        let vectors = Matrix::from_fn(n, n, |i, j| a[(i, idx[j])]);
        Self { values, vectors }
    }

    /// Decompose with explicit [`JacobiOptions`] (the Jacobi oracle).
    pub fn with_options(h: &Matrix, opts: JacobiOptions) -> Self {
        assert_eq!(h.rows(), h.cols(), "SymEigen: matrix must be square");
        let n = h.rows();
        let mut a = h.clone();
        a.symmetrize();
        let mut q = Matrix::identity(n);
        jacobi_sweeps(&mut a, Some(&mut q), &opts);

        // Extract and sort ascending, permuting eigenvectors along.
        let mut idx: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        idx.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
        let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
        let vectors = Matrix::from_fn(n, n, |i, j| q[(i, idx[j])]);
        Self { values, vectors }
    }

    /// Smallest eigenvalue `λ_min`.
    pub fn lambda_min(&self) -> f64 {
        *self.values.first().expect("empty decomposition")
    }

    /// Largest eigenvalue `λ_max`.
    pub fn lambda_max(&self) -> f64 {
        *self.values.last().expect("empty decomposition")
    }

    /// Reconstruct `QΛQᵀ` (testing / verification helper).
    pub fn reconstruct(&self) -> Matrix {
        self.compose(|l| l)
    }

    /// The PSD part `H⁺ = QΛ⁺Qᵀ` where `Λ⁺` keeps only non-negative
    /// eigenvalues (paper Lemma 2).
    pub fn psd_part(&self) -> Matrix {
        self.compose(|l| if l > 0.0 { l } else { 0.0 })
    }

    /// The NSD part `H⁻ = QΛ⁻Qᵀ` where `Λ⁻` keeps only negative
    /// eigenvalues (paper Lemma 2). `psd_part() + nsd_part() = H`.
    pub fn nsd_part(&self) -> Matrix {
        self.compose(|l| if l < 0.0 { l } else { 0.0 })
    }

    /// `Q·f(Λ)·Qᵀ` for an element-wise eigenvalue map `f`.
    fn compose(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let q = &self.vectors;
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let lk = f(self.values[k]);
            if lk == 0.0 {
                continue;
            }
            for i in 0..n {
                let qik = q[(i, k)];
                if qik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += lk * qik * q[(j, k)];
                }
            }
        }
        out
    }
}

/// Run cyclic Jacobi sweeps on `a` until the off-diagonal mass falls
/// below `tol · ‖A‖_F`, optionally accumulating rotations into `q`.
///
/// This is the shared kernel behind [`SymEigen`] and [`EigenWorkspace`]:
/// both must perform the exact same rotation sequence so eigenvalues
/// from either path agree bit for bit. The sweep is *threshold-cyclic*:
/// pairs already below the convergence threshold are skipped (classic
/// threshold Jacobi), which prunes the last sweep to a no-op and most
/// rotations on near-diagonal input. Skipping only leaves sub-threshold
/// mass behind, so the eigenvalue perturbation stays within the
/// convergence tolerance that callers already accept.
fn jacobi_sweeps(a: &mut Matrix, mut q: Option<&mut Matrix>, opts: &JacobiOptions) {
    let n = a.rows();
    if n == 0 {
        return;
    }
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let threshold = opts.tol * scale;
    for _sweep in 0..opts.max_sweeps {
        if a.max_off_diagonal() <= threshold {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                jacobi_rotate(a, q.as_deref_mut(), p, r, threshold);
            }
        }
    }
}

/// One Jacobi rotation zeroing `a[(p, r)]`, accumulating into `q`.
/// Pairs at or below `skip_threshold` (the convergence threshold) are
/// left untouched — see [`jacobi_sweeps`].
fn jacobi_rotate(a: &mut Matrix, q: Option<&mut Matrix>, p: usize, r: usize, skip_threshold: f64) {
    let apr = a[(p, r)];
    // NaN also skips (the comparison is ordered on purpose).
    let rotate = apr.abs() > skip_threshold;
    if !rotate {
        return;
    }
    let app = a[(p, p)];
    let arr = a[(r, r)];
    let theta = (arr - app) / (2.0 * apr);
    // Stable tangent of the rotation angle.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let n = a.rows();

    for k in 0..n {
        let akp = a[(k, p)];
        let akr = a[(k, r)];
        a[(k, p)] = c * akp - s * akr;
        a[(k, r)] = s * akp + c * akr;
    }
    for k in 0..n {
        let apk = a[(p, k)];
        let ark = a[(r, k)];
        a[(p, k)] = c * apk - s * ark;
        a[(r, k)] = s * apk + c * ark;
    }
    // Re-impose exact zeros to fight drift.
    a[(p, r)] = 0.0;
    a[(r, p)] = 0.0;

    // Rotations on `a` are independent of `q`, so an eigenvalues-only
    // caller skipping the accumulation gets bit-identical eigenvalues.
    if let Some(q) = q {
        for k in 0..n {
            let qkp = q[(k, p)];
            let qkr = q[(k, r)];
            q[(k, p)] = c * qkp - s * qkr;
            q[(k, r)] = s * qkp + c * qkr;
        }
    }
}

/// Reusable scratch for eigenvalues-only decompositions.
///
/// The ADCD-X extreme-eigenvalue search evaluates `λ_min`/`λ_max` of a
/// fresh Hessian per probe point; a full [`SymEigen`] there allocates a
/// working copy, an identity `Q`, and sorted outputs per call, and pays
/// for accumulating `Q` only to discard it. A workspace keeps one
/// scratch matrix and sorts in place, and skips `Q` entirely.
/// Eigenvalues are **bit-identical** to the corresponding full
/// decomposition on the same input: for QL the tridiagonal coefficients
/// are shared and the rotation arithmetic never reads `z`
/// ([`crate::tridiag`]); for Jacobi the rotation sequence on `a` is
/// shared ([`jacobi_sweeps`]) and `Q` feeds nothing back into it.
#[derive(Debug, Clone)]
pub struct EigenWorkspace {
    a: Matrix,
    diag: Vec<f64>,
    offdiag: Vec<f64>,
}

impl Default for EigenWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl EigenWorkspace {
    /// An empty workspace; scratch buffers size themselves on first use.
    pub fn new() -> Self {
        Self {
            a: Matrix::zeros(0, 0),
            diag: Vec::new(),
            offdiag: Vec::new(),
        }
    }

    /// The extreme eigenvalues `(λ_min, λ_max)` of symmetric `h` with
    /// the default (QL) backend — the values `SymEigen::new(h)` would
    /// report, without computing eigenvectors or allocating.
    ///
    /// # Panics
    /// Panics if `h` is not square, is empty, or yields NaN eigenvalues.
    pub fn extreme_eigenvalues(&mut self, h: &Matrix) -> (f64, f64) {
        self.extreme_eigenvalues_backend(h, SpectralBackend::Ql)
    }

    /// As [`Self::extreme_eigenvalues`] with an explicit backend.
    pub fn extreme_eigenvalues_backend(
        &mut self,
        h: &Matrix,
        backend: SpectralBackend,
    ) -> (f64, f64) {
        match backend {
            SpectralBackend::Ql => {
                let n = self.load(h);
                self.offdiag.clear();
                self.offdiag.resize(n, 0.0);
                self.diag.clear();
                self.diag.resize(n, 0.0);
                tridiagonalize(&mut self.a, &mut self.diag, &mut self.offdiag, false);
                if ql_implicit(&mut self.diag, &mut self.offdiag, None).is_err() {
                    // Mirror SymEigen::ql's Jacobi fallback exactly.
                    return self.extreme_eigenvalues_with(h, JacobiOptions::default());
                }
                self.sorted_extremes()
            }
            SpectralBackend::Jacobi => self.extreme_eigenvalues_with(h, JacobiOptions::default()),
        }
    }

    /// Extreme eigenvalues via the Jacobi oracle with explicit options
    /// — bit-identical to [`SymEigen::with_options`] on the same input.
    pub fn extreme_eigenvalues_with(&mut self, h: &Matrix, opts: JacobiOptions) -> (f64, f64) {
        let n = self.load(h);
        jacobi_sweeps(&mut self.a, None, &opts);
        self.diag.clear();
        self.diag.extend((0..n).map(|i| self.a[(i, i)]));
        self.sorted_extremes()
    }

    /// Copy `h` into the scratch matrix (reusing its allocation when the
    /// shape matches) and symmetrize; returns the dimension.
    fn load(&mut self, h: &Matrix) -> usize {
        assert_eq!(h.rows(), h.cols(), "EigenWorkspace: matrix must be square");
        let n = h.rows();
        assert!(n > 0, "empty decomposition");
        if self.a.rows() == n && self.a.cols() == n {
            self.a.as_mut_slice().copy_from_slice(h.as_slice());
        } else {
            self.a = h.clone();
        }
        self.a.symmetrize();
        n
    }

    /// Mirror SymEigen's sort (same comparator, hence the same bits for
    /// the first/last element) without allocating.
    fn sorted_extremes(&mut self) -> (f64, f64) {
        self.diag
            .sort_by(|x, y| x.partial_cmp(y).expect("NaN eigenvalue"));
        (self.diag[0], self.diag[self.diag.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(vals: Vec<f64>, n: usize) -> Matrix {
        let mut m = Matrix::from_rows(n, n, vals);
        m.symmetrize();
        m
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let d = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::new(&d);
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
        assert_eq!(e.lambda_min(), -1.0);
        assert_eq!(e.lambda_max(), 3.0);
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = sym(vec![2.0, 1.0, 1.0, 2.0], 2);
        let e = SymEigen::new(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = sym(
            vec![4.0, 1.0, -2.0, 1.0, 2.0, 0.0, -2.0, 0.0, 3.0],
            3,
        );
        let e = SymEigen::new(&a);
        assert!(e.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = sym(vec![1.0, 2.0, 3.0, 2.0, 5.0, -1.0, 3.0, -1.0, 0.0], 3);
        let e = SymEigen::new(&a);
        let qtq = e.vectors.transpose().matmul(&e.vectors);
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn psd_nsd_split_sums_to_original() {
        let a = sym(vec![0.0, 2.0, 2.0, 0.0], 2); // eigenvalues ±2
        let e = SymEigen::new(&a);
        let plus = e.psd_part();
        let minus = e.nsd_part();
        assert!(plus.add(&minus).approx_eq(&a, 1e-9));
        // H⁺ is PSD, H⁻ is NSD.
        let ep = SymEigen::new(&plus);
        let em = SymEigen::new(&minus);
        assert!(ep.lambda_min() >= -1e-9);
        assert!(em.lambda_max() <= 1e-9);
    }

    #[test]
    fn psd_matrix_has_zero_nsd_part() {
        let a = sym(vec![2.0, 1.0, 1.0, 2.0], 2);
        let e = SymEigen::new(&a);
        assert!(e.nsd_part().approx_eq(&Matrix::zeros(2, 2), 1e-9));
        assert!(e.psd_part().approx_eq(&a, 1e-9));
    }

    #[test]
    fn empty_and_single_element() {
        let e0 = SymEigen::new(&Matrix::zeros(0, 0));
        assert!(e0.values.is_empty());
        let e1 = SymEigen::new(&Matrix::from_diag(&[7.0]));
        assert_eq!(e1.values, vec![7.0]);
    }

    #[test]
    fn workspace_extremes_bit_identical_to_full_decomposition() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut ws = EigenWorkspace::new();
        // Reuse one workspace across shapes and inputs, including a
        // shrink (12 → 5) that exercises the reallocation path.
        for n in [1usize, 3, 5, 12, 5] {
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            a.symmetrize();
            let e = SymEigen::new(&a);
            let (lo, hi) = ws.extreme_eigenvalues(&a);
            assert_eq!(lo.to_bits(), e.lambda_min().to_bits());
            assert_eq!(hi.to_bits(), e.lambda_max().to_bits());
        }
    }

    #[test]
    fn workspace_handles_near_diagonal_input() {
        // Threshold sweeps skip everything here; extremes still match.
        let mut a = Matrix::from_diag(&[4.0, -2.0, 1.0]);
        a[(0, 1)] = 1e-30;
        a[(1, 0)] = 1e-30;
        let e = SymEigen::new(&a);
        let (lo, hi) = EigenWorkspace::new().extreme_eigenvalues(&a);
        assert_eq!(lo.to_bits(), e.lambda_min().to_bits());
        assert_eq!(hi.to_bits(), e.lambda_max().to_bits());
    }

    #[test]
    fn backends_agree_within_tolerance() {
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [2usize, 5, 16] {
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            a.symmetrize();
            let ql = SymEigen::with_backend(&a, SpectralBackend::Ql);
            let jac = SymEigen::with_backend(&a, SpectralBackend::Jacobi);
            let scale = jac.lambda_max().abs().max(jac.lambda_min().abs()).max(1.0);
            for (x, y) in ql.values.iter().zip(&jac.values) {
                assert!((x - y).abs() <= 1e-9 * scale, "n={n}: {x} vs {y}");
            }
            assert!(ql.reconstruct().approx_eq(&a, 1e-9));
        }
    }

    #[test]
    fn jacobi_workspace_bit_identical_to_jacobi_full() {
        let mut seed = 17u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut ws = EigenWorkspace::new();
        for n in [2usize, 4, 9] {
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            a.symmetrize();
            let e = SymEigen::with_backend(&a, SpectralBackend::Jacobi);
            let (lo, hi) = ws.extreme_eigenvalues_backend(&a, SpectralBackend::Jacobi);
            assert_eq!(lo.to_bits(), e.lambda_min().to_bits());
            assert_eq!(hi.to_bits(), e.lambda_max().to_bits());
        }
    }

    #[test]
    fn handles_larger_random_like_matrix() {
        // Deterministic pseudo-random symmetric matrix; checks reconstruction.
        let n = 20;
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        a.symmetrize();
        let e = SymEigen::new(&a);
        assert!(e.reconstruct().approx_eq(&a, 1e-8));
        // Trace equals the eigenvalue sum.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let lsum: f64 = e.values.iter().sum();
        assert!((trace - lsum).abs() < 1e-8);
    }
}
