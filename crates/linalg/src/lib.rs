//! Dense linear algebra substrate for AutoMon.
//!
//! AutoMon's ADCD machinery needs a small, dependable set of dense
//! linear-algebra primitives:
//!
//! * vector arithmetic over `&[f64]` slices ([`vector`]),
//! * a row-major dense [`Matrix`] with the handful of operations the
//!   protocol uses (mat-vec, quadratic forms, symmetry checks),
//! * a symmetric eigendecomposition ([`SymEigen`], cyclic Jacobi) used by
//!   ADCD-E to split a constant Hessian into PSD and NSD parts and by the
//!   DC heuristic to read off extreme eigenvalues.
//!
//! The paper's prototype delegates these to NumPy/MKL; this crate is the
//! from-scratch Rust replacement. Jacobi iteration was chosen over
//! Householder + QL because it is simple, unconditionally stable for
//! symmetric matrices, and produces orthonormal eigenvectors directly —
//! the matrices AutoMon decomposes are at most a few hundred rows, far
//! below the size where Jacobi's O(d³) per sweep becomes a bottleneck.

mod eigen;
mod matrix;
pub mod vector;

pub use eigen::{EigenWorkspace, JacobiOptions, SymEigen};
pub use matrix::Matrix;
