//! Dense linear algebra substrate for AutoMon.
//!
//! AutoMon's ADCD machinery needs a small, dependable set of dense
//! linear-algebra primitives:
//!
//! * vector arithmetic over `&[f64]` slices ([`vector`]),
//! * a row-major dense [`Matrix`] with the handful of operations the
//!   protocol uses (mat-vec, quadratic forms, symmetry checks),
//! * a symmetric eigendecomposition ([`SymEigen`]) used by ADCD-E to
//!   split a constant Hessian into PSD and NSD parts and by the DC
//!   heuristic to read off extreme eigenvalues,
//! * a matrix-free Lanczos iteration ([`LanczosWorkspace`]) for the
//!   extreme-only eigenvalue queries the ADCD-X search makes, driven by
//!   Hessian-vector products through the [`SymOperator`] trait.
//!
//! The paper's prototype delegates these to NumPy/MKL; this crate is
//! the from-scratch Rust replacement. The spectral kernel is two-tier
//! ([`SpectralBackend::Ql`], the default): Householder reduction +
//! implicit-shift QL when the full spectrum is needed, Lanczos with
//! full reorthogonalization when only `λ_min`/`λ_max` are. The original
//! cyclic Jacobi kernel — simple and unconditionally convergent, but an
//! order of magnitude slower at d≈100 — remains as the test oracle and
//! the [`SpectralBackend::Jacobi`] escape hatch.

mod eigen;
mod lanczos;
mod matrix;
mod tridiag;
pub mod vector;

pub use eigen::{EigenWorkspace, JacobiOptions, SpectralBackend, SymEigen};
pub use lanczos::{LanczosOptions, LanczosStats, LanczosWorkspace, MatrixOperator, RitzSide, SymOperator};
pub use matrix::Matrix;
