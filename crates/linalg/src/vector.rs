//! Vector arithmetic over plain `&[f64]` slices.
//!
//! AutoMon represents local vectors, reference points, gradients, and slack
//! as `Vec<f64>`; these free functions implement the arithmetic the
//! protocol needs without committing callers to a wrapper type.

/// Dot product `⟨a, b⟩`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm `‖a‖²`.
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm `‖a‖`.
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// Infinity norm `max |aᵢ|`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scalar multiple `c · a`.
pub fn scale(a: &[f64], c: f64) -> Vec<f64> {
    a.iter().map(|x| c * x).collect()
}

/// In-place `y += c · x` (BLAS axpy).
pub fn axpy(y: &mut [f64], c: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += c * xi;
    }
}

/// Arithmetic mean of a set of equal-length vectors.
///
/// Returns `None` when `vs` is empty.
pub fn mean(vs: &[Vec<f64>]) -> Option<Vec<f64>> {
    let first = vs.first()?;
    let d = first.len();
    let mut out = vec![0.0; d];
    for v in vs {
        assert_eq!(v.len(), d, "mean: dimension mismatch");
        axpy(&mut out, 1.0, v);
    }
    let inv = 1.0 / vs.len() as f64;
    for o in &mut out {
        *o *= inv;
    }
    Some(out)
}

/// Squared Euclidean distance `‖a - b‖²`.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `true` when every `|aᵢ - bᵢ| ≤ tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Clamp each coordinate of `x` into `[lo[i], hi[i]]`.
pub fn clamp_box(x: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), lo.len());
    assert_eq!(x.len(), hi.len());
    x.iter()
        .zip(lo.iter().zip(hi))
        .map(|(&xi, (&l, &h))| xi.clamp(l, h))
        .collect()
}

/// `true` when `lo[i] ≤ x[i] ≤ hi[i]` for every coordinate.
pub fn in_box(x: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    x.iter()
        .zip(lo.iter().zip(hi))
        .all(|(&xi, (&l, &h))| xi >= l && xi <= h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm_sq(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(add(&a, &b), vec![11.0, 22.0]);
        assert_eq!(sub(&b, &a), vec![9.0, 18.0]);
        assert_eq!(scale(&a, 3.0), vec![3.0, 6.0]);
        let mut y = vec![1.0, 1.0];
        axpy(&mut y, 2.0, &a);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let vs = vec![vec![0.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(mean(&vs), Some(vec![1.0, 3.0]));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn distances_and_eq() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    fn box_operations() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        assert_eq!(clamp_box(&[-1.0, 0.5], &lo, &hi), vec![0.0, 0.5]);
        assert!(in_box(&[0.5, 1.0], &lo, &hi));
        assert!(!in_box(&[0.5, 1.5], &lo, &hi));
    }

    #[test]
    #[should_panic(expected = "dot: dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
