//! A row-major dense matrix with the operations AutoMon needs.

use serde::{Deserialize, Serialize};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// This is deliberately minimal: AutoMon only needs construction,
/// element access, mat-vec products, quadratic forms, and a few
/// structural queries. Matrices are serializable because ADCD-E safe
/// zones carry the PSD/NSD Hessian parts inside sync messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows: wrong data length");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| crate::vector::dot(row, x))
            .collect()
    }

    /// Quadratic form `xᵀ·A·x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        crate::vector::dot(x, &self.matvec(x))
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += a_ik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Element-wise sum `A + B`.
    pub fn add(&self, b: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&b.data).map(|(x, y)| x + y).collect(),
        }
    }

    /// Element-wise difference `A - B`.
    pub fn sub(&self, b: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&b.data).map(|(x, y)| x - y).collect(),
        }
    }

    /// Scalar multiple `c·A`.
    pub fn scale(&self, c: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| c * x).collect(),
        }
    }

    /// Frobenius norm `√(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute off-diagonal entry (square matrices).
    pub fn max_off_diagonal(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "max_off_diagonal: not square");
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// `true` when `|aᵢⱼ - aⱼᵢ| ≤ tol` for all entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2`.
    ///
    /// Used to remove floating-point asymmetry from AD-computed Hessians
    /// before eigendecomposition.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: not square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// `true` when every pairwise entry difference is within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(x, y)| (x - y).abs() <= tol)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x), x);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        // A = [[2, 1], [1, 3]], x = [1, 2] => xᵀAx = 2 + 2 + 2 + 12 = 18
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        assert_eq!(a.quadratic_form(&[1.0, 2.0]), 18.0);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b)[(0, 0)], 2.0);
        assert_eq!(a.sub(&b)[(1, 1)], 3.0);
        assert_eq!(a.scale(2.0)[(0, 1)], 4.0);
    }

    #[test]
    fn symmetry_helpers() {
        let mut a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 4.0, 1.0]);
        assert!(!a.is_symmetric(1e-12));
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn diag_and_off_diagonal() {
        let d = Matrix::from_diag(&[1.0, -5.0]);
        assert_eq!(d[(1, 1)], -5.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.max_off_diagonal(), 0.0);
        let a = Matrix::from_rows(2, 2, vec![0.0, -3.0, 2.0, 0.0]);
        assert_eq!(a.max_off_diagonal(), 3.0);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
