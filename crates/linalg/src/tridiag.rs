//! Householder tridiagonalization and implicit-shift QL.
//!
//! This is the fast full-spectrum kernel behind [`crate::SymEigen`]'s
//! default backend: reduce the symmetric input to tridiagonal form with
//! Householder reflections (O(d³) once, no iteration), then diagonalize
//! the tridiagonal with the implicit-shift QL algorithm using Wilkinson
//! shifts (O(d²) total for eigenvalues, O(d³) when accumulating
//! eigenvectors). The combination replaces cyclic Jacobi — which pays
//! O(d³) *per sweep* and needs several sweeps — on the ADCD hot path,
//! while Jacobi stays available as the slow-but-simple oracle.
//!
//! Both routines come in values-only and values+vectors flavors driven
//! by a flag/`Option`, structured so the eigenvalue arithmetic never
//! reads anything the vectors path writes: the values-only and full
//! decompositions produce **bit-identical** eigenvalues, mirroring the
//! Jacobi kernel's contract that `EigenWorkspace` relies on.

use crate::Matrix;

/// Reduce symmetric `a` to tridiagonal form with Householder reflections.
///
/// On return `d` holds the diagonal and `e[1..]` the subdiagonal
/// (`e[0]` is zero). With `want_vectors`, `a` is overwritten with the
/// accumulated orthogonal transformation `Q` such that
/// `Qᵀ·A·Q = tridiag(d, e)`; without it, `a` is scratch whose contents
/// are unspecified afterwards.
///
/// The only `want_vectors`-dependent writes go to locations the
/// eigenvalue arithmetic never reads again, so `d`/`e` are bit-identical
/// across both flavors.
pub(crate) fn tridiagonalize(a: &mut Matrix, d: &mut [f64], e: &mut [f64], want_vectors: bool) {
    let n = a.rows();
    debug_assert_eq!(a.cols(), n);
    debug_assert_eq!(d.len(), n);
    debug_assert_eq!(e.len(), n);
    if n == 0 {
        return;
    }
    // The O(d³) inner loops run on the flat buffer with per-row slices:
    // `vi` caches the Householder vector (row `i`), so row-`j` reads
    // borrow disjoint ranges and the compiler drops the bounds checks.
    // Every sum that feeds `d`/`e` keeps the textbook accumulation
    // order, so the bit-identity contract between the two flavors is
    // untouched by the access-path rewrite.
    let m = a.as_mut_slice();
    let mut vi = vec![0.0; n];
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let row_i = &mut m[i * n..i * n + i];
            let mut scale = 0.0;
            for x in row_i.iter() {
                scale += x.abs();
            }
            if scale == 0.0 {
                // Row already reduced; skip the reflection.
                e[i] = row_i[l];
            } else {
                for x in row_i.iter_mut() {
                    *x /= scale;
                    h += *x * *x;
                }
                let f = row_i[l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                row_i[l] = f - g;
                vi[..i].copy_from_slice(row_i);
                let v = &vi[..i];
                let mut f_acc = 0.0;
                for j in 0..=l {
                    if want_vectors {
                        // Stored for the accumulation pass only; never
                        // read by the reduction arithmetic below.
                        m[j * n + i] = v[j] / h;
                    }
                    let mut g_acc = 0.0;
                    let row_j = &m[j * n..j * n + j + 1];
                    for (x, y) in row_j.iter().zip(v) {
                        g_acc += x * y;
                    }
                    // Column-`j` walk below the diagonal (the symmetric
                    // half not stored in row `j`), same ascending-`k`
                    // order as the textbook loop.
                    if j < l {
                        let col_j = m[(j + 1) * n + j..i * n].iter().step_by(n);
                        for (x, y) in col_j.zip(&v[j + 1..]) {
                            g_acc += x * y;
                        }
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * v[j];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let fj = v[j];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    let row_j = &mut m[j * n..j * n + j + 1];
                    for ((x, ek), vk) in row_j.iter_mut().zip(&e[..=j]).zip(v) {
                        *x -= fj * ek + gj * vk;
                    }
                }
            }
        } else {
            e[i] = m[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    if want_vectors {
        // Accumulate the Householder transformations into `a`. Step `i`
        // only touches entries with both indices below `i`, so the
        // `a[(i, i)]` read below still sees the reduced matrix's
        // diagonal — the same value the values-only flavor reads.
        //
        // This pass only ever produces `Q`, which the values-only flavor
        // never computes, so unlike the reduction above it is free to
        // reorganize the arithmetic: `g = A_subᵀ·v` is built row by row
        // (each `g[j]` still accumulates in ascending-`k` order) and
        // applied as a row-major rank-1 update — contiguous, vectorizable
        // traffic instead of the textbook's strided column walks.
        let mut gs = vi;
        for i in 0..n {
            if i > 0 && d[i] != 0.0 {
                let g = &mut gs[..i];
                g.fill(0.0);
                for k in 0..i {
                    let vk = m[i * n + k];
                    let row_k = &m[k * n..k * n + i];
                    for (gj, x) in g.iter_mut().zip(row_k) {
                        *gj += vk * x;
                    }
                }
                for k in 0..i {
                    let wk = m[k * n + i];
                    let row_k = &mut m[k * n..k * n + i];
                    for (x, gj) in row_k.iter_mut().zip(&*g) {
                        *x -= gj * wk;
                    }
                }
            }
            d[i] = m[i * n + i];
            m[i * n + i] = 1.0;
            for j in 0..i {
                m[j * n + i] = 0.0;
                m[i * n + j] = 0.0;
            }
        }
    } else {
        for i in 0..n {
            d[i] = m[i * n + i];
        }
    }
}

/// Diagonalize a symmetric tridiagonal matrix with implicit-shift QL.
///
/// Input: `d` diagonal, `e[1..]` subdiagonal (`e[0]` ignored) — the
/// layout [`tridiagonalize`] produces. On success `d` holds the
/// (unsorted) eigenvalues and, if `z` is given, its columns are rotated
/// so that column `j` pairs with `d[j]` (pass the `Q` from
/// [`tridiagonalize`] for eigenvectors of the original matrix, or the
/// identity for eigenvectors of the tridiagonal itself). `z` may have
/// any row count; only its `d.len()` columns are rotated.
///
/// The rotation arithmetic never reads `z`, so eigenvalues are
/// bit-identical whether or not vectors are accumulated.
///
/// Returns `Err(())` if any eigenvalue fails to converge within the
/// iteration cap (essentially unreachable for real input; callers fall
/// back to Jacobi deterministically).
pub(crate) fn ql_implicit(d: &mut [f64], e: &mut [f64], mut z: Option<&mut Matrix>) -> Result<(), ()> {
    let n = d.len();
    debug_assert_eq!(e.len(), n);
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible subdiagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(());
            }
            // Wilkinson shift from the leading 2×2 block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r } else { -r });
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m - 1;
            loop {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflate prematurely and retry the whole step.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(z) = z.as_deref_mut() {
                    let cols = z.cols();
                    for row in z.as_mut_slice().chunks_exact_mut(cols) {
                        let zi = row[i];
                        let zk = row[i + 1];
                        row[i + 1] = s * zi + c * zk;
                        row[i] = c * zi - s * zk;
                    }
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_sym(n: usize, mut seed: u64) -> Matrix {
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        a.symmetrize();
        a
    }

    #[test]
    fn values_only_matches_vectors_flavor_bit_for_bit() {
        for (n, seed) in [(1usize, 3u64), (2, 5), (3, 9), (8, 11), (20, 13)] {
            let h = random_sym(n, seed);
            let mut a1 = h.clone();
            let mut d1 = vec![0.0; n];
            let mut e1 = vec![0.0; n];
            tridiagonalize(&mut a1, &mut d1, &mut e1, true);
            let mut a2 = h.clone();
            let mut d2 = vec![0.0; n];
            let mut e2 = vec![0.0; n];
            tridiagonalize(&mut a2, &mut d2, &mut e2, false);
            for i in 0..n {
                assert_eq!(d1[i].to_bits(), d2[i].to_bits(), "diag n={n} i={i}");
                assert_eq!(e1[i].to_bits(), e2[i].to_bits(), "offdiag n={n} i={i}");
            }
            ql_implicit(&mut d1, &mut e1, Some(&mut a1)).unwrap();
            ql_implicit(&mut d2, &mut e2, None).unwrap();
            for i in 0..n {
                assert_eq!(d1[i].to_bits(), d2[i].to_bits(), "eig n={n} i={i}");
            }
        }
    }

    #[test]
    fn recovers_known_2x2_spectrum() {
        let mut a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let mut d = vec![0.0; 2];
        let mut e = vec![0.0; 2];
        tridiagonalize(&mut a, &mut d, &mut e, true);
        ql_implicit(&mut d, &mut e, Some(&mut a)).unwrap();
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let n = 12;
        let h = random_sym(n, 77);
        let mut q = h.clone();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tridiagonalize(&mut q, &mut d, &mut e, true);
        ql_implicit(&mut d, &mut e, Some(&mut q)).unwrap();
        // H·qⱼ = λⱼ·qⱼ for every column.
        for j in 0..n {
            let col: Vec<f64> = (0..n).map(|i| q[(i, j)]).collect();
            let hq = h.matvec(&col);
            for i in 0..n {
                assert!(
                    (hq[i] - d[j] * col[i]).abs() < 1e-9,
                    "residual at ({i}, {j})"
                );
            }
        }
        // Q is orthonormal.
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.approx_eq(&Matrix::identity(n), 1e-10));
    }

    #[test]
    fn handles_already_tridiagonal_and_diagonal_input() {
        let mut a = Matrix::from_diag(&[4.0, -2.0, 1.0]);
        let mut d = vec![0.0; 3];
        let mut e = vec![0.0; 3];
        tridiagonalize(&mut a, &mut d, &mut e, false);
        ql_implicit(&mut d, &mut e, None).unwrap();
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(d, vec![-2.0, 1.0, 4.0]);
    }
}
