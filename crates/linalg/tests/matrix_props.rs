//! Property tests for the dense-matrix substrate.

use automon_linalg::{Matrix, SymEigen};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |d| Matrix::from_rows(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_compatible_with_matvec(
        a in matrix(3, 4),
        b in matrix(4, 2),
        x in proptest::collection::vec(-5.0f64..5.0, 2),
    ) {
        // (A·B)·x == A·(B·x)
        let lhs = a.matmul(&b).matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix(3, 5)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn symmetrize_is_idempotent(a in matrix(4, 4)) {
        let mut once = a.clone();
        once.symmetrize();
        let mut twice = once.clone();
        twice.symmetrize();
        prop_assert!(once.approx_eq(&twice, 0.0));
        prop_assert!(once.is_symmetric(0.0));
    }

    #[test]
    fn quadratic_form_of_identity_is_norm_sq(
        x in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let i = Matrix::identity(4);
        let q = i.quadratic_form(&x);
        let n: f64 = x.iter().map(|v| v * v).sum();
        prop_assert!((q - n).abs() < 1e-12);
    }

    #[test]
    fn eigenvalues_of_scaled_identity(c in -5.0f64..5.0) {
        let m = Matrix::identity(3).scale(c);
        let e = SymEigen::new(&m);
        for &l in &e.values {
            prop_assert!((l - c).abs() < 1e-12);
        }
    }

    #[test]
    fn add_sub_round_trip(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-12));
    }
}
