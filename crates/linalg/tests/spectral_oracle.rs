//! Oracle property suite for the spectral kernels.
//!
//! Cyclic Jacobi is the slow, unconditionally convergent reference; the
//! production kernels — Householder + implicit-shift QL for the full
//! spectrum, matrix-free Lanczos for the extremes — must agree with it
//! on random symmetric matrices to tight relative tolerance, and each
//! decomposition must satisfy the algebraic invariants the ADCD split
//! relies on (orthonormal `Q`, exact reconstruction, the Lemma 2
//! PSD/NSD partition).

use automon_linalg::{
    JacobiOptions, LanczosOptions, LanczosStats, LanczosWorkspace, Matrix, MatrixOperator,
    RitzSide, SymEigen,
};
use proptest::prelude::*;

/// Entries for up to a 12 × 12 matrix; each test draws a dimension and
/// slices what it needs (the vendored proptest has no `prop_flat_map`).
fn entries() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 144)
}

/// Build the symmetric `d × d` matrix from the first `d²` entries.
fn sym_matrix(d: usize, data: &[f64]) -> Matrix {
    let mut m = Matrix::from_rows(d, d, data[..d * d].to_vec());
    m.symmetrize();
    m
}

/// Relative scale for eigenvalue comparisons: the spectral radius,
/// floored at 1 so near-zero spectra compare absolutely.
fn spectral_scale(eig: &SymEigen) -> f64 {
    eig.lambda_min().abs().max(eig.lambda_max().abs()).max(1.0)
}

/// Gershgorin disc bounds `(lo, hi)` on the spectrum of `m`.
fn gershgorin(m: &Matrix) -> (f64, f64) {
    let d = m.rows();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..d {
        let radius: f64 = (0..d).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        lo = lo.min(m[(i, i)] - radius);
        hi = hi.max(m[(i, i)] + radius);
    }
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ql_eigenvalues_match_jacobi_oracle(d in 2usize..=12, data in entries()) {
        let m = sym_matrix(d, &data);
        let ql = SymEigen::new(&m);
        let jacobi = SymEigen::with_options(&m, JacobiOptions::default());
        let scale = spectral_scale(&jacobi);
        prop_assert_eq!(ql.values.len(), jacobi.values.len());
        for (a, b) in ql.values.iter().zip(&jacobi.values) {
            prop_assert!(
                (a - b).abs() <= 1e-9 * scale,
                "QL {} vs Jacobi {} (scale {})", a, b, scale
            );
        }
    }

    #[test]
    fn ql_eigenvectors_are_orthonormal(d in 2usize..=12, data in entries()) {
        let m = sym_matrix(d, &data);
        let ql = SymEigen::new(&m);
        let qtq = ql.vectors.transpose().matmul(&ql.vectors);
        prop_assert!(
            qtq.approx_eq(&Matrix::identity(m.rows()), 1e-9),
            "QᵀQ deviates from identity"
        );
    }

    #[test]
    fn ql_reconstructs_the_input(d in 2usize..=12, data in entries()) {
        let m = sym_matrix(d, &data);
        let ql = SymEigen::new(&m);
        let scale = spectral_scale(&ql);
        prop_assert!(
            ql.reconstruct().approx_eq(&m, 1e-9 * scale),
            "QΛQᵀ deviates from the input"
        );
    }

    #[test]
    fn psd_nsd_split_matches_oracle(d in 2usize..=12, data in entries()) {
        let m = sym_matrix(d, &data);
        let ql = SymEigen::new(&m);
        let jacobi = SymEigen::with_options(&m, JacobiOptions::default());
        let scale = spectral_scale(&jacobi);
        // The Lemma 2 partition must hold for both backends…
        prop_assert!(ql.psd_part().add(&ql.nsd_part()).approx_eq(&m, 1e-9 * scale));
        prop_assert!(jacobi.psd_part().add(&jacobi.nsd_part()).approx_eq(&m, 1e-9 * scale));
        // …and the two backends must agree on the parts themselves.
        // Tolerance is looser than for eigenvalues: an eigenvalue within
        // 1e-9·scale of zero may land on either side of the clamp, and
        // the discrepancy it contributes to H⁺ is bounded by its size.
        prop_assert!(
            ql.psd_part().approx_eq(&jacobi.psd_part(), 1e-8 * scale),
            "PSD parts disagree between QL and Jacobi"
        );
        prop_assert!(
            ql.nsd_part().approx_eq(&jacobi.nsd_part(), 1e-8 * scale),
            "NSD parts disagree between QL and Jacobi"
        );
    }

    #[test]
    fn lanczos_extremes_match_jacobi_oracle(d in 2usize..=12, data in entries()) {
        let m = sym_matrix(d, &data);
        let jacobi = SymEigen::with_options(&m, JacobiOptions::default());
        let scale = spectral_scale(&jacobi);

        let (glo, ghi) = gershgorin(&m);
        let shift = 0.5 * (glo + ghi);
        let half_width = (0.5 * (ghi - glo)).max(1.0);

        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        let mut op = MatrixOperator::new(&m);
        let (lo, hi) = ws.extremes(
            &mut op,
            shift,
            half_width,
            RitzSide::Smallest,
            &LanczosOptions::default(),
            &mut stats,
        );

        prop_assert!(
            (lo - jacobi.lambda_min()).abs() <= 1e-9 * scale,
            "λ_min: Lanczos {} vs Jacobi {}", lo, jacobi.lambda_min()
        );
        prop_assert!(
            (hi - jacobi.lambda_max()).abs() <= 1e-9 * scale,
            "λ_max: Lanczos {} vs Jacobi {}", hi, jacobi.lambda_max()
        );
        prop_assert!(stats.iterations > 0 && stats.applies >= stats.iterations);
    }

    #[test]
    fn lanczos_warm_start_stays_on_the_oracle(data in entries()) {
        let m = sym_matrix(8, &data);
        // Re-running on the same operator from the previous Ritz vector
        // (the ADCD-X probe chain's steady state) must stay correct.
        let jacobi = SymEigen::with_options(&m, JacobiOptions::default());
        let scale = spectral_scale(&jacobi);
        let (glo, ghi) = gershgorin(&m);
        let shift = 0.5 * (glo + ghi);
        let half_width = (0.5 * (ghi - glo)).max(1.0);

        let mut ws = LanczosWorkspace::new();
        let mut stats = LanczosStats::default();
        for _ in 0..3 {
            let mut op = MatrixOperator::new(&m);
            let (lo, hi) = ws.extremes(
                &mut op,
                shift,
                half_width,
                RitzSide::Largest,
                &LanczosOptions::default(),
                &mut stats,
            );
            prop_assert!((lo - jacobi.lambda_min()).abs() <= 1e-9 * scale);
            prop_assert!((hi - jacobi.lambda_max()).abs() <= 1e-9 * scale);
        }
    }
}
