//! Synthetic data generators matching the paper's descriptions (§4.2,
//! §4.5, §4.6).

use crate::NormalSampler;

/// MLP-d evaluation data (paper §4.2).
///
/// `x₁ ~ N(μ(t), 0.1²)` with `μ` rising gradually from −2; coordinates
/// `x₂..x_d` are `N(2, 0.1²)` for half the nodes and `N(-2, 0.1²)` for the
/// rest. Outliers: `μ` jumps to 0 for 20 rounds starting at rounds 720
/// and 760.
#[derive(Debug, Clone)]
pub struct MlpDataset;

impl MlpDataset {
    /// Generate raw samples `out[node][round]`.
    pub fn generate(nodes: usize, rounds: usize, d: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        assert!(d >= 2, "MlpDataset: need d ≥ 2");
        let mut out = vec![Vec::with_capacity(rounds); nodes];
        let mut rngs: Vec<NormalSampler> = (0..nodes)
            .map(|i| NormalSampler::new(seed.wrapping_add(i as u64 * 7919)))
            .collect();
        for t in 0..rounds {
            // μ rises from -2 toward 0.5 over the run, with outlier dips.
            let progress = t as f64 / rounds.max(1) as f64;
            let mut mu = -2.0 + 2.5 * progress;
            let outlier = (720..740).contains(&t) || (760..780).contains(&t);
            if outlier {
                mu = 0.0;
            }
            for (i, rng) in rngs.iter_mut().enumerate() {
                let mut x = Vec::with_capacity(d);
                x.push(rng.normal(mu, 0.1));
                let center = if i < nodes / 2 { 2.0 } else { -2.0 };
                for _ in 1..d {
                    x.push(rng.normal(center, 0.1));
                }
                out[i].push(x);
            }
        }
        out
    }
}

/// Inner-product evaluation data (paper §4.2): `f(⟨u, v⟩)` follows a
/// schedule of quiet phases and rapid changes — monotonic rise, slow sine,
/// fast sine, constant.
#[derive(Debug, Clone)]
pub struct InnerProductDataset;

impl InnerProductDataset {
    /// Generate raw samples `out[node][round]`, each of dimension `d`
    /// (`d/2` for each of `u` and `v`).
    pub fn generate(nodes: usize, rounds: usize, d: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        assert!(d.is_multiple_of(2) && d > 0, "InnerProductDataset: even d required");
        let half = d / 2;
        let mut out = vec![Vec::with_capacity(rounds); nodes];
        let mut rngs: Vec<NormalSampler> = (0..nodes)
            .map(|i| NormalSampler::new(seed.wrapping_add(i as u64 * 104_729)))
            .collect();
        // Per-coordinate base magnitude keeps f = Σ uᵢvᵢ ≈ a(t)·b(t)
        // regardless of dimension.
        let scale = (1.0 / half as f64).sqrt();
        for t in 0..rounds {
            let phase = t as f64 / rounds.max(1) as f64;
            let (a, b) = Self::targets(phase);
            for (i, rng) in rngs.iter_mut().enumerate() {
                let mut x = Vec::with_capacity(d);
                for _ in 0..half {
                    x.push(a * scale + rng.normal(0.0, 0.05 * scale));
                }
                for _ in 0..half {
                    x.push(b * scale + rng.normal(0.0, 0.05 * scale));
                }
                out[i].push(x);
            }
        }
        out
    }

    /// The `(a(t), b(t))` factor schedule: monotonic rise, low-frequency
    /// sine, high-frequency sine, then a constant plateau.
    fn targets(phase: f64) -> (f64, f64) {
        use std::f64::consts::PI;
        if phase < 0.25 {
            // Monotonic increase from 0.2 to 1.2.
            (0.2 + 4.0 * phase, 1.0)
        } else if phase < 0.5 {
            // Low-frequency sine.
            let t = (phase - 0.25) * 4.0;
            (1.2 + 0.8 * (2.0 * PI * t).sin(), 1.0)
        } else if phase < 0.75 {
            // High-frequency sine: fast enough that coarse periodic
            // sampling aliases it (the paper's "rapid changes").
            let t = (phase - 0.5) * 4.0;
            (1.2 + 0.8 * (40.0 * PI * t).sin(), 1.0)
        } else {
            // Quiet plateau.
            (1.2, 1.0)
        }
    }
}

/// Quadratic-form evaluation data (paper §4.2): every entry `N(0, 0.1²)`,
/// except one "outlier" node alternating 40-round blocks of `N(0, 0.1²)`
/// and `N(-10, 0.1²)`.
#[derive(Debug, Clone)]
pub struct QuadraticDataset;

impl QuadraticDataset {
    /// Generate raw samples `out[node][round]`.
    pub fn generate(nodes: usize, rounds: usize, d: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        let mut out = vec![Vec::with_capacity(rounds); nodes];
        let mut rngs: Vec<NormalSampler> = (0..nodes)
            .map(|i| NormalSampler::new(seed.wrapping_add(i as u64 * 31)))
            .collect();
        for t in 0..rounds {
            for (i, rng) in rngs.iter_mut().enumerate() {
                let outlier_block = i == 0 && (t / 40) % 2 == 1;
                let mean = if outlier_block { -10.0 } else { 0.0 };
                out[i].push((0..d).map(|_| rng.normal(mean, 0.1)).collect());
            }
        }
        out
    }
}

/// Rozenbrock tuning data (paper §3.6, §4.5): `x₁, x₂ ~ N(0, 0.2²)`.
#[derive(Debug, Clone)]
pub struct RozenbrockDataset;

impl RozenbrockDataset {
    /// Generate raw samples `out[node][round]` of dimension 2.
    pub fn generate(nodes: usize, rounds: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        let mut out = vec![Vec::with_capacity(rounds); nodes];
        let mut rngs: Vec<NormalSampler> = (0..nodes)
            .map(|i| NormalSampler::new(seed.wrapping_add(i as u64 * 613)))
            .collect();
        for _ in 0..rounds {
            for (i, rng) in rngs.iter_mut().enumerate() {
                out[i].push(vec![rng.normal(0.0, 0.2), rng.normal(0.0, 0.2)]);
            }
        }
        out
    }
}

/// The §4.6 ablation script: four nodes start at `(0, 0)` and drift
/// linearly toward `(1, 0)`, `(-1, 0)`, `(1, 1)`, `(1, -1)`; two nodes
/// get outlier excursions between rounds 650 and 700.
#[derive(Debug, Clone)]
pub struct SaddleDriftDataset;

impl SaddleDriftDataset {
    /// Generate raw samples `out[node][round]` for exactly four nodes.
    pub fn generate(rounds: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        const TARGETS: [(f64, f64); 4] = [(1.0, 0.0), (-1.0, 0.0), (1.0, 1.0), (1.0, -1.0)];
        let mut out: Vec<Vec<Vec<f64>>> = (0..4).map(|_| Vec::with_capacity(rounds)).collect();
        let mut rngs: Vec<NormalSampler> = (0..4)
            .map(|i| NormalSampler::new(seed.wrapping_add(i as u64 * 97)))
            .collect();
        for t in 0..rounds {
            let progress = t as f64 / rounds.max(1) as f64;
            for (i, rng) in rngs.iter_mut().enumerate() {
                let (tx, ty) = TARGETS[i];
                let mut x = tx * progress;
                let mut y = ty * progress;
                // Outliers on nodes 2 and 3 between rounds 650 and 700.
                if (650..700).contains(&t) && i >= 2 {
                    x += 1.5;
                    y -= 1.5;
                }
                out[i].push(vec![
                    x + rng.normal(0.0, 0.004),
                    y + rng.normal(0.0, 0.004),
                ]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_dataset_shapes_and_outliers() {
        let data = MlpDataset::generate(4, 800, 5, 1);
        assert_eq!(data.len(), 4);
        assert_eq!(data[0].len(), 800);
        assert_eq!(data[0][0].len(), 5);
        // Outlier rounds pull x₁ near 0 while normal late rounds sit near μ.
        let x1_outlier = data[0][725][0];
        assert!(x1_outlier.abs() < 0.5, "outlier x1 = {x1_outlier}");
        // Half the nodes center the tail coordinates at +2, half at -2.
        assert!(data[0][0][1] > 1.0);
        assert!(data[3][0][1] < -1.0);
    }

    #[test]
    fn quadratic_outlier_node_alternates() {
        let data = QuadraticDataset::generate(3, 120, 2, 9);
        // Node 0 in rounds 40..80 is centered at -10.
        assert!(data[0][60][0] < -5.0);
        // Outside the block it's near 0.
        assert!(data[0][10][0].abs() < 1.0);
        // Other nodes never dip.
        assert!(data[1][60][0].abs() < 1.0);
    }

    #[test]
    fn rozenbrock_noise_scale() {
        let data = RozenbrockDataset::generate(2, 500, 3);
        let flat: Vec<f64> = data[0].iter().map(|v| v[0]).collect();
        let mean = flat.iter().sum::<f64>() / flat.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn saddle_drift_targets() {
        let data = SaddleDriftDataset::generate(1000, 4);
        assert_eq!(data.len(), 4);
        // Final positions approach the drift targets.
        let last0 = &data[0][999];
        assert!((last0[0] - 1.0).abs() < 0.1);
        assert!(last0[1].abs() < 0.1);
        let last1 = &data[1][999];
        assert!((last1[0] + 1.0).abs() < 0.1);
        // Outlier block displaces nodes 2 and 3 only.
        let mid2 = &data[2][675];
        let mid1 = &data[1][675];
        assert!(mid2[0] > 1.5);
        assert!(mid1[0] < 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = QuadraticDataset::generate(2, 10, 3, 42);
        let b = QuadraticDataset::generate(2, 10, 3, 42);
        assert_eq!(a, b);
        let c = QuadraticDataset::generate(2, 10, 3, 43);
        assert_ne!(a, c);
    }
}
