//! AMS-style linear sketches of frequency vectors.
//!
//! The paper's §5 observes that AutoMon composes with *linear* sketches:
//! since `sketch(Σᵢ xᵢ) = Σᵢ sketch(xᵢ)` for a shared seed, the average
//! of per-node sketches is the sketch of the average frequency vector,
//! so AutoMon can monitor `f = query ∘ sketch` by treating the sketch as
//! the local vector. This module provides the classic AMS (tug-of-war)
//! sketch in the turnstile model; the matching second-moment query
//! function lives in `automon-functions` (`F2FromSketch`) — a quadratic
//! form, so AutoMon automatically selects ADCD-E for it.

/// An AMS (tug-of-war) sketch: `s_j = Σ_i σ_j(i) · c_i` for item counts
/// `c` and per-row random signs `σ_j`.
///
/// ```
/// use automon_data::sketch::AmsSketch;
///
/// let mut sk = AmsSketch::new(256, 42);
/// sk.update(7, 3.0);   // item 7 seen three times
/// sk.update(9, 4.0);   // item 9 seen four times
/// // F₂ = 3² + 4² = 25, estimated from the sketch alone.
/// assert!((sk.f2_estimate() - 25.0).abs() < 12.0);
/// // Turnstile deletes work too:
/// sk.update(9, -4.0);
/// assert!((sk.f2_estimate() - 9.0).abs() < 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct AmsSketch {
    width: usize,
    seed: u64,
    state: Vec<f64>,
}

impl AmsSketch {
    /// A zeroed sketch of `width` counters.
    ///
    /// All sketches that will be aggregated must share the same `seed`
    /// (that is what makes the sign functions — and thus the sketch —
    /// identical linear maps on every node).
    ///
    /// # Panics
    /// Panics when `width` is zero.
    pub fn new(width: usize, seed: u64) -> Self {
        assert!(width > 0, "AmsSketch: zero width");
        Self {
            width,
            seed,
            state: vec![0.0; width],
        }
    }

    /// Number of counters.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The random sign `σ_j(item) ∈ {-1, +1}` (splitmix64-based hash,
    /// deterministic in `(seed, row, item)`).
    pub fn sign(&self, row: usize, item: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add((row as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(item.wrapping_mul(0xBF58476D1CE4E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        if z & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Turnstile update: item count changes by `delta`.
    pub fn update(&mut self, item: u64, delta: f64) {
        for j in 0..self.width {
            self.state[j] += self.sign(j, item) * delta;
        }
    }

    /// The sketch vector (AutoMon's local vector).
    pub fn vector(&self) -> &[f64] {
        &self.state
    }

    /// The sketch's own second-moment (F₂) estimate: `mean_j s_j²`.
    pub fn f2_estimate(&self) -> f64 {
        self.state.iter().map(|s| s * s).sum::<f64>() / self.width as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_deterministic_and_balanced() {
        let s = AmsSketch::new(8, 42);
        assert_eq!(s.sign(0, 7), s.sign(0, 7));
        let mut plus = 0;
        for item in 0..1000u64 {
            if s.sign(3, item) > 0.0 {
                plus += 1;
            }
        }
        assert!((400..600).contains(&plus), "plus = {plus}");
    }

    #[test]
    fn sketch_is_linear_in_updates() {
        let mut a = AmsSketch::new(16, 7);
        let mut b = AmsSketch::new(16, 7);
        let mut sum = AmsSketch::new(16, 7);
        for (item, delta) in [(1u64, 2.0), (5, -1.0), (9, 3.0)] {
            a.update(item, delta);
            sum.update(item, delta);
        }
        for (item, delta) in [(2u64, 1.0), (5, 4.0)] {
            b.update(item, delta);
            sum.update(item, delta);
        }
        let merged: Vec<f64> = a
            .vector()
            .iter()
            .zip(b.vector())
            .map(|(x, y)| x + y)
            .collect();
        for (m, s) in merged.iter().zip(sum.vector()) {
            assert!((m - s).abs() < 1e-12);
        }
    }

    #[test]
    fn f2_estimate_is_close_for_wide_sketch() {
        // True F2 of counts {a: 3, b: 4} is 25.
        let mut s = AmsSketch::new(512, 11);
        s.update(100, 3.0);
        s.update(200, 4.0);
        let est = s.f2_estimate();
        assert!((est - 25.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = AmsSketch::new(4, 1);
        let b = AmsSketch::new(4, 2);
        let diff = (0..100u64).any(|i| a.sign(0, i) != b.sign(0, i));
        assert!(diff);
    }
}
