//! Sliding windows over data streams.

use std::collections::VecDeque;

/// A fixed-capacity sliding window maintaining the mean of the last `W`
/// sample vectors (paper §4.1: "the local vector is defined as the
/// average of the last W samples in the window").
///
/// ```
/// use automon_data::SlidingWindow;
///
/// let mut w = SlidingWindow::new(2, 1);
/// w.push(vec![1.0]);
/// w.push(vec![3.0]);
/// assert_eq!(w.mean(), Some(vec![2.0]));
/// w.push(vec![5.0]); // evicts 1.0
/// assert_eq!(w.mean(), Some(vec![4.0]));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    cap: usize,
    dim: usize,
    buf: VecDeque<Vec<f64>>,
    sum: Vec<f64>,
}

impl SlidingWindow {
    /// A window of `cap` samples of dimension `dim`.
    ///
    /// # Panics
    /// Panics when `cap` is zero.
    pub fn new(cap: usize, dim: usize) -> Self {
        assert!(cap > 0, "SlidingWindow: capacity must be positive");
        Self {
            cap,
            dim,
            buf: VecDeque::with_capacity(cap + 1),
            sum: vec![0.0; dim],
        }
    }

    /// Push a sample, evicting the oldest when full.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn push(&mut self, sample: Vec<f64>) {
        assert_eq!(sample.len(), self.dim, "SlidingWindow: dimension mismatch");
        for (s, x) in self.sum.iter_mut().zip(&sample) {
            *s += x;
        }
        self.buf.push_back(sample);
        if self.buf.len() > self.cap {
            let old = self.buf.pop_front().expect("non-empty buffer");
            for (s, x) in self.sum.iter_mut().zip(&old) {
                *s -= x;
            }
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no samples were pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` once the window holds `cap` samples.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// The mean of the buffered samples, or `None` when empty.
    ///
    /// Recomputed from the running sum; the eviction arithmetic keeps it
    /// O(d) per call.
    pub fn mean(&self) -> Option<Vec<f64>> {
        if self.buf.is_empty() {
            return None;
        }
        let inv = 1.0 / self.buf.len() as f64;
        Some(self.sum.iter().map(|s| s * inv).collect())
    }
}

/// Turn raw per-node sample streams into local-vector series using a mean
/// sliding window of length `w`. The series starts once the window is
/// full (paper §4.2: "We start updating the nodes with data only after
/// all the sliding windows of all the nodes are full").
pub fn windowed_mean_series(raw: &[Vec<Vec<f64>>], w: usize) -> Vec<Vec<Vec<f64>>> {
    raw.iter()
        .map(|stream| {
            let dim = stream.first().map(Vec::len).unwrap_or(0);
            let mut win = SlidingWindow::new(w, dim);
            let mut out = Vec::with_capacity(stream.len().saturating_sub(w - 1));
            for s in stream {
                win.push(s.clone());
                if win.is_full() {
                    out.push(win.mean().expect("full window has a mean"));
                }
            }
            out
        })
        .collect()
}

/// A sliding window of scalar pairs binned into two histograms — the KLD
/// local vector `[p, q]` (paper §4.2: PM10 as `P`, PM2.5 as `Q`, values
/// in `[0, max_value]` split into `bins` bins).
#[derive(Debug, Clone)]
pub struct HistogramWindow {
    bins: usize,
    max_value: f64,
    cap: usize,
    buf: VecDeque<(usize, usize)>,
    counts_p: Vec<usize>,
    counts_q: Vec<usize>,
}

impl HistogramWindow {
    /// A histogram window of `cap` pairs, `bins` bins over
    /// `[0, max_value]`.
    ///
    /// # Panics
    /// Panics when `cap` or `bins` is zero, or `max_value ≤ 0`.
    pub fn new(cap: usize, bins: usize, max_value: f64) -> Self {
        assert!(cap > 0 && bins > 0, "HistogramWindow: empty shape");
        assert!(max_value > 0.0, "HistogramWindow: non-positive range");
        Self {
            bins,
            max_value,
            cap,
            buf: VecDeque::with_capacity(cap + 1),
            counts_p: vec![0; bins],
            counts_q: vec![0; bins],
        }
    }

    fn bin(&self, v: f64) -> usize {
        let t = (v / self.max_value).clamp(0.0, 1.0);
        ((t * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// Push one `(p_value, q_value)` pair.
    pub fn push(&mut self, p_value: f64, q_value: f64) {
        let bp = self.bin(p_value);
        let bq = self.bin(q_value);
        self.counts_p[bp] += 1;
        self.counts_q[bq] += 1;
        self.buf.push_back((bp, bq));
        if self.buf.len() > self.cap {
            let (op, oq) = self.buf.pop_front().expect("non-empty buffer");
            self.counts_p[op] -= 1;
            self.counts_q[oq] -= 1;
        }
    }

    /// `true` once the window holds `cap` pairs.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// The packed local vector `[p, q]` of bin proportions
    /// (length `2 · bins`), or `None` when empty.
    pub fn local_vector(&self) -> Option<Vec<f64>> {
        if self.buf.is_empty() {
            return None;
        }
        let inv = 1.0 / self.buf.len() as f64;
        let mut out = Vec::with_capacity(2 * self.bins);
        out.extend(self.counts_p.iter().map(|&c| c as f64 * inv));
        out.extend(self.counts_q.iter().map(|&c| c as f64 * inv));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_mean_matches_direct_mean() {
        let mut w = SlidingWindow::new(3, 1);
        w.push(vec![1.0]);
        w.push(vec![2.0]);
        assert_eq!(w.mean(), Some(vec![1.5]));
        w.push(vec![3.0]);
        assert!(w.is_full());
        assert_eq!(w.mean(), Some(vec![2.0]));
        w.push(vec![10.0]); // evicts 1.0
        assert_eq!(w.mean(), Some(vec![5.0]));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn empty_window_has_no_mean() {
        let w = SlidingWindow::new(2, 3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
    }

    #[test]
    fn windowed_series_starts_when_full() {
        let raw = vec![vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]];
        let out = windowed_mean_series(&raw, 2);
        assert_eq!(out[0], vec![vec![1.5], vec![2.5], vec![3.5]]);
    }

    #[test]
    fn histogram_window_proportions() {
        let mut h = HistogramWindow::new(4, 2, 10.0);
        h.push(1.0, 9.0); // p-bin 0, q-bin 1
        h.push(2.0, 8.0); // p-bin 0, q-bin 1
        h.push(7.0, 1.0); // p-bin 1, q-bin 0
        h.push(8.0, 2.0);
        assert!(h.is_full());
        let v = h.local_vector().unwrap();
        assert_eq!(v, vec![0.5, 0.5, 0.5, 0.5]);
        // Eviction shifts proportions: evicting (1, 9) and adding (9, 9)
        // moves one p count from bin 0 to bin 1 and leaves q unchanged.
        h.push(9.0, 9.0);
        let v = h.local_vector().unwrap();
        assert_eq!(v, vec![0.25, 0.75, 0.5, 0.5]);
    }

    #[test]
    fn bin_edges_clamp() {
        let h = HistogramWindow::new(1, 5, 500.0);
        assert_eq!(h.bin(-3.0), 0);
        assert_eq!(h.bin(0.0), 0);
        assert_eq!(h.bin(499.9), 4);
        assert_eq!(h.bin(500.0), 4);
        assert_eq!(h.bin(1e9), 4);
    }

    #[test]
    fn histogram_sums_to_one_per_half() {
        let mut h = HistogramWindow::new(8, 3, 100.0);
        for i in 0..20 {
            h.push((i * 7 % 100) as f64, (i * 13 % 100) as f64);
        }
        let v = h.local_vector().unwrap();
        let p_sum: f64 = v[..3].iter().sum();
        let q_sum: f64 = v[3..].iter().sum();
        assert!((p_sum - 1.0).abs() < 1e-12);
        assert!((q_sum - 1.0).abs() < 1e-12);
    }
}
