//! Simulated network-connection records (KDD-Cup-99 substitute).
//!
//! The paper's DNN experiment streams the "Corrected KDD" test set —
//! 311,029 connection records with 41 features, split across 9 nodes by
//! application type, one record (one node update) per simulation round.
//! We cannot ship KDD, so this module generates a Gaussian-mixture
//! substitute that preserves what drives AutoMon's communication
//! (DESIGN.md §4): 41-dim feature vectors, per-application distribution
//! skew, slowly drifting normals punctuated by bursty attack windows, and
//! the one-node-per-round update schedule.
//!
//! The same generator produces a labeled training set for fitting the
//! monitored DNN with `automon-nn`.

use crate::NormalSampler;

/// Number of features per connection record (as in KDD-Cup-99).
pub const FEATURES: usize = 41;

/// Number of monitoring nodes in the paper's split.
pub const NODES: usize = 9;

/// One connection record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Feature vector (length [`FEATURES`]), roughly standardized.
    pub features: Vec<f64>,
    /// `true` for attack traffic.
    pub is_attack: bool,
    /// Application class (drives the node assignment).
    pub app: AppClass,
}

/// Application classes mirroring the paper's node split: one dominant
/// class split round-robin over 5 nodes, one over 2 nodes, one single-node
/// class, and a long tail on the last node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// "ECR_i"-like dominant class → nodes 0..5.
    EcrLike,
    /// "Private"-like class → nodes 5..7.
    PrivateLike,
    /// "Http"-like class → node 7.
    HttpLike,
    /// Everything else → node 8.
    Tail,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct IntrusionParams {
    /// Total records in the stream (the paper streams 311,029).
    pub records: usize,
    /// Fraction of attack records overall.
    pub attack_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IntrusionParams {
    fn default() -> Self {
        Self {
            records: 20_000,
            attack_fraction: 0.2,
            seed: 0x0DD5EED,
        }
    }
}

/// The generated dataset: a timestamp-ordered stream plus its node split.
#[derive(Debug, Clone)]
pub struct IntrusionDataset {
    /// Timestamp-ordered events: `(node, record)`.
    pub events: Vec<(usize, Record)>,
}

impl IntrusionDataset {
    /// Generate the stream.
    pub fn generate(params: &IntrusionParams) -> Self {
        let mut rng = NormalSampler::new(params.seed);
        let mut round_robin_ecr = 0usize;
        let mut round_robin_private = 0usize;
        let mut events = Vec::with_capacity(params.records);
        // Attack activity arrives in bursts: a two-state process whose
        // stationary burst occupancy is chosen so the overall attack
        // rate hits `attack_fraction`. With attack probabilities of 0.85
        // in-burst and 0.02 quiet, occupancy must be
        // (fraction − 0.02) / (0.85 − 0.02), and with a fixed burst-exit
        // rate the entry rate follows from occ = entry / (entry + exit).
        const BURST_ATTACK: f64 = 0.85;
        const QUIET_ATTACK: f64 = 0.02;
        const BURST_EXIT: f64 = 0.01;
        let occupancy = ((params.attack_fraction - QUIET_ATTACK) / (BURST_ATTACK - QUIET_ATTACK))
            .clamp(0.0, 0.95);
        let burst_entry = BURST_EXIT * occupancy / (1.0 - occupancy);
        let mut in_burst = false;
        for t in 0..params.records {
            if in_burst {
                if rng.chance(BURST_EXIT) {
                    in_burst = false;
                }
            } else if rng.chance(burst_entry) {
                in_burst = true;
            }
            let is_attack = if in_burst {
                rng.chance(BURST_ATTACK)
            } else {
                rng.chance(QUIET_ATTACK)
            };
            // Application mix: ECR-like dominates (55%), private 25%,
            // http 12%, tail 8% — mirroring KDD's heavy skew.
            let u = rng.uniform();
            let app = if u < 0.55 {
                AppClass::EcrLike
            } else if u < 0.80 {
                AppClass::PrivateLike
            } else if u < 0.92 {
                AppClass::HttpLike
            } else {
                AppClass::Tail
            };
            let node = match app {
                AppClass::EcrLike => {
                    round_robin_ecr = (round_robin_ecr + 1) % 5;
                    round_robin_ecr
                }
                AppClass::PrivateLike => {
                    round_robin_private = (round_robin_private + 1) % 2;
                    5 + round_robin_private
                }
                AppClass::HttpLike => 7,
                AppClass::Tail => 8,
            };
            let drift = (t as f64 / params.records.max(1) as f64) * 0.25;
            let features = Self::features(&mut rng, app, is_attack, drift);
            events.push((node, Record { features, is_attack, app }));
        }
        Self { events }
    }

    /// Draw a 41-dim feature vector for one record.
    ///
    /// Each application class has its own mean profile; attacks shift a
    /// subset of "volume" features sharply (mirroring how DoS-style KDD
    /// attacks light up count/rate features). A slow drift term moves the
    /// normal profile over time.
    fn features(rng: &mut NormalSampler, app: AppClass, is_attack: bool, drift: f64) -> Vec<f64> {
        let app_offset = match app {
            AppClass::EcrLike => 0.0,
            AppClass::PrivateLike => 0.6,
            AppClass::HttpLike => -0.5,
            AppClass::Tail => 1.2,
        };
        (0..FEATURES)
            .map(|j| {
                let base = 0.3 * ((j as f64 * 0.7).sin()) + app_offset * ((j % 5) as f64 * 0.2);
                let attack_shift = if is_attack && j % 4 == 0 { 0.9 } else { 0.0 };
                base + drift + attack_shift + rng.normal(0.0, 0.55)
            })
            .collect()
    }

    /// Per-node raw sample streams (`out[node][k]` = k-th record's
    /// features on that node), losing the global ordering.
    pub fn node_streams(&self) -> Vec<Vec<Vec<f64>>> {
        let mut out = vec![Vec::new(); NODES];
        for (node, rec) in &self.events {
            out[*node].push(rec.features.clone());
        }
        out
    }

    /// A labeled training set of `n` records (independent draw with the
    /// same mixture), for fitting the monitored DNN.
    pub fn training_set(params: &IntrusionParams, n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let gen = Self::generate(&IntrusionParams {
            records: n,
            seed: params.seed ^ 0x7EA1,
            ..params.clone()
        });
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for (_, rec) in gen.events {
            xs.push(rec.features);
            ys.push(vec![if rec.is_attack { 1.0 } else { 0.0 }]);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IntrusionParams {
        IntrusionParams {
            records: 5000,
            attack_fraction: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_count_and_shape() {
        let ds = IntrusionDataset::generate(&params());
        assert_eq!(ds.events.len(), 5000);
        assert!(ds.events.iter().all(|(n, r)| *n < NODES && r.features.len() == FEATURES));
    }

    #[test]
    fn node_split_mirrors_paper_skew() {
        let ds = IntrusionDataset::generate(&params());
        let mut counts = [0usize; NODES];
        for (n, _) in &ds.events {
            counts[*n] += 1;
        }
        // ECR-like round robin: nodes 0..5 roughly equal.
        let ecr_avg = counts[..5].iter().sum::<usize>() as f64 / 5.0;
        for &c in &counts[..5] {
            assert!((c as f64 - ecr_avg).abs() / ecr_avg < 0.2);
        }
        // Every node sees traffic.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn attacks_arrive_in_bursts() {
        let ds = IntrusionDataset::generate(&params());
        let attacks: Vec<bool> = ds.events.iter().map(|(_, r)| r.is_attack).collect();
        let total = attacks.iter().filter(|&&a| a).count();
        assert!(total > 100, "attacks present: {total}");
        // Burstiness: the probability an attack follows an attack is far
        // higher than the base rate.
        let mut follow = 0usize;
        let mut follow_total = 0usize;
        for w in attacks.windows(2) {
            if w[0] {
                follow_total += 1;
                if w[1] {
                    follow += 1;
                }
            }
        }
        let cond = follow as f64 / follow_total.max(1) as f64;
        let base = total as f64 / attacks.len() as f64;
        assert!(cond > 2.0 * base, "cond {cond} vs base {base}");
    }

    #[test]
    fn attack_features_are_separable() {
        let ds = IntrusionDataset::generate(&params());
        let mean_of = |attack: bool| -> f64 {
            let sel: Vec<&Record> = ds
                .events
                .iter()
                .map(|(_, r)| r)
                .filter(|r| r.is_attack == attack)
                .collect();
            sel.iter().map(|r| r.features[0]).sum::<f64>() / sel.len().max(1) as f64
        };
        // Feature 0 is attack-shifted (j % 4 == 0).
        assert!(mean_of(true) - mean_of(false) > 0.3);
    }

    #[test]
    fn training_set_shapes() {
        let (xs, ys) = IntrusionDataset::training_set(&params(), 300);
        assert_eq!(xs.len(), 300);
        assert_eq!(ys.len(), 300);
        assert!(ys.iter().any(|y| y[0] == 1.0));
        assert!(ys.iter().any(|y| y[0] == 0.0));
    }

    #[test]
    fn node_streams_preserve_all_records() {
        let ds = IntrusionDataset::generate(&params());
        let streams = ds.node_streams();
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 5000);
    }
}
