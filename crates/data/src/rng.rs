//! Seeded Gaussian sampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic N(0, 1) sampler (Box–Muller over `SmallRng`).
///
/// The `rand_distr` crate is deliberately not used: the pre-approved
/// dependency set contains only `rand`, and Box–Muller is all the
/// evaluation needs.
#[derive(Debug, Clone)]
pub struct NormalSampler {
    rng: SmallRng,
    spare: Option<f64>,
}

impl NormalSampler {
    /// A sampler seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// One standard-normal draw.
    pub fn standard(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One N(mean, std²) draw.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard()
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// A uniform integer in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// A Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = NormalSampler::new(5);
        let mut b = NormalSampler::new(5);
        for _ in 0..10 {
            assert_eq!(a.standard(), b.standard());
        }
    }

    #[test]
    fn moments_are_plausible() {
        let mut s = NormalSampler::new(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| s.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn helpers_in_range() {
        let mut s = NormalSampler::new(2);
        for _ in 0..100 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
            assert!(s.below(7) < 7);
        }
    }
}
