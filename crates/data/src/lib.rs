//! Datasets and stream plumbing for the AutoMon evaluation (paper §4.2).
//!
//! Synthetic generators reproduce the paper's described processes exactly;
//! the two real-world datasets the paper uses (KDD-Cup-99 and the Beijing
//! multi-site air-quality archive) are replaced by *simulated substitutes*
//! that preserve the trajectory characteristics driving AutoMon's
//! communication — drift, bursts, node skew, and update schedules. The
//! substitutions are documented in DESIGN.md §4.
//!
//! Everything is deterministic under a seed.
//!
//! * [`SlidingWindow`] / [`windowed_mean_series`] — the mean-of-last-`W`
//!   local vectors of §4.1.
//! * [`HistogramWindow`] — binned probability vectors over a sliding
//!   window (KLD's `[p, q]` local vectors).
//! * [`synthetic`] — MLP-d drift data, inner-product phases, quadratic
//!   outlier node, Rozenbrock noise, and the §4.6 saddle-drift script.
//! * [`air_quality`] — 12-site correlated AR(1) pollutant processes
//!   (Beijing substitute).
//! * [`intrusion`] — Gaussian-mixture connection records with
//!   application-skewed node assignment and one-node-per-round updates
//!   (KDD substitute).

pub mod air_quality;
pub mod intrusion;
pub mod regression;
mod rng;
pub mod sketch;
pub mod synthetic;
mod window;

pub use rng::NormalSampler;
pub use window::{windowed_mean_series, HistogramWindow, SlidingWindow};
