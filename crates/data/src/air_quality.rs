//! Simulated multi-site air-quality data (Beijing-archive substitute).
//!
//! The paper's KLD experiment uses hourly PM10/PM2.5 readings from 12
//! Beijing monitoring sites over four years. We cannot ship that archive,
//! so this module generates a statistically similar process — per
//! DESIGN.md §4, what drives AutoMon's communication is the binned
//! probability-vector dynamics, which this reproduces:
//!
//! * values in `[0, 500]` (the paper's binning range),
//! * smooth AR(1) drift with a daily (24-hour) cycle,
//! * occasional multi-day pollution episodes shared across sites
//!   (cross-site correlation),
//! * PM2.5 correlated with, but distinct from, PM10.

use crate::NormalSampler;

/// One site's hourly `(pm10, pm25)` stream.
pub type SiteStream = Vec<(f64, f64)>;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct AirQualityParams {
    /// Number of monitoring sites (the paper has 12).
    pub sites: usize,
    /// Hourly records per site (the paper has 34,536).
    pub hours: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirQualityParams {
    fn default() -> Self {
        Self {
            sites: 12,
            hours: 4000,
            seed: 0xA1,
        }
    }
}

/// Generate the simulated archive: `out[site][hour] = (pm10, pm25)`.
pub fn generate(params: &AirQualityParams) -> Vec<SiteStream> {
    let AirQualityParams { sites, hours, seed } = *params;
    let mut shared = NormalSampler::new(seed);
    // City-wide episode process: a slow AR(1) level plus rare spikes.
    // The time constants are long (multi-day) so the *binned histogram*
    // drifts slowly per hour, matching the pace of the real archive.
    let mut slow = 0.0f64; // multi-week baseline wander
    let mut episode = 0.0f64; // day-scale pollution episodes
    let mut episodes = Vec::with_capacity(hours);
    for _ in 0..hours {
        slow = 0.9995 * slow + shared.normal(0.0, 0.6);
        episode *= 0.965; // ~20 h half-life: sharp rise, day-scale decay
        if shared.chance(0.004) {
            episode += shared.normal(130.0, 30.0).abs();
        }
        episodes.push((slow + episode).max(0.0));
    }

    (0..sites)
        .map(|s| {
            let mut rng = NormalSampler::new(seed.wrapping_add(1 + s as u64 * 65_537));
            let base10 = 80.0 + rng.normal(0.0, 10.0);
            let ratio = 0.55 + 0.1 * rng.uniform(); // PM2.5 / PM10 fraction
            let mut level = 0.0f64;
            (0..hours)
                .map(|h| {
                    level = 0.995 * level + rng.normal(0.0, 1.5);
                    let daily = 10.0 * (2.0 * std::f64::consts::PI * h as f64 / 24.0).sin();
                    let pm10 =
                        (base10 + daily + level + episodes[h] + rng.normal(0.0, 3.0))
                            .clamp(0.0, 500.0);
                    let pm25 = (pm10 * ratio + rng.normal(0.0, 4.0)).clamp(0.0, 500.0);
                    (pm10, pm25)
                })
                .collect()
        })
        .collect()
}

/// Bin the site streams into KLD local-vector series `out[site][round]`
/// with a histogram window of length `window` and `bins` bins per
/// attribute (paper: `W = 200`, `d/2` bins over `[0, 500]`). Rounds start
/// once all windows are full.
pub fn kld_series(streams: &[SiteStream], window: usize, bins: usize) -> Vec<Vec<Vec<f64>>> {
    streams
        .iter()
        .map(|stream| {
            let mut win = crate::HistogramWindow::new(window, bins, 500.0);
            let mut out = Vec::new();
            for &(p, q) in stream {
                win.push(p, q);
                if win.is_full() {
                    out.push(win.local_vector().expect("full window"));
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape_in_range() {
        let params = AirQualityParams {
            sites: 3,
            hours: 500,
            seed: 7,
        };
        let data = generate(&params);
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].len(), 500);
        for site in &data {
            for &(p, q) in site {
                assert!((0.0..=500.0).contains(&p));
                assert!((0.0..=500.0).contains(&q));
            }
        }
    }

    #[test]
    fn pm25_tracks_pm10() {
        let data = generate(&AirQualityParams {
            sites: 1,
            hours: 2000,
            seed: 3,
        });
        let (sum10, sum25) = data[0]
            .iter()
            .fold((0.0, 0.0), |(a, b), &(p, q)| (a + p, b + q));
        assert!(sum25 < sum10, "PM2.5 should average below PM10");
        assert!(sum25 > 0.3 * sum10, "but remain correlated");
    }

    #[test]
    fn kld_series_is_normalized() {
        let data = generate(&AirQualityParams {
            sites: 2,
            hours: 300,
            seed: 11,
        });
        let series = kld_series(&data, 100, 5);
        assert_eq!(series[0].len(), 300 - 100 + 1);
        for v in &series[0] {
            assert_eq!(v.len(), 10);
            let p: f64 = v[..5].iter().sum();
            let q: f64 = v[5..].iter().sum();
            assert!((p - 1.0).abs() < 1e-9);
            assert!((q - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = AirQualityParams {
            sites: 2,
            hours: 50,
            seed: 5,
        };
        assert_eq!(generate(&p), generate(&p));
    }
}
