//! Augmented local vectors for least-squares monitoring.
//!
//! The paper's §6 notes that many computations become functions of the
//! average by *augmenting* the local vectors (citing the least-squares
//! monitoring of Gabel et al., KDD '15). This module provides that
//! rewriting for simple linear regression: each node summarizes its
//! window of `(x, y)` pairs as the moment vector
//! `[ mean(x), mean(y), mean(x²), mean(xy) ]`, whose across-node average
//! is the global moment vector — from which the regression slope (or any
//! moment-expressible statistic) is a plain function
//! (`automon_functions::RegressionSlope`).

use crate::NormalSampler;
use std::collections::VecDeque;

/// A sliding window over `(x, y)` pairs maintaining the regression
/// moment vector `[mx, my, mxx, mxy]`.
#[derive(Debug, Clone)]
pub struct MomentWindow {
    cap: usize,
    buf: VecDeque<(f64, f64)>,
    sums: [f64; 4],
}

impl MomentWindow {
    /// A window of `cap` pairs.
    ///
    /// # Panics
    /// Panics when `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "MomentWindow: zero capacity");
        Self {
            cap,
            buf: VecDeque::with_capacity(cap + 1),
            sums: [0.0; 4],
        }
    }

    /// Push one `(x, y)` pair.
    pub fn push(&mut self, x: f64, y: f64) {
        self.sums[0] += x;
        self.sums[1] += y;
        self.sums[2] += x * x;
        self.sums[3] += x * y;
        self.buf.push_back((x, y));
        if self.buf.len() > self.cap {
            let (ox, oy) = self.buf.pop_front().expect("non-empty");
            self.sums[0] -= ox;
            self.sums[1] -= oy;
            self.sums[2] -= ox * ox;
            self.sums[3] -= ox * oy;
        }
    }

    /// `true` once `cap` pairs are held.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// The moment local vector `[mx, my, mxx, mxy]`, or `None` if empty.
    pub fn local_vector(&self) -> Option<Vec<f64>> {
        if self.buf.is_empty() {
            return None;
        }
        let inv = 1.0 / self.buf.len() as f64;
        Some(self.sums.iter().map(|s| s * inv).collect())
    }
}

/// Generate per-node `(x, y)` streams whose underlying slope drifts over
/// time: `y = slope(t)·x + noise`, `x ~ N(0, 1)`.
pub fn drifting_slope_streams(
    nodes: usize,
    rounds: usize,
    seed: u64,
) -> Vec<Vec<(f64, f64)>> {
    (0..nodes)
        .map(|i| {
            let mut rng = NormalSampler::new(seed.wrapping_add(i as u64 * 127));
            (0..rounds)
                .map(|t| {
                    let slope = 1.0 + 0.8 * (t as f64 / rounds.max(1) as f64)
                        + 0.05 * (i as f64 - nodes as f64 / 2.0) / nodes.max(1) as f64;
                    let x = rng.normal(0.0, 1.0);
                    let y = slope * x + rng.normal(0.0, 0.2);
                    (x, y)
                })
                .collect()
        })
        .collect()
}

/// Turn raw pair streams into moment local-vector series (starting once
/// all windows are full).
pub fn moment_series(streams: &[Vec<(f64, f64)>], window: usize) -> Vec<Vec<Vec<f64>>> {
    streams
        .iter()
        .map(|stream| {
            let mut win = MomentWindow::new(window);
            let mut out = Vec::new();
            for &(x, y) in stream {
                win.push(x, y);
                if win.is_full() {
                    out.push(win.local_vector().expect("full window"));
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_direct_computation() {
        let mut w = MomentWindow::new(3);
        w.push(1.0, 2.0);
        w.push(2.0, 4.0);
        w.push(3.0, 6.0);
        let v = w.local_vector().unwrap();
        let expect = [2.0, 4.0, 14.0 / 3.0, 28.0 / 3.0];
        for (a, b) in v.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Eviction removes the oldest pair.
        w.push(4.0, 8.0);
        let v = w.local_vector().unwrap();
        assert_eq!(v[0], 3.0);
        assert_eq!(v[1], 6.0);
    }

    #[test]
    fn drifting_streams_have_increasing_slope() {
        let streams = drifting_slope_streams(2, 2000, 3);
        // Estimate the slope in the first and last quarter by regression.
        let slope_of = |pairs: &[(f64, f64)]| -> f64 {
            let n = pairs.len() as f64;
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let mxx = pairs.iter().map(|p| p.0 * p.0).sum::<f64>() / n;
            let mxy = pairs.iter().map(|p| p.0 * p.1).sum::<f64>() / n;
            (mxy - mx * my) / (mxx - mx * mx)
        };
        let early = slope_of(&streams[0][..500]);
        let late = slope_of(&streams[0][1500..]);
        assert!(late > early + 0.3, "early {early} late {late}");
    }

    #[test]
    fn moment_series_shapes() {
        let streams = drifting_slope_streams(3, 100, 5);
        let series = moment_series(&streams, 25);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].len(), 76);
        assert_eq!(series[0][0].len(), 4);
    }
}
