//! Property tests for the wire codec: decoding must be total (never
//! panic, whatever the bytes), and corruption must surface as a clean
//! `WireError` or a decodable-but-different message — never UB, never
//! an abort. This is the contract the chaos fabric leans on.

use automon_net::wire::{
    decode_coordinator_message, decode_node_message, decode_node_message_ctx,
    encode_coordinator_message, encode_node_message,
};
use automon_core::{CoordinatorMessage, NodeMessage, ViolationKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte strings decode to `Err`, not a panic.
    #[test]
    fn decode_node_message_is_total(bytes in proptest::collection::vec(0u8..=255u8, 0..256usize)) {
        let _ = decode_node_message(&bytes);
    }

    #[test]
    fn decode_coordinator_message_is_total(bytes in proptest::collection::vec(0u8..=255u8, 0..256usize)) {
        let _ = decode_coordinator_message(&bytes);
    }

    /// Same, but past the magic byte and trace-context header so the
    /// payload parsers get exercised instead of failing at the first
    /// check.
    #[test]
    fn decode_with_valid_magic_is_total(bytes in proptest::collection::vec(0u8..=255u8, 0..256usize)) {
        let mut frame = vec![0xA9u8];
        frame.extend_from_slice(&0u64.to_le_bytes()); // span id slot
        frame.extend_from_slice(&bytes);
        let _ = decode_node_message(&frame);
        let _ = decode_coordinator_message(&frame);
    }

    /// Hostile length prefixes (huge vector/matrix sizes) must be
    /// rejected as truncated, not tank the allocator or overflow.
    #[test]
    fn hostile_lengths_are_rejected(node in 0u32..64u32, len in 0x1000_0000u32..=u32::MAX) {
        // magic, span-id slot, LocalVector tag, node id, epoch, then a
        // length far beyond the actual payload.
        let mut frame = vec![0xA9u8];
        frame.extend_from_slice(&0u64.to_le_bytes());
        frame.push(1);
        frame.extend_from_slice(&node.to_le_bytes());
        frame.extend_from_slice(&7u64.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        prop_assert!(decode_node_message(&frame).is_err());
    }

    /// Encode → round-trip for epoch-tagged node messages over the
    /// whole input space.
    #[test]
    fn node_message_round_trips(
        node in 0usize..1024usize,
        epoch in 0u64..=u64::MAX,
        vector in proptest::collection::vec(-1e12f64..1e12f64, 0..32usize),
        kind_tag in 0u8..4u8,
    ) {
        let kind = match kind_tag {
            0 => ViolationKind::Uninitialized,
            1 => ViolationKind::Neighborhood,
            2 => ViolationKind::SafeZone,
            _ => ViolationKind::FaultyConstraints,
        };
        let msg = NodeMessage::Violation { node, kind, local_vector: vector.clone(), epoch };
        let decoded = decode_node_message(&encode_node_message(&msg)).unwrap();
        prop_assert_eq!(&decoded, &msg);
        let msg = NodeMessage::LocalVector { node, vector, epoch };
        let decoded = decode_node_message(&encode_node_message(&msg)).unwrap();
        prop_assert_eq!(&decoded, &msg);
    }

    /// Epoch-tagged coordinator messages round-trip too (the zone-less
    /// variants; zone-carrying forms are covered by unit tests).
    #[test]
    fn coordinator_message_round_trips(
        epoch in 0u64..=u64::MAX,
        slack in proptest::collection::vec(-1e12f64..1e12f64, 0..32usize),
    ) {
        let msg = CoordinatorMessage::RequestLocalVector { epoch };
        let decoded = decode_coordinator_message(&encode_coordinator_message(&msg)).unwrap();
        prop_assert_eq!(&decoded, &msg);
        let msg = CoordinatorMessage::SlackUpdate { slack, epoch };
        let decoded = decode_coordinator_message(&encode_coordinator_message(&msg)).unwrap();
        prop_assert_eq!(&decoded, &msg);
    }

    /// Encode, corrupt exactly one byte, decode: the result is a clean
    /// `Err` or a structurally valid (different) message — never a
    /// panic. Corrupting the magic byte always fails.
    #[test]
    fn single_byte_corruption_fails_cleanly(
        epoch in 0u64..1000u64,
        vector in proptest::collection::vec(-100.0f64..100.0f64, 1..16usize),
        pos_seed in 0usize..4096usize,
        delta in 1u8..=255u8,
    ) {
        let msg = NodeMessage::LocalVector { node: 3, vector, epoch };
        let frame = encode_node_message(&msg);
        let mut bytes = frame.to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let result = decode_node_message_ctx(&bytes);
        if pos == 0 {
            prop_assert!(result.is_err(), "corrupt magic must be rejected");
        } else if (1..9).contains(&pos) {
            // Bytes 1..9 are the trace-context span id: the message
            // body is untouched, but the corruption must land in the
            // decoded span rather than vanish.
            let (span, decoded) = result.unwrap();
            prop_assert_eq!(&decoded, &msg);
            prop_assert_ne!(span, automon_obs::SpanId::NONE);
        } else if let Ok((_, decoded)) = result {
            // A flipped payload byte may still parse — but then it must
            // differ from the original (no silent identity corruption).
            prop_assert_ne!(decoded, msg);
        }
    }
}
