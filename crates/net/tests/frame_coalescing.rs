//! Property test for frame coalescing: however the byte stream is
//! chunked — one frame per read, many frames per read, splits inside a
//! payload or inside a length prefix — the assembler must recover
//! exactly the frame sequence that was sent.

use automon_net::wire::{self, WireError};
use automon_net::FrameAssembler;
use proptest::prelude::*;

/// Encode payloads the way both transports do: u32 LE length prefix
/// then the payload bytes.
fn to_wire(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for f in frames {
        let prefix = wire::frame_len_prefix(f.len()).expect("test frames under cap");
        stream.extend_from_slice(&prefix.to_le_bytes());
        stream.extend_from_slice(f);
    }
    stream
}

/// Feed `stream` to an assembler in chunks cut at `cuts` and collect
/// every decoded frame.
fn reassemble(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut asm = FrameAssembler::new();
    let mut got = Vec::new();
    let mut pos = 0;
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    bounds.push(stream.len());
    bounds.sort_unstable();
    for b in bounds {
        if b > pos {
            asm.feed(&stream[pos..b]);
            pos = b;
        }
        while let Some(f) = asm.next_frame().expect("valid stream") {
            got.push(f);
        }
    }
    got
}

proptest! {
    /// Arbitrary split boundaries (including mid-length-prefix) decode
    /// to exactly the same frame sequence as one-frame-per-read.
    #[test]
    fn coalesced_reads_decode_identically(
        frames in proptest::collection::vec(proptest::collection::vec(0u8..=255u8, 0..200usize), 0..20usize),
        cuts in proptest::collection::vec(0usize..1_000_000usize, 0..64usize),
    ) {
        let stream = to_wire(&frames);

        // Reference: one whole frame per feed.
        let mut reference = Vec::new();
        let mut asm = FrameAssembler::new();
        for f in &frames {
            let one = to_wire(std::slice::from_ref(f));
            asm.feed(&one);
            while let Some(d) = asm.next_frame().expect("valid") {
                reference.push(d);
            }
        }
        prop_assert_eq!(&reference, &frames);

        // Candidate: the same bytes under arbitrary chunking.
        let got = reassemble(&stream, &cuts);
        prop_assert_eq!(got, frames);
    }

    /// Byte-at-a-time is the worst-case chunking and still decodes.
    #[test]
    fn single_byte_feeds_decode_identically(
        frames in proptest::collection::vec(proptest::collection::vec(0u8..=255u8, 0..64usize), 1..8usize),
    ) {
        let stream = to_wire(&frames);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.feed(&[b]);
            while let Some(f) = asm.next_frame().expect("valid") {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(asm.pending_bytes(), 0);
    }

    /// A prefix advertising more than the wire cap is rejected before
    /// any payload allocation, never silently truncated.
    #[test]
    fn oversized_prefix_always_rejected(extra in 1u64..u32::MAX as u64 - wire::MAX_FRAME_LEN as u64) {
        let bad = (wire::MAX_FRAME_LEN as u64 + extra) as u32;
        let mut asm = FrameAssembler::new();
        asm.feed(&bad.to_le_bytes());
        prop_assert!(matches!(asm.next_frame(), Err(WireError::Oversized(_))));
    }
}
