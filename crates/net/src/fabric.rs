//! Message fabrics: in-process accounting and channel-based transport.

use automon_core::{
    CommCause, CommLedger, Coordinator, CoordinatorMessage, Node, NodeId, NodeMessage, Outbound,
    Parallelism,
};
use automon_obs::{SpanId, Telemetry, TraceCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::wire;

/// Per-direction traffic counters (paper §4.7's payload/traffic split).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages from nodes to the coordinator.
    pub node_to_coord_msgs: usize,
    /// Messages from the coordinator to nodes.
    pub coord_to_node_msgs: usize,
    /// Payload bytes from nodes to the coordinator.
    pub node_to_coord_payload: usize,
    /// Payload bytes from the coordinator to nodes.
    pub coord_to_node_payload: usize,
}

impl TrafficStats {
    /// Total messages in both directions.
    pub fn total_msgs(&self) -> usize {
        self.node_to_coord_msgs + self.coord_to_node_msgs
    }

    /// Total payload bytes in both directions.
    pub fn total_payload(&self) -> usize {
        self.node_to_coord_payload + self.coord_to_node_payload
    }

    /// Total *traffic* bytes including `overhead` per-message transport
    /// framing (TCP/IP + messaging-stack headers; Figure 10's orange
    /// series).
    pub fn total_traffic(&self, overhead: usize) -> usize {
        self.total_payload() + overhead * self.total_msgs()
    }
}

/// An in-process fabric that *really* serializes every message (payload
/// sizes are measured, not estimated) and accounts messages and bytes in
/// both directions while delivering synchronously.
///
/// Sync resolution fans out: one coordinator step can emit a batch of
/// messages to pairwise-distinct nodes, and each receiving node
/// re-evaluates its safe-zone constraints — the expensive part of a
/// full sync at high dimension. [`CountingFabric::route`] evaluates
/// those deliveries on up to [`Parallelism::workers`] threads. Replies
/// are re-enqueued in batch order and counters are accounted in batch
/// order, so the protocol trace and statistics are identical for every
/// worker count.
#[derive(Debug)]
pub struct CountingFabric {
    stats: TrafficStats,
    per_node: Vec<usize>,
    workers: usize,
    ledger: CommLedger,
    round: u64,
    tel: Telemetry,
    cause_map: fn(CommCause) -> CommCause,
}

impl Default for CountingFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl CountingFabric {
    /// A fresh fabric with zeroed counters and default parallelism
    /// ([`Parallelism::Auto`]).
    pub fn new() -> Self {
        Self {
            stats: TrafficStats::default(),
            per_node: Vec::new(),
            workers: Parallelism::default().workers(),
            ledger: CommLedger::default(),
            round: 0,
            tel: Telemetry::disabled(),
            cause_map: std::convert::identity,
        }
    }

    /// Set the fan-out policy for batched node deliveries; typically
    /// forwarded from the coordinator's `MonitorConfig`.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.workers = par.workers();
        self
    }

    /// Attach telemetry: the fabric emits one `comm` trace event per
    /// frame (from its sequential accounting sections, so the trace
    /// stays deterministic under any worker count).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Install a cause map applied at every charge point, *before* the
    /// ledger row, counter bump, and `comm` trace event are written.
    /// The root tier of a sharded fleet installs
    /// [`CommCause::at_root`] here so its flat-protocol machinery is
    /// charged under the inter-tier causes natively — ledger and trace
    /// agree without any merge-time rewriting.
    pub fn with_cause_map(mut self, map: fn(CommCause) -> CommCause) -> Self {
        self.cause_map = map;
        self
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The per-cause communication ledger. Always on — conservation
    /// against [`CountingFabric::stats`] holds by construction, because
    /// the ledger is charged at exactly the counter-bump points.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Set the simulation round subsequent frames are charged to.
    pub fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    fn comm_event(&self, dir: &str, node: NodeId, cause: CommCause, bytes: usize, span: SpanId) {
        self.tel.event(
            "comm",
            &[
                ("dir", dir.into()),
                ("node", node.into()),
                ("cause", cause.name().into()),
                ("bytes", bytes.into()),
                ("span", span.0.into()),
            ],
        );
    }

    /// Messages involving each node (sent or received), for analyzing
    /// skew — e.g. whether the DNN workload's round-robin split keeps
    /// the per-node load balanced.
    pub fn per_node_messages(&self) -> &[usize] {
        &self.per_node
    }

    /// Account one node→coordinator frame of `bytes`: counter bump,
    /// ledger row, per-node tally, and `comm` trace event, with the
    /// installed cause map applied first. Every up-direction charge in
    /// this fabric funnels through here; it is public so a sharded
    /// fleet can charge inter-tier frames (encoded elsewhere) on the
    /// root fabric without double-encoding.
    pub fn account_up(&mut self, node: NodeId, cause: CommCause, bytes: usize, span: SpanId) {
        let cause = (self.cause_map)(cause);
        self.stats.node_to_coord_msgs += 1;
        self.stats.node_to_coord_payload += bytes;
        self.ledger.charge_up(self.round, node, cause, bytes as u64);
        self.bump_node(node);
        self.comm_event("up", node, cause, bytes, span);
    }

    /// Account one coordinator→node frame of `bytes`; the down-direction
    /// mirror of [`CountingFabric::account_up`].
    pub fn account_down(&mut self, node: NodeId, cause: CommCause, bytes: usize, span: SpanId) {
        let cause = (self.cause_map)(cause);
        self.stats.coord_to_node_msgs += 1;
        self.stats.coord_to_node_payload += bytes;
        self.ledger.charge_down(self.round, node, cause, bytes as u64);
        self.bump_node(node);
        self.comm_event("down", node, cause, bytes, span);
    }

    fn bump_node(&mut self, node: usize) {
        if self.per_node.len() <= node {
            self.per_node.resize(node + 1, 0);
        }
        self.per_node[node] += 1;
    }

    /// Deliver a node message to the coordinator (through the codec) and
    /// return its replies, each of which must then be delivered with
    /// [`CountingFabric::deliver_to_node`]. The frame's ledger cause is
    /// classified from the message itself and no span context rides the
    /// header; use [`CountingFabric::deliver_to_coordinator_as`] when the
    /// eliciting context is known.
    pub fn deliver_to_coordinator(
        &mut self,
        coord: &mut Coordinator,
        msg: NodeMessage,
    ) -> Vec<Outbound> {
        let cause = CommCause::of_node_message(&msg);
        self.deliver_to_coordinator_as(coord, msg, cause, SpanId::NONE)
    }

    /// Deliver a node message with an explicit ledger cause and trace
    /// span: the span rides the frame header and parents the
    /// coordinator's handler span; the cause is what the frame's bytes
    /// are charged to (e.g. `Rejoin` for a re-registration after a
    /// crash, `LazySync` for a pull reply).
    pub fn deliver_to_coordinator_as(
        &mut self,
        coord: &mut Coordinator,
        msg: NodeMessage,
        cause: CommCause,
        span: SpanId,
    ) -> Vec<Outbound> {
        let frame = wire::encode_node_message_ctx(&msg, span);
        self.account_up(msg.sender(), cause, frame.len(), span);
        let (ctx_span, decoded) =
            wire::decode_node_message_ctx(&frame).expect("self-encoded frame decodes");
        let epoch = decoded.epoch();
        coord.handle_with_context(decoded, TraceCtx::new(ctx_span, epoch))
    }

    /// Deliver one coordinator message to its node; returns the node's
    /// reply, if any.
    pub fn deliver_to_node(&mut self, node: &mut Node, out: Outbound) -> Option<NodeMessage> {
        self.deliver_to_node_tagged(node, out).map(|(m, _, _)| m)
    }

    /// [`CountingFabric::deliver_to_node`], returning the reply tagged
    /// with the span and cause it inherits from the eliciting outbound —
    /// a pull reply answers the pull, so its bytes are charged to the
    /// pull's cause and its frame carries the pull's span back up.
    pub fn deliver_to_node_tagged(
        &mut self,
        node: &mut Node,
        out: Outbound,
    ) -> Option<(NodeMessage, SpanId, CommCause)> {
        debug_assert_eq!(node.id(), out.to, "misrouted message");
        let frame = wire::encode_coordinator_message_ctx(&out.msg, out.span);
        self.account_down(out.to, out.cause, frame.len(), out.span);
        let (span, decoded) =
            wire::decode_coordinator_message_ctx(&frame).expect("self-encoded frame decodes");
        node.handle(decoded).map(|m| (m, span, out.cause))
    }

    /// Convenience: deliver `first` and every cascading reply until the
    /// exchange quiesces (FIFO, like an ordered transport).
    pub fn route(&mut self, coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) {
        let cause = CommCause::of_node_message(&first);
        self.route_as(coord, nodes, first, cause, SpanId::NONE);
    }

    /// [`CountingFabric::route`] with an explicit cause and span for the
    /// first frame; cascading replies inherit the cause and span of the
    /// outbound that elicited them.
    pub fn route_as(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        first: NodeMessage,
        cause: CommCause,
        span: SpanId,
    ) {
        let mut inbox = std::collections::VecDeque::from([(first, span, cause)]);
        while let Some((m, span, cause)) = inbox.pop_front() {
            let outs = self.deliver_to_coordinator_as(coord, m, cause, span);
            inbox.extend(self.deliver_batch_tagged(nodes, outs));
        }
    }

    /// Deliver a coordinator-originated outbound batch (e.g. the
    /// recovery sync an eviction issues) and every cascading reply to
    /// quiescence, FIFO. Replies inherit each eliciting frame's cause
    /// and span, exactly as in [`CountingFabric::route_as`].
    pub fn route_outbounds(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        outs: Vec<Outbound>,
    ) {
        let mut inbox: std::collections::VecDeque<_> =
            self.deliver_batch_tagged(nodes, outs).into();
        while let Some((m, span, cause)) = inbox.pop_front() {
            let outs = self.deliver_to_coordinator_as(coord, m, cause, span);
            inbox.extend(self.deliver_batch_tagged(nodes, outs));
        }
    }

    /// [`CountingFabric::route_outbounds`] with every frame's ledger
    /// cause overridden first — recovery traffic (`Eviction`, `Rejoin`)
    /// is charged separably from the steady-state cause the coordinator
    /// stamped on the outbound.
    pub fn route_outbounds_as(
        &mut self,
        coord: &mut Coordinator,
        nodes: &mut [Node],
        outs: Vec<Outbound>,
        cause: CommCause,
    ) {
        let outs = outs
            .into_iter()
            .map(|mut o| {
                o.cause = cause;
                o
            })
            .collect();
        self.route_outbounds(coord, nodes, outs);
    }

    /// Deliver one coordinator batch, fanning the per-node constraint
    /// evaluations across worker threads when the batch targets
    /// pairwise-distinct nodes. Replies are returned in batch order and
    /// counters accounted in batch order, exactly as the sequential
    /// delivery loop would.
    pub fn deliver_batch(&mut self, nodes: &mut [Node], outs: Vec<Outbound>) -> Vec<NodeMessage> {
        self.deliver_batch_tagged(nodes, outs)
            .into_iter()
            .map(|(m, _, _)| m)
            .collect()
    }

    /// [`CountingFabric::deliver_batch`], with each reply tagged with
    /// the span and cause inherited from its eliciting outbound.
    pub fn deliver_batch_tagged(
        &mut self,
        nodes: &mut [Node],
        outs: Vec<Outbound>,
    ) -> Vec<(NodeMessage, SpanId, CommCause)> {
        let distinct = {
            let mut seen = vec![false; nodes.len()];
            outs.iter()
                .all(|o| !std::mem::replace(&mut seen[o.to], true))
        };
        if self.workers <= 1 || outs.len() <= 1 || !distinct {
            return outs
                .into_iter()
                .filter_map(|o| {
                    let to = o.to;
                    self.deliver_to_node_tagged(&mut nodes[to], o)
                })
                .collect();
        }

        // Serialize and account up front (batch order) — counters,
        // ledger charges, and `comm` events all land here, in the
        // sequential section — then evaluate node handlers, the
        // expensive part, concurrently.
        let mut decoded = Vec::with_capacity(outs.len());
        let mut tags = Vec::with_capacity(outs.len());
        for out in outs {
            let frame = wire::encode_coordinator_message_ctx(&out.msg, out.span);
            self.account_down(out.to, out.cause, frame.len(), out.span);
            let (span, msg) =
                wire::decode_coordinator_message_ctx(&frame).expect("self-encoded frame decodes");
            decoded.push((out.to, msg));
            tags.push((span, out.cause));
        }

        let mut slots: Vec<Option<&mut Node>> = nodes.iter_mut().map(Some).collect();
        let tasks: Vec<(usize, &mut Node, CoordinatorMessage)> = decoded
            .into_iter()
            .enumerate()
            .map(|(i, (to, msg))| (i, slots[to].take().expect("pairwise distinct"), msg))
            .collect();
        let w = self.workers.min(tasks.len());
        let mut stripes: Vec<Vec<(usize, &mut Node, CoordinatorMessage)>> =
            (0..w).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            stripes[i % w].push(task);
        }
        let parts: Vec<Vec<(usize, Option<NodeMessage>)>> = crossbeam::scope(|s| {
            let handles: Vec<_> = stripes
                .into_iter()
                .map(|stripe| {
                    s.spawn(move |_| {
                        stripe
                            .into_iter()
                            .map(|(i, node, msg)| (i, node.handle(msg)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
        .unwrap_or_else(|e| std::panic::resume_unwind(e));

        let mut replies: Vec<(usize, NodeMessage)> = parts
            .into_iter()
            .flatten()
            .filter_map(|(i, r)| r.map(|m| (i, m)))
            .collect();
        replies.sort_by_key(|&(i, _)| i);
        replies
            .into_iter()
            .map(|(i, m)| {
                let (span, cause) = tags[i];
                (m, span, cause)
            })
            .collect()
    }
}

/// A crossbeam-channel fabric carrying encoded frames between threads —
/// the in-process stand-in for the paper's ZeroMQ deployment (§4.7).
pub struct ChannelFabric {
    coord_rx: Receiver<Vec<u8>>,
    coord_tx: Sender<Vec<u8>>,
    node_txs: Vec<Sender<Vec<u8>>>,
    node_rxs: Vec<Option<Receiver<Vec<u8>>>>,
}

impl ChannelFabric {
    /// A fabric connecting one coordinator with `n` nodes.
    pub fn new(n: usize) -> Self {
        let (coord_tx, coord_rx) = unbounded();
        let mut node_txs = Vec::with_capacity(n);
        let mut node_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            node_txs.push(tx);
            node_rxs.push(Some(rx));
        }
        Self {
            coord_rx,
            coord_tx,
            node_txs,
            node_rxs,
        }
    }

    /// The coordinator's endpoint (take once).
    pub fn coordinator_endpoint(&mut self) -> CoordinatorEndpoint {
        CoordinatorEndpoint {
            rx: self.coord_rx.clone(),
            node_txs: self.node_txs.clone(),
        }
    }

    /// Node `id`'s endpoint (take once per node).
    ///
    /// # Panics
    /// Panics when taken twice for the same node.
    pub fn node_endpoint(&mut self, id: NodeId) -> NodeEndpoint {
        NodeEndpoint {
            id,
            tx: self.coord_tx.clone(),
            rx: self.node_rxs[id].take().expect("endpoint already taken"),
        }
    }
}

/// The coordinator's side of a [`ChannelFabric`].
pub struct CoordinatorEndpoint {
    rx: Receiver<Vec<u8>>,
    node_txs: Vec<Sender<Vec<u8>>>,
}

impl CoordinatorEndpoint {
    /// Block for the next node message; `None` when all nodes hung up.
    pub fn recv(&self) -> Option<NodeMessage> {
        self.recv_traced().map(|(_, m)| m)
    }

    /// Like [`CoordinatorEndpoint::recv`], also yielding the span the
    /// sender propagated in the frame header.
    pub fn recv_traced(&self) -> Option<(SpanId, NodeMessage)> {
        let frame = self.rx.recv().ok()?;
        Some(wire::decode_node_message_ctx(&frame).expect("valid frame"))
    }

    /// Send one outbound message to its node; the outbound's span rides
    /// the frame header.
    pub fn send(&self, out: &Outbound) {
        let frame = wire::encode_coordinator_message_ctx(&out.msg, out.span);
        // A disconnected node (receiver dropped) is fine during shutdown.
        let _ = self.node_txs[out.to].send(frame.to_vec());
    }
}

/// One node's side of a [`ChannelFabric`].
pub struct NodeEndpoint {
    id: NodeId,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl NodeEndpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send a node message to the coordinator.
    pub fn send(&self, msg: &NodeMessage) {
        self.send_traced(msg, SpanId::NONE);
    }

    /// Send a node message, propagating `span` in the frame header.
    pub fn send_traced(&self, msg: &NodeMessage, span: SpanId) {
        let frame = wire::encode_node_message_ctx(msg, span);
        let _ = self.tx.send(frame.to_vec());
    }

    /// Non-blocking poll for a coordinator message.
    pub fn try_recv(&self) -> Option<CoordinatorMessage> {
        let frame = self.rx.try_recv().ok()?;
        Some(wire::decode_coordinator_message(&frame).expect("valid frame"))
    }

    /// Blocking receive; `None` when the coordinator hung up.
    pub fn recv(&self) -> Option<CoordinatorMessage> {
        let frame = self.rx.recv().ok()?;
        Some(wire::decode_coordinator_message(&frame).expect("valid frame"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::{MonitorConfig, MonitoredFunction};
    use std::sync::Arc;

    pub(super) struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    pub(super) fn fabric_mean1() -> Mean1 {
        Mean1
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Mean1))
    }

    #[test]
    fn counting_fabric_accounts_both_directions() {
        let f = f();
        let mut coord = Coordinator::new(f.clone(), 2, MonitorConfig::builder(0.5).build());
        let mut nodes = vec![Node::new(0, f.clone()), Node::new(1, f.clone())];
        let mut fabric = CountingFabric::new();
        for i in 0..2 {
            if let Some(m) = nodes[i].update_data(vec![0.0]) {
                fabric.route(&mut coord, &mut nodes, m);
            }
        }
        let st = fabric.stats().clone();
        // 2 registrations up, 2 NewConstraints down.
        assert_eq!(st.node_to_coord_msgs, 2);
        assert_eq!(st.coord_to_node_msgs, 2);
        assert!(st.node_to_coord_payload > 0);
        assert!(st.coord_to_node_payload > st.node_to_coord_payload);
        assert_eq!(st.total_msgs(), 4);
        assert_eq!(
            st.total_traffic(66),
            st.total_payload() + 66 * st.total_msgs()
        );
        // The ledger charged every frame: totals match the counters
        // exactly, split into registration (up) and full-sync installs
        // (down).
        let ledger = fabric.ledger();
        assert_eq!(
            ledger.check_conservation(st.total_msgs() as u64, st.total_payload() as u64),
            None
        );
        let by_cause = ledger.by_cause();
        assert_eq!(by_cause[&CommCause::Registration].up_msgs, 2);
        assert_eq!(by_cause[&CommCause::Registration].down_msgs, 0);
        assert_eq!(by_cause[&CommCause::FullSync].down_msgs, 2);
        assert_eq!(
            by_cause[&CommCause::FullSync].down_bytes,
            st.coord_to_node_payload as u64
        );
    }

    #[test]
    fn channel_fabric_moves_frames_across_threads() {
        let mut fabric = ChannelFabric::new(1);
        let coord_ep = fabric.coordinator_endpoint();
        let node_ep = fabric.node_endpoint(0);

        let t = std::thread::spawn(move || {
            let msg = coord_ep.recv().expect("one message");
            assert_eq!(msg.sender(), 0);
            coord_ep.send(&Outbound::new(
                0,
                CoordinatorMessage::RequestLocalVector { epoch: 0 },
                CommCause::FullSync,
            ));
        });

        node_ep.send(&NodeMessage::LocalVector {
            node: 0,
            vector: vec![1.0, 2.0],
            epoch: 0,
        });
        let got = node_ep.recv().expect("reply");
        assert_eq!(got, CoordinatorMessage::RequestLocalVector { epoch: 0 });
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "endpoint already taken")]
    fn node_endpoint_single_take() {
        let mut fabric = ChannelFabric::new(1);
        let _a = fabric.node_endpoint(0);
        let _b = fabric.node_endpoint(0);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use automon_core::{Coordinator, Node};
    use std::sync::Arc;

    #[test]
    fn per_node_counters_track_involvement() {
        let f: Arc<dyn automon_core::MonitoredFunction> = Arc::new(
            automon_autodiff::AutoDiffFn::new(super::tests::fabric_mean1()),
        );
        let mut coord =
            Coordinator::new(f.clone(), 2, automon_core::MonitorConfig::builder(0.5).build());
        let mut nodes = vec![Node::new(0, f.clone()), Node::new(1, f.clone())];
        let mut fabric = CountingFabric::new();
        for i in 0..2 {
            if let Some(m) = nodes[i].update_data(vec![0.0]) {
                fabric.route(&mut coord, &mut nodes, m);
            }
        }
        // Each node: 1 registration + 1 constraint install.
        assert_eq!(fabric.per_node_messages(), &[2, 2]);
        let total: usize = fabric.per_node_messages().iter().sum();
        assert_eq!(total, fabric.stats().total_msgs());
    }

    #[test]
    fn traffic_stats_arithmetic() {
        let st = TrafficStats {
            node_to_coord_msgs: 3,
            coord_to_node_msgs: 2,
            node_to_coord_payload: 100,
            coord_to_node_payload: 250,
        };
        assert_eq!(st.total_msgs(), 5);
        assert_eq!(st.total_payload(), 350);
        assert_eq!(st.total_traffic(0), 350);
        assert_eq!(st.total_traffic(66), 350 + 5 * 66);
    }
}
