//! TCP transport: AutoMon's protocol over real sockets.
//!
//! The paper's deployment moves frames with ZeroMQ (§3.8, §4.7); this
//! module is the dependency-free equivalent on `std::net`. Frames are
//! length-prefixed wire-codec messages; each node opens one connection
//! and introduces itself with a hello frame carrying its id. An empty
//! frame (zero-length payload) is a heartbeat: it refreshes the sender's
//! liveness clock and is never surfaced to the protocol.
//!
//! Concurrency model: the coordinator accepts the initial `n` node
//! connections, then keeps accepting in a background thread so a crashed
//! node can reconnect; a reader thread per connection decodes frames into
//! one mpsc channel, and replies are written to per-node writer slots. A
//! slot empties when its connection dies and refills when the node dials
//! back in. Nodes use a plain blocking or polling read on their single
//! connection, with bounded connect-retry and reconnect-on-send-failure
//! (see [`RetryPolicy`]).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use automon_core::{CoordinatorMessage, NodeId, NodeMessage, Outbound};
use automon_obs::{Counter, SpanId, Telemetry};

use crate::backoff::Backoff;
use crate::poller::SyscallStats;
use crate::wire;

// Process-wide syscall tally for the threaded backend's frame I/O, the
// comparison point for the reactor's per-poller [`SyscallStats`]. The
// threaded transport has no central object every reader thread can
// reach cheaply, so the count is global — fine for the bench, which
// runs one transport per process.
static THREADED_READS: AtomicU64 = AtomicU64::new(0);
static THREADED_WRITES: AtomicU64 = AtomicU64::new(0);

/// Syscalls issued by this process's threaded frame I/O so far: two
/// `read`s per inbound frame (length prefix, then payload), and up to
/// two `write`s per outbound frame.
pub fn threaded_syscalls() -> SyscallStats {
    SyscallStats {
        waits: 0,
        reads: THREADED_READS.load(Ordering::Relaxed),
        writevs: THREADED_WRITES.load(Ordering::Relaxed),
        accepts: 0,
    }
}

/// Transport failure.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level error.
    Io(std::io::Error),
    /// Frame decoded but malformed.
    Wire(wire::WireError),
    /// Peer closed the connection.
    Disconnected,
    /// A hello frame carried an id outside `0..n`.
    UnknownNode(NodeId),
    /// The accept deadline expired before every node said hello; carries
    /// the ids that never arrived.
    HelloTimeout(Vec<NodeId>),
    /// No live connection to this node (it crashed or never connected).
    NotConnected(NodeId),
    /// Connect retries exhausted without reaching the coordinator.
    ConnectExhausted(NodeId),
    /// The node's bounded outbound queue is full; the caller should
    /// degrade this node (e.g. prefer others for lazy-sync growth)
    /// rather than buffer without bound. Reactor backend only.
    Backpressured(NodeId),
}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "io: {e}"),
            TcpError::Wire(e) => write!(f, "wire: {e}"),
            TcpError::Disconnected => write!(f, "peer disconnected"),
            TcpError::UnknownNode(id) => write!(f, "hello from unknown node {id}"),
            TcpError::HelloTimeout(missing) => {
                write!(f, "nodes {missing:?} never said hello")
            }
            TcpError::NotConnected(id) => write!(f, "node {id} is not connected"),
            TcpError::ConnectExhausted(id) => {
                write!(f, "node {id}: connect retries exhausted")
            }
            TcpError::Backpressured(id) => {
                write!(f, "node {id}: outbound queue full (backpressure)")
            }
        }
    }
}

impl std::error::Error for TcpError {}

/// Bounded-retry schedule with exponential backoff, used for node
/// connects and send-side reconnects.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no waiting.
    pub fn once() -> Self {
        Self {
            attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Whether attempt `i` (0-based) has a retry left in the budget.
    /// The actual delay comes from a seeded [`Backoff`] so the schedule
    /// is jittered yet deterministic per endpoint.
    fn retries_left(&self, i: u32) -> bool {
        i + 1 < self.attempts
    }
}

/// Write one length-prefixed frame. Frames over the wire cap are
/// refused outright — a silent `as u32` truncation here would desync
/// the whole byte stream for the peer.
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> Result<(), TcpError> {
    let prefix = wire::frame_len_prefix(frame.len()).map_err(TcpError::Wire)?;
    THREADED_WRITES.fetch_add(1 + u64::from(!frame.is_empty()), Ordering::Relaxed);
    stream.write_all(&prefix.to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

/// Read one length-prefixed frame.
fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, TcpError> {
    let mut len = [0u8; 4];
    THREADED_READS.fetch_add(1, Ordering::Relaxed);
    if let Err(e) = stream.read_exact(&mut len) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Err(TcpError::Disconnected)
        } else {
            Err(TcpError::Io(e))
        };
    }
    // Validate the advertised length before allocating: a corrupt or
    // hostile prefix must not OOM the receiver.
    let n = wire::check_frame_len(u32::from_le_bytes(len)).map_err(TcpError::Wire)?;
    let mut buf = vec![0u8; n];
    if n > 0 {
        THREADED_READS.fetch_add(1, Ordering::Relaxed);
        stream.read_exact(&mut buf)?;
    }
    Ok(buf)
}

/// Wire cost of a frame: payload plus the 4-byte length prefix.
fn frame_bytes(frame_len: usize) -> u64 {
    frame_len as u64 + 4
}

/// Coordinator-side transport counters. Reader threads and the send path
/// touch these concurrently, so they are commutative counters only —
/// never trace events (see the contract in [`automon_obs::trace`]).
/// Default is all-disabled handles: zero-cost until a telemetry-carrying
/// constructor is used.
#[derive(Default)]
struct CoordNetTel {
    frames_in: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    bytes_out: Counter,
    heartbeats: Counter,
    accepts: Counter,
    send_failures: Counter,
}

impl CoordNetTel {
    fn new(tel: &Telemetry) -> Self {
        Self {
            frames_in: tel.counter(
                "automon_net_frames_total{dir=\"in\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_in: tel.counter(
                "automon_net_bytes_total{dir=\"in\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
            frames_out: tel.counter(
                "automon_net_frames_total{dir=\"out\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_out: tel.counter(
                "automon_net_bytes_total{dir=\"out\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
            heartbeats: tel.counter(
                "automon_net_heartbeats_total",
                "Heartbeat frames received",
            ),
            accepts: tel.counter(
                "automon_net_accepts_total",
                "Node connections admitted (initial + rejoins)",
            ),
            send_failures: tel.counter(
                "automon_net_send_failures_total",
                "Coordinator sends that failed (dead connection)",
            ),
        }
    }
}

/// Node-side transport counters; same commutative-only discipline as
/// [`CoordNetTel`].
#[derive(Default)]
struct NodeNetTel {
    connect_attempts: Counter,
    connect_retries: Counter,
    backoff_ms: Counter,
    reconnects: Counter,
    frames_in: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    bytes_out: Counter,
}

impl NodeNetTel {
    fn new(tel: &Telemetry) -> Self {
        Self {
            connect_attempts: tel.counter(
                "automon_net_connect_attempts_total",
                "Dial attempts (first tries included)",
            ),
            connect_retries: tel.counter(
                "automon_net_connect_retries_total",
                "Dial attempts beyond the first per connect",
            ),
            backoff_ms: tel.counter(
                "automon_net_backoff_ms_total",
                "Milliseconds slept in connect backoff",
            ),
            reconnects: tel.counter(
                "automon_net_reconnects_total",
                "Explicit reconnects after a dead connection",
            ),
            frames_in: tel.counter(
                "automon_net_frames_total{dir=\"in\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_in: tel.counter(
                "automon_net_bytes_total{dir=\"in\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
            frames_out: tel.counter(
                "automon_net_frames_total{dir=\"out\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_out: tel.counter(
                "automon_net_bytes_total{dir=\"out\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
        }
    }
}

/// One node's write side. The generation lets a reader thread that dies
/// late avoid clearing a slot a reconnect already refilled.
struct WriterSlot {
    stream: Option<TcpStream>,
    generation: u64,
}

/// State shared between the transport handle, the acceptor, and the
/// per-connection reader threads.
struct Shared {
    writers: Vec<Mutex<WriterSlot>>,
    last_seen: Vec<Mutex<Instant>>,
    shutdown: AtomicBool,
    tel: CoordNetTel,
}

impl Shared {
    fn touch(&self, id: NodeId) {
        *lock_clean(&self.last_seen[id]) = Instant::now();
    }
}

/// Lock that shrugs off poisoning: a panicked writer holds no invariant
/// worth propagating here (the slot is just a socket handle).
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Admit one freshly accepted connection: read its hello, install the
/// writer, spawn the reader. Returns the node id on success.
fn admit(
    shared: &Arc<Shared>,
    tx: &Sender<(SpanId, NodeMessage)>,
    mut stream: TcpStream,
    n: usize,
) -> Result<NodeId, TcpError> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    // A connection that never completes its hello must not wedge accepts.
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let hello = read_frame(&mut stream)?;
    let msg = wire::decode_node_message(&hello).map_err(TcpError::Wire)?;
    let id = msg.sender();
    if id >= n {
        return Err(TcpError::UnknownNode(id));
    }
    stream.set_read_timeout(None)?;
    let writer = stream.try_clone()?;
    let generation = {
        let mut slot = lock_clean(&shared.writers[id]);
        slot.generation += 1;
        slot.stream = Some(writer);
        slot.generation
    };
    shared.touch(id);
    shared.tel.accepts.inc();
    let shared = shared.clone();
    let tx = tx.clone();
    std::thread::spawn(move || {
        loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(frame) = read_frame(&mut stream) else {
                break;
            };
            shared.touch(id);
            shared.tel.frames_in.inc();
            shared.tel.bytes_in.add(frame_bytes(frame.len()));
            if frame.is_empty() {
                shared.tel.heartbeats.inc();
                continue; // heartbeat
            }
            let Ok((span, msg)) = wire::decode_node_message_ctx(&frame) else {
                // Framing is byte-synchronized; a corrupt frame means the
                // stream can no longer be trusted. Drop the connection
                // and let the node reconnect.
                break;
            };
            if tx.send((span, msg)).is_err() {
                break;
            }
        }
        let mut slot = lock_clean(&shared.writers[id]);
        if slot.generation == generation {
            slot.stream = None;
        }
    });
    Ok(id)
}

/// Coordinator side of the TCP transport.
pub struct TcpCoordinatorTransport {
    rx: Receiver<(SpanId, NodeMessage)>,
    shared: Arc<Shared>,
}

impl TcpCoordinatorTransport {
    /// Bind `addr`, accept `n` node connections (each must send a hello
    /// [`NodeMessage::LocalVector`]-shaped frame carrying its id), and
    /// start the reader threads plus a background acceptor that admits
    /// reconnecting nodes for the transport's lifetime.
    ///
    /// Blocks until every node said hello; use
    /// [`TcpCoordinatorTransport::bind_with_timeout`] to bound the wait.
    pub fn bind(addr: SocketAddr, n: usize) -> Result<(Self, SocketAddr), TcpError> {
        Self::bind_with_timeout(addr, n, None)
    }

    /// Like [`TcpCoordinatorTransport::bind`], but gives up with
    /// [`TcpError::HelloTimeout`] when not every node said hello within
    /// `hello_timeout`. Connections with malformed or out-of-range
    /// hellos are dropped and accepting continues.
    pub fn bind_with_timeout(
        addr: SocketAddr,
        n: usize,
        hello_timeout: Option<Duration>,
    ) -> Result<(Self, SocketAddr), TcpError> {
        Self::bind_with_telemetry(addr, n, hello_timeout, Telemetry::disabled())
    }

    /// Like [`TcpCoordinatorTransport::bind_with_timeout`], with transport
    /// counters (frames, bytes, accepts, heartbeats, send failures)
    /// registered on `tel`. Pass [`Telemetry::disabled`] to opt out.
    pub fn bind_with_telemetry(
        addr: SocketAddr,
        n: usize,
        hello_timeout: Option<Duration>,
        tel: Telemetry,
    ) -> Result<(Self, SocketAddr), TcpError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = channel::<(SpanId, NodeMessage)>();
        let shared = Arc::new(Shared {
            writers: (0..n)
                .map(|_| {
                    Mutex::new(WriterSlot {
                        stream: None,
                        generation: 0,
                    })
                })
                .collect(),
            last_seen: (0..n).map(|_| Mutex::new(Instant::now())).collect(),
            shutdown: AtomicBool::new(false),
            tel: CoordNetTel::new(&tel),
        });
        let deadline = hello_timeout.map(|t| Instant::now() + t);
        listener.set_nonblocking(true)?;

        let mut greeted = vec![false; n];
        // Idle-poll schedule seeded by the bound port: deterministic
        // per endpoint, reset whenever an accept makes progress.
        let mut poll = Backoff::accept_poll(local.port() as u64);
        while !greeted.iter().all(|&g| g) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                let missing = (0..n).filter(|&i| !greeted[i]).collect();
                return Err(TcpError::HelloTimeout(missing));
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // A bad hello only costs that connection.
                    if let Ok(id) = admit(&shared, &tx, stream, n) {
                        greeted[id] = true;
                    }
                    poll.reset();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    poll.sleep();
                }
                Err(e) => return Err(e.into()),
            }
        }

        // Keep admitting rejoining nodes until the transport drops.
        let bg_shared = shared.clone();
        let mut bg_poll = Backoff::accept_poll(local.port() as u64 ^ 0xACCE);
        std::thread::spawn(move || loop {
            if bg_shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = admit(&bg_shared, &tx, stream, n);
                    bg_poll.reset();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    bg_poll.sleep();
                }
                Err(_) => break,
            }
        });

        Ok((Self { rx, shared }, local))
    }

    /// Blocking receive of the next node message; `None` when every node
    /// hung up and the acceptor stopped.
    pub fn recv(&self) -> Option<NodeMessage> {
        self.recv_traced().map(|(_, m)| m)
    }

    /// Like [`TcpCoordinatorTransport::recv`], also yielding the span the
    /// node propagated in the frame header — feed it (with the message's
    /// epoch) to `Coordinator::handle_with_context` so coordinator-side
    /// spans parent on the node-side span that caused them.
    pub fn recv_traced(&self) -> Option<(SpanId, NodeMessage)> {
        self.rx.recv().ok()
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<NodeMessage> {
        self.recv_timeout_traced(timeout).map(|(_, m)| m)
    }

    /// [`TcpCoordinatorTransport::recv_traced`] with a timeout.
    pub fn recv_timeout_traced(&self, timeout: Duration) -> Option<(SpanId, NodeMessage)> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Send one outbound message to its node; the outbound's span rides
    /// the frame header as trace context.
    ///
    /// [`TcpError::NotConnected`] when the node's connection is down
    /// (crashed or not yet rejoined); the caller decides whether to
    /// retransmit later or evict.
    pub fn send(&self, out: &Outbound) -> Result<(), TcpError> {
        let frame = wire::encode_coordinator_message_ctx(&out.msg, out.span);
        let mut slot = lock_clean(&self.shared.writers[out.to]);
        let Some(stream) = slot.stream.as_mut() else {
            return Err(TcpError::NotConnected(out.to));
        };
        match write_frame(stream, &frame) {
            Ok(()) => {
                self.shared.tel.frames_out.inc();
                self.shared.tel.bytes_out.add(frame_bytes(frame.len()));
                Ok(())
            }
            Err(e) => {
                // A failed write means the connection is gone; free the
                // slot so a reconnect can claim it.
                slot.stream = None;
                self.shared.tel.send_failures.inc();
                Err(e)
            }
        }
    }

    /// `true` while a live connection to `node` exists.
    pub fn is_connected(&self, node: NodeId) -> bool {
        lock_clean(&self.shared.writers[node]).stream.is_some()
    }

    /// Nodes not heard from (frame or heartbeat) for at least `timeout` —
    /// the liveness input for eviction decisions.
    pub fn stale_nodes(&self, timeout: Duration) -> Vec<NodeId> {
        let now = Instant::now();
        (0..self.shared.last_seen.len())
            .filter(|&i| {
                now.duration_since(*lock_clean(&self.shared.last_seen[i])) >= timeout
            })
            .collect()
    }
}

impl Drop for TcpCoordinatorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Node side of the TCP transport.
pub struct TcpNodeTransport {
    id: NodeId,
    addr: SocketAddr,
    stream: TcpStream,
    retry: RetryPolicy,
    tel: NodeNetTel,
}

impl TcpNodeTransport {
    /// Connect to the coordinator and introduce this node, retrying with
    /// exponential backoff per [`RetryPolicy::default`] — callers no
    /// longer need to sleep-race the listener.
    pub fn connect(addr: SocketAddr, id: NodeId) -> Result<Self, TcpError> {
        Self::connect_with(addr, id, RetryPolicy::default())
    }

    /// Connect with an explicit retry schedule.
    pub fn connect_with(
        addr: SocketAddr,
        id: NodeId,
        retry: RetryPolicy,
    ) -> Result<Self, TcpError> {
        Self::connect_with_telemetry(addr, id, retry, Telemetry::disabled())
    }

    /// Connect with transport counters (dial attempts, retries, backoff,
    /// frames, bytes) registered on `tel`.
    pub fn connect_with_telemetry(
        addr: SocketAddr,
        id: NodeId,
        retry: RetryPolicy,
        tel: Telemetry,
    ) -> Result<Self, TcpError> {
        let tel = NodeNetTel::new(&tel);
        let stream = Self::dial(addr, id, retry, &tel)?;
        Ok(Self {
            id,
            addr,
            stream,
            retry,
            tel,
        })
    }

    /// One full connect + hello cycle with bounded retry.
    fn dial(
        addr: SocketAddr,
        id: NodeId,
        retry: RetryPolicy,
        tel: &NodeNetTel,
    ) -> Result<TcpStream, TcpError> {
        let mut attempt = 0u32;
        // Seeded by the node's own id: every node jitters differently
        // (no thundering herd on coordinator restart), every run of the
        // same node sleeps the same schedule.
        let mut backoff = Backoff::new(retry.initial_backoff, retry.max_backoff, id as u64);
        loop {
            tel.connect_attempts.inc();
            match Self::dial_once(addr, id) {
                Ok(stream) => return Ok(stream),
                Err(_) => {
                    if !retry.retries_left(attempt) {
                        return Err(TcpError::ConnectExhausted(id));
                    }
                    let wait = backoff.next_delay();
                    tel.connect_retries.inc();
                    tel.backoff_ms.add(wait.as_millis() as u64);
                    std::thread::sleep(wait);
                    attempt += 1;
                }
            }
        }
    }

    fn dial_once(addr: SocketAddr, id: NodeId) -> Result<TcpStream, TcpError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let hello = wire::encode_node_message(&NodeMessage::LocalVector {
            node: id,
            vector: Vec::new(),
            epoch: 0,
        });
        write_frame(&mut stream, &hello)?;
        Ok(stream)
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Drop the current connection and dial the coordinator again (with
    /// the transport's retry schedule) — a crashed-and-restarted node's
    /// path back into the group.
    pub fn reconnect(&mut self) -> Result<(), TcpError> {
        self.tel.reconnects.inc();
        self.stream = Self::dial(self.addr, self.id, self.retry, &self.tel)?;
        Ok(())
    }

    /// Send a node message on the current connection.
    pub fn send(&mut self, msg: &NodeMessage) -> Result<(), TcpError> {
        self.send_traced(msg, SpanId::NONE)
    }

    /// Send a node message, propagating `span` in the frame header — the
    /// node-side span (e.g. a violation span) that coordinator-side
    /// handler spans will parent on.
    pub fn send_traced(&mut self, msg: &NodeMessage, span: SpanId) -> Result<(), TcpError> {
        debug_assert_eq!(msg.sender(), self.id, "sending as the wrong node");
        let frame = wire::encode_node_message_ctx(msg, span);
        write_frame(&mut self.stream, &frame)?;
        self.tel.frames_out.inc();
        self.tel.bytes_out.add(frame_bytes(frame.len()));
        Ok(())
    }

    /// Send, reconnecting with backoff when the connection is dead.
    pub fn send_with_retry(&mut self, msg: &NodeMessage) -> Result<(), TcpError> {
        if self.send(msg).is_ok() {
            return Ok(());
        }
        self.reconnect()?;
        self.send(msg)
    }

    /// Send a heartbeat (empty frame): refreshes this node's liveness
    /// clock on the coordinator without touching the protocol.
    pub fn send_heartbeat(&mut self) -> Result<(), TcpError> {
        write_frame(&mut self.stream, &[])?;
        self.tel.frames_out.inc();
        self.tel.bytes_out.add(frame_bytes(0));
        Ok(())
    }

    /// Blocking receive of the next coordinator message.
    pub fn recv(&mut self) -> Result<CoordinatorMessage, TcpError> {
        self.recv_traced().map(|(_, m)| m)
    }

    /// Like [`TcpNodeTransport::recv`], also yielding the coordinator
    /// span carried in the frame header.
    pub fn recv_traced(&mut self) -> Result<(SpanId, CoordinatorMessage), TcpError> {
        let frame = read_frame(&mut self.stream)?;
        self.tel.frames_in.inc();
        self.tel.bytes_in.add(frame_bytes(frame.len()));
        wire::decode_coordinator_message_ctx(&frame).map_err(TcpError::Wire)
    }

    /// Non-blocking poll: `Ok(None)` when no complete frame is ready.
    ///
    /// Uses a short read timeout under the hood; call it from the node's
    /// update loop.
    pub fn try_recv(&mut self) -> Result<Option<CoordinatorMessage>, TcpError> {
        self.stream.set_read_timeout(Some(Duration::from_millis(1)))?;
        let result = match read_frame(&mut self.stream) {
            Ok(frame) => {
                self.tel.frames_in.inc();
                self.tel.bytes_in.add(frame_bytes(frame.len()));
                wire::decode_coordinator_message(&frame)
                    .map(Some)
                    .map_err(TcpError::Wire)
            }
            Err(TcpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.stream.set_read_timeout(None)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node};

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    #[test]
    fn full_monitoring_session_over_tcp() {
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Mean1));
        let n = 2;

        // The coordinator must accept while nodes connect: bind the
        // listener in a thread and hand back the transport.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // free the port for the real bind below
        let coord_thread = {
            let f = f.clone();
            std::thread::spawn(move || {
                let (tp, _) =
                    TcpCoordinatorTransport::bind(addr, n).expect("bind and accept");
                let mut coord =
                    Coordinator::new(f, n, MonitorConfig::builder(0.5).build());
                // Serve until both nodes finish (they close; recv drains).
                let mut served = 0usize;
                while let Some(msg) = tp.recv_timeout(Duration::from_secs(5)) {
                    served += 1;
                    for out in coord.handle(msg) {
                        if tp.send(&out).is_err() {
                            break;
                        }
                    }
                    if served >= 6 {
                        break;
                    }
                }
                (coord.current_value(), served)
            })
        };

        // No sleep: the nodes' connect retries the race with the
        // listener away.
        let mut workers = Vec::new();
        for id in 0..n {
            let f = f.clone();
            workers.push(std::thread::spawn(move || {
                let mut tp = TcpNodeTransport::connect(addr, id).expect("connect");
                let mut node = Node::new(id, f);
                for t in 0..30 {
                    while let Ok(Some(msg)) = tp.try_recv() {
                        if let Some(reply) = node.handle(msg) {
                            tp.send(&reply).unwrap();
                        }
                    }
                    let x = vec![t as f64 * 0.01 + id as f64 * 0.1];
                    if let Some(report) = node.update_data(x) {
                        tp.send(&report).unwrap();
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Serve any last sync traffic.
                for _ in 0..20 {
                    if let Ok(Some(msg)) = tp.try_recv() {
                        if let Some(reply) = node.handle(msg) {
                            tp.send(&reply).unwrap();
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                node.current_value()
            }));
        }
        let node_values: Vec<Option<f64>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        let (coord_value, served) = coord_thread.join().unwrap();
        assert!(served >= 2, "coordinator must have served registrations");
        assert!(coord_value.is_some());
        // Every node received constraints (hence an estimate).
        assert!(node_values.iter().all(Option::is_some), "{node_values:?}");
    }

    #[test]
    fn connect_retries_until_listener_appears() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        // Bind only after the node has started dialing.
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            TcpCoordinatorTransport::bind(addr, 1).expect("bind")
        });
        let tp = TcpNodeTransport::connect(addr, 0).expect("retry until bound");
        assert_eq!(tp.id(), 0);
        let (coord_tp, _) = binder.join().unwrap();
        assert!(coord_tp.is_connected(0));
    }

    #[test]
    fn connect_exhaustion_is_an_error_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let policy = RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        match TcpNodeTransport::connect_with(addr, 3, policy) {
            Err(TcpError::ConnectExhausted(3)) => {}
            Err(other) => panic!("expected ConnectExhausted, got {other:?}"),
            Ok(_) => panic!("connect unexpectedly succeeded"),
        }
    }

    #[test]
    fn bind_timeout_reports_missing_nodes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        // Nobody connects: bind must give up instead of panicking.
        match TcpCoordinatorTransport::bind_with_timeout(
            addr,
            2,
            Some(Duration::from_millis(50)),
        ) {
            Err(TcpError::HelloTimeout(missing)) => assert_eq!(missing, vec![0, 1]),
            other => panic!("expected HelloTimeout, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn send_to_crashed_node_errs_then_rejoin_heals() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder =
            std::thread::spawn(move || TcpCoordinatorTransport::bind(addr, 1).expect("bind"));
        let tp = TcpNodeTransport::connect(addr, 0).expect("connect");
        let (coord_tp, _) = binder.join().unwrap();

        // Crash the node: its connection drops and sends start failing.
        drop(tp);
        let out = Outbound::new(
            0,
            CoordinatorMessage::RequestLocalVector { epoch: 0 },
            automon_core::CommCause::FullSync,
        );
        let mut saw_down = false;
        for _ in 0..100 {
            match coord_tp.send(&out) {
                Err(TcpError::NotConnected(0)) => {
                    saw_down = true;
                    break;
                }
                // The reader may not have noticed the close yet, or the
                // first write after close fails with Io; both settle to
                // NotConnected.
                Ok(()) | Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(saw_down, "crash never surfaced as NotConnected");

        // The node dials back in; the background acceptor admits it and
        // sends flow again.
        let mut tp = TcpNodeTransport::connect(addr, 0).expect("rejoin");
        let mut ok = false;
        for _ in 0..100 {
            if coord_tp.send(&out).is_ok() {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ok, "send never recovered after rejoin");
        let msg = tp.recv().expect("delivered after rejoin");
        assert_eq!(msg, CoordinatorMessage::RequestLocalVector { epoch: 0 });
    }

    #[test]
    fn trace_context_propagates_over_tcp_in_both_directions() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder =
            std::thread::spawn(move || TcpCoordinatorTransport::bind(addr, 1).expect("bind"));
        let mut tp = TcpNodeTransport::connect(addr, 0).expect("connect");
        let (coord_tp, _) = binder.join().unwrap();

        // Node → coordinator: the violation span rides the header.
        let report = NodeMessage::Violation {
            node: 0,
            kind: automon_core::ViolationKind::SafeZone,
            local_vector: vec![1.0],
            epoch: 3,
        };
        tp.send_traced(&report, SpanId(42)).expect("send");
        let (span, msg) = coord_tp
            .recv_timeout_traced(Duration::from_secs(5))
            .expect("frame");
        assert_eq!(span, SpanId(42));
        assert_eq!(msg, report);

        // Coordinator → node: the handler span rides back down.
        let out = Outbound::new(
            0,
            CoordinatorMessage::RequestLocalVector { epoch: 3 },
            automon_core::CommCause::FullSync,
        )
        .with_span(SpanId(7));
        coord_tp.send(&out).expect("send down");
        let (span, msg) = tp.recv_traced().expect("reply");
        assert_eq!(span, SpanId(7));
        assert_eq!(msg, out.msg);

        // The plain hello path still decodes as span NONE on the reader.
        tp.send(&report).expect("untraced send");
        let (span, _) = coord_tp
            .recv_timeout_traced(Duration::from_secs(5))
            .expect("frame");
        assert_eq!(span, SpanId::NONE);
    }

    #[test]
    fn heartbeats_keep_a_quiet_node_fresh() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder =
            std::thread::spawn(move || TcpCoordinatorTransport::bind(addr, 1).expect("bind"));
        let mut tp = TcpNodeTransport::connect(addr, 0).expect("connect");
        let (coord_tp, _) = binder.join().unwrap();

        for _ in 0..5 {
            tp.send_heartbeat().expect("heartbeat");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Heard from recently: not stale at a 1s horizon.
        assert!(coord_tp.stale_nodes(Duration::from_secs(1)).is_empty());
        // At a zero horizon everyone is trivially stale — the filter works.
        assert_eq!(coord_tp.stale_nodes(Duration::ZERO), vec![0]);
    }
}
