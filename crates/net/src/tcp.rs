//! TCP transport: AutoMon's protocol over real sockets.
//!
//! The paper's deployment moves frames with ZeroMQ (§3.8, §4.7); this
//! module is the dependency-free equivalent on `std::net`. Frames are
//! length-prefixed wire-codec messages; each node opens one connection
//! and introduces itself with a hello frame carrying its id.
//!
//! Concurrency model: the coordinator accepts `n` connections, spawns a
//! reader thread per node that decodes frames into one mpsc channel, and
//! writes replies directly to the (mutex-guarded) streams. Nodes use a
//! plain blocking or polling read on their single connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use automon_core::{CoordinatorMessage, NodeId, NodeMessage, Outbound};

use crate::wire;

/// Transport failure.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level error.
    Io(std::io::Error),
    /// Frame decoded but malformed.
    Wire(wire::WireError),
    /// Peer closed the connection.
    Disconnected,
}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "io: {e}"),
            TcpError::Wire(e) => write!(f, "wire: {e}"),
            TcpError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Write one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> Result<(), TcpError> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

/// Read one length-prefixed frame.
fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, TcpError> {
    let mut len = [0u8; 4];
    if let Err(e) = stream.read_exact(&mut len) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Err(TcpError::Disconnected)
        } else {
            Err(TcpError::Io(e))
        };
    }
    let n = u32::from_le_bytes(len) as usize;
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Coordinator side of the TCP transport.
pub struct TcpCoordinatorTransport {
    rx: Receiver<NodeMessage>,
    writers: Vec<Arc<Mutex<TcpStream>>>,
}

impl TcpCoordinatorTransport {
    /// Bind `addr`, accept exactly `n` node connections (each must send
    /// a hello [`NodeMessage::LocalVector`]-shaped frame carrying its
    /// id), and start the reader threads.
    pub fn bind(addr: SocketAddr, n: usize) -> Result<(Self, SocketAddr), TcpError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx): (Sender<NodeMessage>, Receiver<NodeMessage>) = channel();
        let mut writers: Vec<Option<Arc<Mutex<TcpStream>>>> = (0..n).map(|_| None).collect();

        for _ in 0..n {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            // Hello frame identifies the node.
            let hello = read_frame(&mut stream)?;
            let msg = wire::decode_node_message(&hello).map_err(TcpError::Wire)?;
            let id = msg.sender();
            assert!(id < n, "hello from unknown node {id}");
            let shared = Arc::new(Mutex::new(stream.try_clone()?));
            writers[id] = Some(shared);
            let tx = tx.clone();
            std::thread::spawn(move || {
                while let Ok(frame) = read_frame(&mut stream) {
                    let Ok(msg) = wire::decode_node_message(&frame) else {
                        break;
                    };
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        let writers = writers
            .into_iter()
            .map(|w| w.expect("every node said hello"))
            .collect();
        Ok((Self { rx, writers }, local))
    }

    /// Blocking receive of the next node message; `None` when every node
    /// hung up.
    pub fn recv(&self) -> Option<NodeMessage> {
        self.rx.recv().ok()
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<NodeMessage> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Send one outbound message to its node.
    pub fn send(&self, out: &Outbound) -> Result<(), TcpError> {
        let frame = wire::encode_coordinator_message(&out.msg);
        let mut stream = self.writers[out.to].lock().expect("writer lock");
        write_frame(&mut stream, &frame)
    }
}

/// Node side of the TCP transport.
pub struct TcpNodeTransport {
    id: NodeId,
    stream: TcpStream,
}

impl TcpNodeTransport {
    /// Connect to the coordinator and introduce this node.
    pub fn connect(addr: SocketAddr, id: NodeId) -> Result<Self, TcpError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let hello = wire::encode_node_message(&NodeMessage::LocalVector {
            node: id,
            vector: Vec::new(),
        });
        write_frame(&mut stream, &hello)?;
        Ok(Self { id, stream })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send a node message.
    pub fn send(&mut self, msg: &NodeMessage) -> Result<(), TcpError> {
        debug_assert_eq!(msg.sender(), self.id, "sending as the wrong node");
        let frame = wire::encode_node_message(msg);
        write_frame(&mut self.stream, &frame)
    }

    /// Blocking receive of the next coordinator message.
    pub fn recv(&mut self) -> Result<CoordinatorMessage, TcpError> {
        let frame = read_frame(&mut self.stream)?;
        wire::decode_coordinator_message(&frame).map_err(TcpError::Wire)
    }

    /// Non-blocking poll: `Ok(None)` when no complete frame is ready.
    ///
    /// Uses a short read timeout under the hood; call it from the node's
    /// update loop.
    pub fn try_recv(&mut self) -> Result<Option<CoordinatorMessage>, TcpError> {
        self.stream.set_read_timeout(Some(Duration::from_millis(1)))?;
        let result = match read_frame(&mut self.stream) {
            Ok(frame) => wire::decode_coordinator_message(&frame)
                .map(Some)
                .map_err(TcpError::Wire),
            Err(TcpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.stream.set_read_timeout(None)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node};

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    #[test]
    fn full_monitoring_session_over_tcp() {
        let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Mean1));
        let n = 2;

        // The coordinator must accept while nodes connect: bind the
        // listener in a thread and hand back the transport.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // free the port for the real bind below
        let coord_thread = {
            let f = f.clone();
            std::thread::spawn(move || {
                let (tp, _) =
                    TcpCoordinatorTransport::bind(addr, n).expect("bind and accept");
                let mut coord =
                    Coordinator::new(f, n, MonitorConfig::builder(0.5).build());
                // Serve until both nodes finish (they close; recv drains).
                let mut served = 0usize;
                while let Some(msg) = tp.recv_timeout(Duration::from_secs(5)) {
                    served += 1;
                    for out in coord.handle(msg) {
                        if tp.send(&out).is_err() {
                            break;
                        }
                    }
                    if served >= 6 {
                        break;
                    }
                }
                (coord.current_value(), served)
            })
        };

        // Give the listener a moment to bind.
        std::thread::sleep(Duration::from_millis(100));
        let mut workers = Vec::new();
        for id in 0..n {
            let f = f.clone();
            workers.push(std::thread::spawn(move || {
                let mut tp = TcpNodeTransport::connect(addr, id).expect("connect");
                let mut node = Node::new(id, f);
                for t in 0..30 {
                    while let Ok(Some(msg)) = tp.try_recv() {
                        if let Some(reply) = node.handle(msg) {
                            tp.send(&reply).unwrap();
                        }
                    }
                    let x = vec![t as f64 * 0.01 + id as f64 * 0.1];
                    if let Some(report) = node.update_data(x) {
                        tp.send(&report).unwrap();
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Serve any last sync traffic.
                for _ in 0..20 {
                    if let Ok(Some(msg)) = tp.try_recv() {
                        if let Some(reply) = node.handle(msg) {
                            tp.send(&reply).unwrap();
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                node.current_value()
            }));
        }
        let node_values: Vec<Option<f64>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        let (coord_value, served) = coord_thread.join().unwrap();
        assert!(served >= 2, "coordinator must have served registrations");
        assert!(coord_value.is_some());
        // Every node received constraints (hence an estimate).
        assert!(node_values.iter().all(Option::is_some), "{node_values:?}");
    }
}
