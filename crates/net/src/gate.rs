//! The frame gate: the transport's fault-injection seam.
//!
//! The chaos fabric injects faults at the *decoded-frame boundary* — a
//! frame either delivers, delivers twice, falls behind its queue,
//! parks for some rounds, or vanishes. The reactor keeps that exact
//! boundary: every inbound frame it decodes is shown to an installed
//! [`FrameGate`] before it reaches the protocol, so a chaos plan that
//! replays byte-identically on the in-process fabric replays
//! byte-identically on the reactor path too (`crates/chaos` implements
//! this trait with the same seeded ladder, consuming the same RNG draw
//! sequence).
//!
//! The default — no gate installed — is a transparent transport.

/// What the gate decided for one decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Deliver normally.
    Deliver,
    /// Deliver now and inject an immune copy behind the current queue.
    DeliverTwice,
    /// Push the frame behind everything currently queued (as an immune
    /// copy), delivering it out of order.
    Reorder,
    /// Park the frame for this many protocol rounds before delivering
    /// an immune copy.
    Delay(usize),
    /// Discard the frame; the sender observes nothing.
    Discard,
}

/// A per-frame fault decision, applied at the decoded-frame boundary.
///
/// `immune` marks re-injected frames (the late copy of a duplicate, a
/// matured delayed frame): the gate must deliver them untouched *and
/// consume no randomness for them*, so the draw sequence depends only
/// on how many first-time frames crossed the gate — the invariant that
/// makes seeded chaos runs replay exactly.
pub trait FrameGate: Send {
    /// Decide what happens to one frame.
    fn gate(&mut self, immune: bool) -> GateVerdict;
}

/// The transparent gate: everything delivers. Useful as an explicit
/// stand-in where a gate slot must be filled.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpenGate;

impl FrameGate for OpenGate {
    fn gate(&mut self, _immune: bool) -> GateVerdict {
        GateVerdict::Deliver
    }
}
