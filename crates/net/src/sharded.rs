//! Shard-aware fabric for the hierarchical coordinator fleet.
//!
//! A [`ShardedFabric`] is one accounting surface over a two-tier
//! topology (DESIGN.md §3.14): each *leaf* shard gets its own
//! [`CountingFabric`] for intra-shard traffic, and a distinguished
//! *root* fabric carries the inter-tier traffic between leaf
//! coordinators and the root coordinator. The root fabric is built with
//! [`CommCause::at_root`] installed as its cause map, so the flat
//! protocol machinery the root tier reuses is charged under the
//! inter-tier causes (`leaf_report` / `root_sync` / `shard_rebalance`)
//! natively — the merged ledger needs no rewriting, and trace `comm`
//! events agree with ledger rows by construction.
//!
//! Inter-tier frames are the [`TierMessage`] kinds from `automon-core`,
//! encoded with [`wire::encode_tier_message_ctx`]. A leaf's report
//! *replaces* the flat violation frame as the charged frame — the hop
//! is charged once, at the tier boundary, for the bytes that actually
//! cross it.

use automon_core::{
    CommCause, CommLedger, Coordinator, Node, NodeMessage, Outbound, Parallelism, TierMessage,
};
use automon_obs::{SpanId, Telemetry, TraceCtx};

use crate::fabric::{CountingFabric, TrafficStats};
use crate::wire;

/// Per-tier fabrics of a sharded fleet, plus merged accounting views.
#[derive(Debug)]
pub struct ShardedFabric {
    leaves: Vec<CountingFabric>,
    root: CountingFabric,
}

impl ShardedFabric {
    /// A fresh fabric set for `shards` leaves. The root fabric carries
    /// the [`CommCause::at_root`] cause map from birth.
    pub fn new(shards: usize) -> Self {
        Self {
            leaves: (0..shards).map(|_| CountingFabric::new()).collect(),
            root: CountingFabric::new().with_cause_map(CommCause::at_root),
        }
    }

    /// Forward one fan-out policy to every tier's fabric.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.leaves = self
            .leaves
            .into_iter()
            .map(|f| f.with_parallelism(par))
            .collect();
        self.root = self.root.with_parallelism(par);
        self
    }

    /// Attach one telemetry handle to every tier's fabric; `comm`
    /// events carry the per-tier cause names, so the tiers stay
    /// separable in the trace.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.leaves = self
            .leaves
            .into_iter()
            .map(|f| f.with_telemetry(tel.clone()))
            .collect();
        self.root = self.root.with_telemetry(tel.clone());
        self
    }

    /// Number of leaf shards.
    pub fn shards(&self) -> usize {
        self.leaves.len()
    }

    /// Leaf shard `i`'s fabric.
    pub fn leaf(&mut self, i: usize) -> &mut CountingFabric {
        &mut self.leaves[i]
    }

    /// The inter-tier (root) fabric.
    pub fn root(&mut self) -> &mut CountingFabric {
        &mut self.root
    }

    /// The inter-tier (root) fabric, read-only.
    pub fn root_ref(&self) -> &CountingFabric {
        &self.root
    }

    /// Stamp the simulation round on every tier's fabric.
    pub fn set_round(&mut self, round: u64) {
        for f in &mut self.leaves {
            f.set_round(round);
        }
        self.root.set_round(round);
    }

    /// Fleet-wide traffic totals: every leaf fabric plus the root
    /// fabric, summed field-wise.
    pub fn total_stats(&self) -> TrafficStats {
        let mut t = self.root.stats().clone();
        for f in &self.leaves {
            let s = f.stats();
            t.node_to_coord_msgs += s.node_to_coord_msgs;
            t.coord_to_node_msgs += s.coord_to_node_msgs;
            t.node_to_coord_payload += s.node_to_coord_payload;
            t.coord_to_node_payload += s.coord_to_node_payload;
        }
        t
    }

    /// The two-tier ledger: every leaf's intra-shard ledger and the
    /// root's inter-tier ledger folded into one. Leaf rows keep their
    /// flat causes; root rows carry only tier causes (the cause map
    /// guarantees it), so the two tiers stay separable by cause.
    pub fn combined_ledger(&self) -> CommLedger {
        let mut out = CommLedger::default();
        for f in &self.leaves {
            out.absorb_ledger(f.ledger());
        }
        out.absorb_ledger(self.root.ledger());
        out
    }

    /// Conservation across both tiers: the combined ledger's totals
    /// must equal the summed fabric counters exactly.
    pub fn check_conservation(&self) -> Option<String> {
        let t = self.total_stats();
        self.combined_ledger()
            .check_conservation(t.total_msgs() as u64, t.total_payload() as u64)
    }

    /// Deliver a leaf's report to the root coordinator and run the
    /// ensuing root-tier exchange to quiescence.
    ///
    /// The [`TierMessage::LeafReport`] frame is what crosses the tier
    /// boundary, so *its* bytes are charged (cause classified from the
    /// violation kind, then lifted to `leaf_report` by the root cause
    /// map) — not a re-encoded flat violation. The decoded report is
    /// reconstructed as the equivalent [`NodeMessage::Violation`] and
    /// handed to the root coordinator, whose cascade (pulls, replies,
    /// installs) then flows through the root fabric's ordinary charge
    /// points under the `root_sync` cause.
    pub fn route_leaf_report(
        &mut self,
        root_coord: &mut Coordinator,
        proxies: &mut [Node],
        report: &TierMessage,
        span: SpanId,
    ) {
        let TierMessage::LeafReport {
            leaf,
            kind,
            partial,
            epoch,
            ..
        } = report
        else {
            panic!("route_leaf_report takes a LeafReport");
        };
        let frame = wire::encode_tier_message_ctx(report, span);
        let violation = NodeMessage::Violation {
            node: *leaf,
            kind: *kind,
            local_vector: partial.clone(),
            epoch: *epoch,
        };
        let cause = CommCause::of_node_message(&violation);
        self.root.account_up(*leaf, cause, frame.len(), span);
        let (ctx_span, decoded) =
            wire::decode_tier_message_ctx(&frame).expect("self-encoded frame decodes");
        debug_assert_eq!(&decoded, report);
        let outs = root_coord.handle_with_context(violation, TraceCtx::new(ctx_span, *epoch));
        self.root_cascade(root_coord, proxies, outs);
    }

    /// Run a root-tier outbound batch (e.g. the recovery sync issued
    /// when a leaf's proxy is evicted) and every cascading reply to
    /// quiescence, FIFO. Causes lift through the root cause map at the
    /// charge points.
    pub fn root_cascade(
        &mut self,
        root_coord: &mut Coordinator,
        proxies: &mut [Node],
        outs: Vec<Outbound>,
    ) {
        self.root.route_outbounds(root_coord, proxies, outs);
    }

    /// Charge a root→leaf rebalance directive on the inter-tier fabric
    /// and return it round-tripped through the codec.
    pub fn send_rebalance(&mut self, directive: &TierMessage, span: SpanId) -> TierMessage {
        debug_assert!(matches!(directive, TierMessage::Rebalance { .. }));
        let frame = wire::encode_tier_message_ctx(directive, span);
        self.root
            .account_down(directive.leaf(), CommCause::ShardRebalance, frame.len(), span);
        let (_, decoded) =
            wire::decode_tier_message_ctx(&frame).expect("self-encoded frame decodes");
        decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_core::{MonitorConfig, MonitoredFunction, ViolationKind};
    use std::sync::Arc;

    struct Mean1;
    impl ScalarFn for Mean1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0]
        }
    }

    fn f() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Mean1))
    }

    #[test]
    fn leaf_reports_charge_tier_causes_and_conserve() {
        let f = f();
        let mut root = Coordinator::new(f.clone(), 2, MonitorConfig::builder(0.5).build());
        let mut proxies = vec![Node::new(0, f.clone()), Node::new(1, f.clone())];
        let mut fab = ShardedFabric::new(2);

        for leaf in 0..2usize {
            let m = proxies[leaf].update_data(vec![leaf as f64 * 0.1]);
            let kind = match m {
                Some(NodeMessage::Violation { kind, .. }) => kind,
                _ => ViolationKind::Uninitialized,
            };
            let report = TierMessage::LeafReport {
                leaf,
                kind,
                partial: vec![leaf as f64 * 0.1],
                weight: 5,
                epoch: 0,
            };
            fab.route_leaf_report(&mut root, &mut proxies, &report, SpanId::NONE);
        }

        // Registration reports lift to leaf_report; the full-sync
        // installs the root pushed back lift to root_sync. Nothing on
        // the root fabric may carry a flat cause.
        let by_cause = fab.root_ref().ledger().by_cause();
        assert!(by_cause[&CommCause::LeafReport].up_msgs >= 2);
        assert!(by_cause[&CommCause::RootSync].down_msgs >= 2);
        for cause in by_cause.keys() {
            assert_eq!(cause.at_root(), *cause, "flat cause {cause:?} on root fabric");
        }
        assert_eq!(fab.check_conservation(), None);
    }

    #[test]
    fn rebalance_directives_charge_shard_rebalance() {
        let mut fab = ShardedFabric::new(1);
        let directive = TierMessage::Rebalance {
            leaf: 0,
            adopted: vec![7, 8],
            epoch: 3,
        };
        let back = fab.send_rebalance(&directive, SpanId::NONE);
        assert_eq!(back, directive);
        let by_cause = fab.root_ref().ledger().by_cause();
        assert_eq!(by_cause[&CommCause::ShardRebalance].down_msgs, 1);
        assert_eq!(fab.check_conservation(), None);
    }

    #[test]
    fn round_stamp_fans_out_to_every_tier() {
        let f = f();
        let mut fab = ShardedFabric::new(2);
        fab.set_round(4);
        let mut coord = Coordinator::new(f.clone(), 1, MonitorConfig::builder(0.5).build());
        let mut nodes = vec![Node::new(0, f.clone())];
        if let Some(m) = nodes[0].update_data(vec![0.0]) {
            fab.leaf(1).route(&mut coord, &mut nodes, m);
        }
        let ledger = fab.combined_ledger();
        assert!(ledger.iter().all(|((round, _, _), _)| *round == 4));
    }
}
