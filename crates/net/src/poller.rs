//! The readiness abstraction under the reactor: real epoll or a
//! simulated clock.
//!
//! [`Poller`] is the thin seam the reactor core is generic over. The
//! production implementation, [`EpollPoller`], talks to Linux epoll via
//! raw FFI (the workspace vendors no `libc`; `std` already links the C
//! library, so the symbols are there to declare) with edge-triggered
//! readiness and `writev` scatter-gather. The deterministic
//! implementation, [`crate::sim_poller::SimPoller`], drives the same
//! reactor over in-memory pipes under a seeded logical clock.
//!
//! Every syscall the poller issues is counted in [`SyscallStats`] —
//! the bench reports *syscalls per update*, not just wall time, so the
//! coalescing/batching claims are measured directly.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::IoVec;

/// Identifies one registered connection in poll events. The reactor
/// uses slab slot indices; two values are reserved.
pub type Token = usize;

/// Token of the accept listener.
pub const LISTENER_TOKEN: Token = usize::MAX - 1;
/// Token of the cross-thread waker (handled inside the poller; never
/// surfaced in events).
pub const WAKE_TOKEN: Token = usize::MAX;

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registered token ([`LISTENER_TOKEN`] for the listener).
    pub token: Token,
    /// Reading will make progress.
    pub readable: bool,
    /// Writing will make progress again (after a short write).
    pub writable: bool,
    /// Peer closed or errored; the connection is done.
    pub closed: bool,
}

/// Syscall counts issued by a poller, the denominator data for the
/// bench's syscalls-per-update metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscallStats {
    /// `epoll_wait` (or simulated wait) calls.
    pub waits: u64,
    /// `read` calls (including ones returning `WouldBlock`).
    pub reads: u64,
    /// `writev` calls.
    pub writevs: u64,
    /// Accepted connections.
    pub accepts: u64,
}

impl SyscallStats {
    /// Total syscalls across all kinds.
    pub fn total(&self) -> u64 {
        self.waits + self.reads + self.writevs + self.accepts
    }
}

/// Shared atomic syscall counters; the event-loop thread writes, the
/// bench/CLI reads.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    waits: AtomicU64,
    reads: AtomicU64,
    writevs: AtomicU64,
    accepts: AtomicU64,
}

impl SyscallCounters {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> SyscallStats {
        SyscallStats {
            waits: self.waits.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writevs: self.writevs.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
        }
    }
}

/// Cross-thread wakeup handle for a blocked [`Poller::wait`].
pub trait PollWaker: Clone + Send + 'static {
    /// Interrupt the poller's current (or next) wait.
    fn wake(&self);
}

/// No-op waker for single-threaded (simulated) pollers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopWaker;

impl PollWaker for NoopWaker {
    fn wake(&self) {}
}

/// Readiness + I/O seam the reactor core is generic over.
///
/// I/O goes *through* the poller (rather than through the connection
/// object directly) so one place counts syscalls and the simulated
/// implementation can chunk reads and shorten writes deterministically.
pub trait Poller {
    /// Established-connection handle.
    type Conn;
    /// Accept source.
    type Listener;
    /// Cross-thread wakeup handle.
    type Waker: PollWaker;

    /// A waker for this poller.
    fn waker(&self) -> Self::Waker;

    /// Register the accept source under [`LISTENER_TOKEN`].
    fn register_listener(&mut self, l: &Self::Listener) -> io::Result<()>;

    /// Accept one pending connection; `None` when none is ready.
    fn accept(&mut self, l: &Self::Listener) -> io::Result<Option<Self::Conn>>;

    /// Register a connection under `token` with read+write interest
    /// (edge-triggered).
    fn register(&mut self, c: &Self::Conn, token: Token) -> io::Result<()>;

    /// Remove a connection from the poll set (idempotent).
    fn deregister(&mut self, c: &Self::Conn) -> io::Result<()>;

    /// Nonblocking read; `WouldBlock` when drained.
    fn read(&mut self, c: &mut Self::Conn, buf: &mut [u8]) -> io::Result<usize>;

    /// Scatter-gather write; returns bytes accepted, `WouldBlock` when
    /// the send buffer is full.
    fn writev(&mut self, c: &mut Self::Conn, bufs: &[IoVec]) -> io::Result<usize>;

    /// Block until readiness (or `timeout`), appending into `events`.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;

    /// Syscalls issued so far.
    fn stats(&self) -> SyscallStats;

    /// Milliseconds on this poller's clock: monotonic wall time for
    /// epoll, the seeded logical clock for the simulator.
    fn now_ms(&self) -> u64;
}

// ---------------------------------------------------------------------
// epoll via raw FFI
// ---------------------------------------------------------------------

// The kernel ABI structure. x86-64 packs it to match the 32-bit layout;
// other architectures use natural alignment — mirror glibc exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Waker for [`EpollPoller`]: one byte down a socketpair registered
/// under [`WAKE_TOKEN`].
#[derive(Clone)]
pub struct EpollWaker(Arc<UnixStream>);

impl PollWaker for EpollWaker {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; WouldBlock
        // (and any other failure) is therefore ignorable.
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// Edge-triggered epoll poller over `std::net` sockets.
pub struct EpollPoller {
    epfd: RawFd,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    buf: Vec<EpollEvent>,
    counters: Arc<SyscallCounters>,
    epoch: Instant,
}

impl EpollPoller {
    /// Create the epoll instance and its waker pipe.
    pub fn new() -> io::Result<Self> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: WAKE_TOKEN as u64,
        };
        if let Err(e) = cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wake_rx.as_raw_fd(), &mut ev) })
        {
            unsafe { close(epfd) };
            return Err(e);
        }
        Ok(Self {
            epfd,
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            counters: Arc::new(SyscallCounters::default()),
            epoch: Instant::now(),
        })
    }

    /// Shared handle to the syscall counters (clone before moving the
    /// poller into the event-loop thread).
    pub fn counters(&self) -> Arc<SyscallCounters> {
        self.counters.clone()
    }
}

impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

impl Poller for EpollPoller {
    type Conn = TcpStream;
    type Listener = TcpListener;
    type Waker = EpollWaker;

    fn waker(&self) -> EpollWaker {
        EpollWaker(self.wake_tx.clone())
    }

    fn register_listener(&mut self, l: &TcpListener) -> io::Result<()> {
        // Level-triggered on purpose: a missed accept edge would strand
        // connections; LT re-arms for free at listener traffic rates.
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: LISTENER_TOKEN as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, l.as_raw_fd(), &mut ev) })?;
        Ok(())
    }

    fn accept(&mut self, l: &TcpListener) -> io::Result<Option<TcpStream>> {
        match l.accept() {
            Ok((stream, _)) => {
                self.counters.accepts.fetch_add(1, Ordering::Relaxed);
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true)?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn register(&mut self, c: &TcpStream, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
            data: token as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, c.as_raw_fd(), &mut ev) })?;
        Ok(())
    }

    fn deregister(&mut self, c: &TcpStream) -> io::Result<()> {
        // ENOENT (already gone) is fine — deregister is idempotent.
        let _ = unsafe {
            epoll_ctl(
                self.epfd,
                EPOLL_CTL_DEL,
                c.as_raw_fd(),
                std::ptr::null_mut(),
            )
        };
        Ok(())
    }

    fn read(&mut self, c: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        c.read(buf)
    }

    fn writev(&mut self, c: &mut TcpStream, bufs: &[IoVec]) -> io::Result<usize> {
        self.counters.writevs.fetch_add(1, Ordering::Relaxed);
        // IOV_MAX is 1024 on Linux; one truncated call is fine — the
        // caller's queue resumes where the written bytes stopped.
        let cnt = bufs.len().min(1024) as i32;
        let n = unsafe { writev(c.as_raw_fd(), bufs.as_ptr(), cnt) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = timeout.map_or(-1i32, |t| t.as_millis().min(i32::MAX as u128) as i32);
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        let n = loop {
            let r = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if r >= 0 {
                break r as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for i in 0..n {
            let ev = self.buf[i];
            let token = ev.data as usize;
            if token == WAKE_TOKEN {
                // Drain the wake pipe; the wakeup's purpose is served by
                // returning from epoll_wait.
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            events.push(Event {
                token,
                readable: ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: ev.events & EPOLLOUT != 0,
                closed: ev.events & (EPOLLHUP | EPOLLERR) != 0,
            });
        }
        if n == self.buf.len() && self.buf.len() < 65536 {
            // Saturated: grow so big fleets drain in one wait.
            self.buf.resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }

    fn stats(&self) -> SyscallStats {
        self.counters.snapshot()
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn epoll_sees_listener_and_conn_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let mut poller = EpollPoller::new().unwrap();
        poller.register_listener(&listener).unwrap();

        // Nothing pending: a zero-timeout wait returns empty.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == LISTENER_TOKEN && e.readable));

        let mut server = poller.accept(&listener).unwrap().expect("pending conn");
        assert!(poller.accept(&listener).unwrap().is_none(), "only one");
        poller.register(&server, 7).unwrap();

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 4 && Instant::now() < deadline {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                let mut buf = [0u8; 16];
                loop {
                    match poller.read(&mut server, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("read: {e}"),
                    }
                }
            }
        }
        assert_eq!(&got, b"ping");

        // writev pushes both segments in one syscall.
        let (a, b) = (b"he".as_slice(), b"llo".as_slice());
        let iov = [
            IoVec { base: a.as_ptr(), len: a.len() },
            IoVec { base: b.as_ptr(), len: b.len() },
        ];
        let n = poller.writev(&mut server, &iov).unwrap();
        assert_eq!(n, 5);
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");

        let stats = poller.stats();
        assert!(stats.waits >= 2 && stats.reads >= 1 && stats.writevs == 1);
        assert_eq!(stats.accepts, 1);

        poller.deregister(&server).unwrap();
        poller.deregister(&server).unwrap(); // idempotent
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let mut poller = EpollPoller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(9), "woke early");
        assert!(events.is_empty(), "wake token is not surfaced");
        t.join().unwrap();
    }
}
