//! The nonblocking reactor: one event loop instead of a thread per node.
//!
//! The blocking transport ([`crate::tcp`]) spawns a reader thread per
//! connection and issues two syscalls per frame in each direction. That
//! is fine for the paper's 10-node experiments and fatal for the
//! 10k-stream fleets the ROADMAP targets. [`Reactor`] replaces it with
//! a slab of per-connection state machines driven by edge-triggered
//! readiness behind the [`Poller`] seam:
//!
//! * **Frame coalescing** — a readable connection is drained to
//!   `WouldBlock` into one reused buffer; every complete frame in the
//!   chunk decodes from that single `read` via [`FrameAssembler`].
//! * **Scatter-gather writes** — pending outbound frames batch into one
//!   `writev` through [`OutQueue`]; the iovec list is reused across
//!   rounds, so steady-state flushing allocates nothing per frame.
//! * **Bounded queues with backpressure** — each node's outbound queue
//!   is capped; a send over the cap fails with
//!   [`TcpError::Backpressured`] instead of buffering without bound,
//!   and the node is flagged so the coordinator can degrade it to
//!   lazy-sync participation (surfaced as `automon_net_backpressure_*`).
//! * **The chaos seam** — an installed [`FrameGate`] sees every decoded
//!   inbound frame, the same boundary the in-process chaos fabric
//!   gates, so seeded fault plans replay identically here.
//!
//! The core is synchronous: `poll_once` + `pop_inbound`, no hidden
//! threads — which is what lets [`crate::sim_poller::SimPoller`] drive
//! it deterministically. [`ReactorCoordinatorTransport`] wraps the core
//! in one event-loop thread and exposes the same API as
//! [`crate::tcp::TcpCoordinatorTransport`], selectable at runtime via
//! `--net-backend {threaded,reactor}`.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use automon_core::{NodeId, NodeMessage, Outbound};
use automon_obs::{Counter, Gauge, SpanId, Telemetry};
use bytes::Bytes;

use crate::frame::{FrameAssembler, OutQueue};
use crate::gate::{FrameGate, GateVerdict};
use crate::poller::{EpollPoller, Event, Poller, PollWaker, SyscallStats, LISTENER_TOKEN};
use crate::tcp::TcpError;
use crate::wire;

/// Tuning for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Node count (ids `0..n`).
    pub n: usize,
    /// Per-node outbound frame cap; sends beyond it are refused with
    /// [`TcpError::Backpressured`].
    pub max_outbound_frames: usize,
    /// Size of the reused read buffer.
    pub read_buf_len: usize,
}

impl ReactorConfig {
    /// Defaults for `n` nodes: 64 queued frames per node, 64 KiB reads.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            max_outbound_frames: 64,
            read_buf_len: 64 * 1024,
        }
    }
}

/// Traffic counts accumulated by the reactor core (delivered work, as
/// opposed to the [`SyscallStats`] it cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorTraffic {
    /// Frames decoded from node connections (heartbeats included).
    pub frames_in: u64,
    /// Wire bytes read.
    pub bytes_in: u64,
    /// Frames queued toward nodes.
    pub frames_out: u64,
    /// Wire bytes accepted by the kernel.
    pub bytes_out: u64,
    /// Heartbeat frames absorbed.
    pub heartbeats: u64,
    /// Connections admitted (initial + rejoins).
    pub accepts: u64,
}

/// Backpressure + traffic telemetry; disabled handles until
/// `set_telemetry`.
#[derive(Default)]
struct ReactorTel {
    frames_in: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    bytes_out: Counter,
    heartbeats: Counter,
    accepts: Counter,
    send_failures: Counter,
    bp_rejects: Counter,
    bp_engaged: Counter,
    bp_nodes: Gauge,
}

impl ReactorTel {
    fn new(tel: &Telemetry) -> Self {
        Self {
            frames_in: tel.counter(
                "automon_net_frames_total{dir=\"in\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_in: tel.counter(
                "automon_net_bytes_total{dir=\"in\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
            frames_out: tel.counter(
                "automon_net_frames_total{dir=\"out\"}",
                "Frames moved over the transport, by direction",
            ),
            bytes_out: tel.counter(
                "automon_net_bytes_total{dir=\"out\"}",
                "Wire bytes moved (payload + length prefix), by direction",
            ),
            heartbeats: tel.counter(
                "automon_net_heartbeats_total",
                "Heartbeat frames received",
            ),
            accepts: tel.counter(
                "automon_net_accepts_total",
                "Node connections admitted (initial + rejoins)",
            ),
            send_failures: tel.counter(
                "automon_net_send_failures_total",
                "Coordinator sends that failed (dead connection)",
            ),
            bp_rejects: tel.counter(
                "automon_net_backpressure_rejects_total",
                "Sends refused because the node's outbound queue was full",
            ),
            bp_engaged: tel.counter(
                "automon_net_backpressure_engaged_total",
                "Times a node's outbound queue crossed into backpressure",
            ),
            bp_nodes: tel.gauge(
                "automon_net_backpressure_nodes",
                "Nodes currently under outbound backpressure",
            ),
        }
    }
}

/// Per-connection state machine in the slab.
struct ConnState<C> {
    conn: C,
    asm: FrameAssembler,
    outq: OutQueue,
    /// Set by the hello frame; `None` while the handshake is pending.
    node: Option<NodeId>,
    /// The last write was cut short; hold flushes until the next
    /// writable edge.
    write_blocked: bool,
}

/// Event-loop core: slab of connections over a [`Poller`].
///
/// Synchronous by design — `poll_once` runs one readiness round, frames
/// come out of `pop_inbound`, sends go in through `enqueue`. The
/// [`ReactorCoordinatorTransport`] wraps it in a thread; the sim
/// harness calls it inline.
pub struct Reactor<P: Poller> {
    poller: P,
    listener: Option<P::Listener>,
    slab: Vec<Option<ConnState<P::Conn>>>,
    free: Vec<usize>,
    /// node id -> slab slot of its live connection.
    node_slot: Vec<Option<usize>>,
    cfg: ReactorConfig,
    gate: Option<Box<dyn FrameGate>>,
    inbound: VecDeque<(SpanId, NodeMessage)>,
    /// Frames the gate pushed behind the current batch.
    reordered: Vec<(SpanId, NodeMessage)>,
    /// Frames parked by the gate, keyed by maturity round.
    delayed: BTreeMap<usize, Vec<(SpanId, NodeMessage)>>,
    round: usize,
    /// Nodes whose queue crossed the cap and has not drained below half.
    backpressured: Vec<bool>,
    last_seen_ms: Vec<u64>,
    read_buf: Vec<u8>,
    events: Vec<Event>,
    traffic: ReactorTraffic,
    tel: ReactorTel,
}

impl<P: Poller> Reactor<P> {
    /// A reactor over `poller` accepting on `listener` (pass `None` for
    /// pre-established connection setups via [`Reactor::adopt`]).
    pub fn new(
        mut poller: P,
        listener: Option<P::Listener>,
        cfg: ReactorConfig,
    ) -> io::Result<Self> {
        if let Some(l) = &listener {
            poller.register_listener(l)?;
        }
        let n = cfg.n;
        Ok(Self {
            poller,
            listener,
            slab: Vec::new(),
            free: Vec::new(),
            node_slot: vec![None; n],
            read_buf: vec![0u8; cfg.read_buf_len.max(4096)],
            cfg,
            gate: None,
            inbound: VecDeque::new(),
            reordered: Vec::new(),
            delayed: BTreeMap::new(),
            round: 0,
            backpressured: vec![false; n],
            last_seen_ms: vec![0; n],
            events: Vec::new(),
            traffic: ReactorTraffic::default(),
            tel: ReactorTel::default(),
        })
    }

    /// Install the fault-injection gate (chaos at the frame boundary).
    pub fn set_gate(&mut self, gate: Box<dyn FrameGate>) {
        self.gate = Some(gate);
    }

    /// Install observability handles.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = ReactorTel::new(tel);
    }

    /// Adopt a pre-established connection (used by tests and setups
    /// without a listener).
    pub fn adopt(&mut self, conn: P::Conn) -> io::Result<()> {
        self.install(conn)
    }

    /// Advance the protocol round: frames the gate delayed until now
    /// mature into the inbound queue.
    pub fn begin_round(&mut self, round: usize) {
        self.round = round;
        let due: Vec<usize> = self.delayed.range(..=round).map(|(&r, _)| r).collect();
        for r in due {
            for f in self.delayed.remove(&r).unwrap_or_default() {
                self.inbound.push_back(f);
            }
        }
    }

    /// One readiness round: wait (bounded by `timeout`), service every
    /// event, then append gate-reordered frames behind the batch.
    pub fn poll_once(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        self.poller.wait(&mut events, timeout)?;
        for &ev in &events {
            self.handle_event(ev);
        }
        self.events = events;
        for f in self.reordered.drain(..).collect::<Vec<_>>() {
            self.inbound.push_back(f);
        }
        Ok(())
    }

    /// Next decoded (and gate-surviving) inbound frame.
    pub fn pop_inbound(&mut self) -> Option<(SpanId, NodeMessage)> {
        self.inbound.pop_front()
    }

    /// Queue one outbound frame and flush opportunistically.
    ///
    /// [`TcpError::NotConnected`] without a live connection;
    /// [`TcpError::Backpressured`] when the node's queue is at its cap —
    /// the caller decides whether to drop, retry, or degrade the node.
    pub fn enqueue(&mut self, out: &Outbound) -> Result<(), TcpError> {
        let Some(slot) = self.node_slot.get(out.to).copied().flatten() else {
            return Err(TcpError::NotConnected(out.to));
        };
        let state = self.slab[slot].as_mut().expect("node_slot points at live slot");
        if state.outq.is_saturated() {
            self.tel.bp_rejects.inc();
            self.engage_backpressure(out.to);
            return Err(TcpError::Backpressured(out.to));
        }
        let frame: Bytes = wire::encode_coordinator_message_ctx(&out.msg, out.span);
        let wire_len = frame.len() as u64 + 4;
        state
            .outq
            .push(frame)
            .map_err(|_| TcpError::Backpressured(out.to))?;
        self.traffic.frames_out += 1;
        self.traffic.bytes_out += wire_len;
        self.tel.frames_out.inc();
        self.tel.bytes_out.add(wire_len);
        self.flush_slot(slot);
        Ok(())
    }

    /// Flush every connection with pending output (up to writability).
    pub fn flush_all(&mut self) {
        for slot in 0..self.slab.len() {
            if self.slab[slot].is_some() {
                self.flush_slot(slot);
            }
        }
    }

    /// `true` while a live (post-hello) connection to `node` exists.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.node_slot.get(node).copied().flatten().is_some()
    }

    /// Nodes with a live connection.
    pub fn connected_count(&self) -> usize {
        self.node_slot.iter().filter(|s| s.is_some()).count()
    }

    /// `true` while `node`'s outbound queue is in the backpressure band.
    pub fn node_backpressured(&self, node: NodeId) -> bool {
        self.backpressured.get(node).copied().unwrap_or(false)
    }

    /// Nodes currently under backpressure.
    pub fn backpressured_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.n).filter(|&i| self.backpressured[i]).collect()
    }

    /// Nodes not heard from (frame or heartbeat) for `timeout` on the
    /// poller's clock.
    pub fn stale_nodes(&self, timeout: Duration) -> Vec<NodeId> {
        let now = self.poller.now_ms();
        let horizon = timeout.as_millis() as u64;
        (0..self.cfg.n)
            .filter(|&i| now.saturating_sub(self.last_seen_ms[i]) >= horizon)
            .collect()
    }

    /// Traffic counters (frames/bytes moved).
    pub fn traffic(&self) -> ReactorTraffic {
        self.traffic
    }

    /// Syscalls the poller issued.
    pub fn syscalls(&self) -> SyscallStats {
        self.poller.stats()
    }

    /// Frames parked in the gate's delay queue.
    pub fn delayed_frames(&self) -> usize {
        self.delayed.values().map(Vec::len).sum()
    }

    // -- internals ----------------------------------------------------

    fn handle_event(&mut self, ev: Event) {
        if ev.token == LISTENER_TOKEN {
            self.accept_ready();
            return;
        }
        let slot = ev.token;
        if self.slab.get(slot).is_none_or(Option::is_none) {
            return; // connection already closed this batch
        }
        if ev.writable {
            if let Some(state) = self.slab[slot].as_mut() {
                state.write_blocked = false;
            }
            self.flush_slot(slot);
        }
        if ev.readable || ev.closed {
            self.read_ready(slot);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match self.poller.accept(listener) {
                Ok(Some(conn)) => {
                    if self.install(conn).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    fn install(&mut self, conn: P::Conn) -> io::Result<()> {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        self.poller.register(&conn, slot)?;
        self.slab[slot] = Some(ConnState {
            conn,
            asm: FrameAssembler::new(),
            // Double headroom over the advertised cap: `enqueue`
            // pre-checks saturation against the cap, the hard bound
            // only catches races on the threaded wrapper.
            outq: OutQueue::new(self.cfg.max_outbound_frames),
            node: None,
            write_blocked: false,
        });
        // Bytes may have arrived before registration; drain them now so
        // an edge that fired early is not lost.
        self.read_ready(slot);
        Ok(())
    }

    fn read_ready(&mut self, slot: usize) {
        loop {
            let Some(state) = self.slab[slot].as_mut() else { return };
            match self.poller.read(&mut state.conn, &mut self.read_buf) {
                Ok(0) => {
                    self.close_slot(slot);
                    return;
                }
                Ok(n) => {
                    self.traffic.bytes_in += n as u64;
                    self.tel.bytes_in.add(n as u64);
                    let chunk = &self.read_buf[..n];
                    if let Some(state) = self.slab[slot].as_mut() {
                        state.asm.feed(chunk);
                    }
                    if !self.drain_frames(slot) {
                        return; // connection closed on protocol error
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_slot(slot);
                    return;
                }
            }
        }
    }

    /// Decode every complete frame buffered on `slot`; `false` when the
    /// connection was dropped (corrupt frame, bad hello).
    fn drain_frames(&mut self, slot: usize) -> bool {
        loop {
            let Some(state) = self.slab[slot].as_mut() else { return false };
            let frame = match state.asm.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => return true,
                Err(_) => {
                    // Framing is byte-synchronized: an oversized or
                    // corrupt prefix means the stream is lost.
                    self.close_slot(slot);
                    return false;
                }
            };
            self.traffic.frames_in += 1;
            self.tel.frames_in.inc();
            let node = state.node;
            if frame.is_empty() {
                self.traffic.heartbeats += 1;
                self.tel.heartbeats.inc();
                if let Some(id) = node {
                    self.touch(id);
                }
                continue;
            }
            match node {
                None => {
                    // Handshake: the first frame introduces the node.
                    let Ok(msg) = wire::decode_node_message(&frame) else {
                        self.close_slot(slot);
                        return false;
                    };
                    let id = msg.sender();
                    if id >= self.cfg.n {
                        self.close_slot(slot);
                        return false;
                    }
                    // A rejoin replaces any stale connection.
                    if let Some(old) = self.node_slot[id] {
                        if old != slot {
                            self.close_slot(old);
                        }
                    }
                    if let Some(state) = self.slab[slot].as_mut() {
                        state.node = Some(id);
                    }
                    self.node_slot[id] = Some(slot);
                    self.traffic.accepts += 1;
                    self.tel.accepts.inc();
                    self.touch(id);
                }
                Some(id) => {
                    let Ok((span, msg)) = wire::decode_node_message_ctx(&frame) else {
                        self.close_slot(slot);
                        return false;
                    };
                    self.touch(id);
                    self.admit_inbound(span, msg);
                }
            }
        }
    }

    /// Pass one decoded frame through the gate (chaos seam) and into
    /// the inbound queue.
    fn admit_inbound(&mut self, span: SpanId, msg: NodeMessage) {
        let verdict = match self.gate.as_mut() {
            Some(g) => g.gate(false),
            None => GateVerdict::Deliver,
        };
        match verdict {
            GateVerdict::Deliver => self.inbound.push_back((span, msg)),
            GateVerdict::DeliverTwice => {
                self.inbound.push_back((span, msg.clone()));
                self.reordered.push((span, msg));
            }
            GateVerdict::Reorder => self.reordered.push((span, msg)),
            GateVerdict::Delay(rounds) => self
                .delayed
                .entry(self.round + rounds)
                .or_default()
                .push((span, msg)),
            GateVerdict::Discard => {}
        }
    }

    fn flush_slot(&mut self, slot: usize) {
        loop {
            let Some(state) = self.slab[slot].as_mut() else { return };
            if state.write_blocked || state.outq.is_empty() {
                break;
            }
            let mut offered = 0usize;
            let poller = &mut self.poller;
            let conn = &mut state.conn;
            let res = state.outq.flush_with(|iov| {
                offered = iov.iter().map(|v| v.len).sum();
                poller.writev(conn, iov)
            });
            match res {
                Ok(n) if n == offered => continue,
                Ok(_) => {
                    // Partial acceptance: the send buffer filled; the
                    // next writable edge resumes exactly where the
                    // written bytes stopped.
                    state.write_blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    state.write_blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.tel.send_failures.inc();
                    self.close_slot(slot);
                    return;
                }
            }
        }
        // Draining below half the cap relieves backpressure.
        if let Some(state) = self.slab[slot].as_ref() {
            if let Some(id) = state.node {
                if self.backpressured[id]
                    && state.outq.len() <= self.cfg.max_outbound_frames / 2
                {
                    self.backpressured[id] = false;
                    self.sync_bp_gauge();
                }
            }
        }
    }

    fn engage_backpressure(&mut self, node: NodeId) {
        if !self.backpressured[node] {
            self.backpressured[node] = true;
            self.tel.bp_engaged.inc();
            self.sync_bp_gauge();
        }
    }

    fn sync_bp_gauge(&self) {
        self.tel
            .bp_nodes
            .set(self.backpressured.iter().filter(|&&b| b).count() as f64);
    }

    fn touch(&mut self, node: NodeId) {
        self.last_seen_ms[node] = self.poller.now_ms();
    }

    fn close_slot(&mut self, slot: usize) {
        let Some(state) = self.slab[slot].take() else { return };
        let _ = self.poller.deregister(&state.conn);
        if let Some(id) = state.node {
            if self.node_slot[id] == Some(slot) {
                self.node_slot[id] = None;
                // A dead connection cannot exert queue pressure.
                if self.backpressured[id] {
                    self.backpressured[id] = false;
                    self.sync_bp_gauge();
                }
            }
        }
        self.free.push(slot);
    }
}

// ---------------------------------------------------------------------
// Threaded wrapper over the epoll reactor
// ---------------------------------------------------------------------

/// State shared between the caller-facing handle and the event loop.
struct LoopShared {
    /// Outbounds accepted by `send`, waiting for the loop.
    cmd: Mutex<VecDeque<Outbound>>,
    /// Per-node frames in flight (cmd queue + reactor queue), the
    /// synchronous backpressure check.
    depth: Vec<AtomicUsize>,
    connected: Vec<AtomicBool>,
    backpressured: Vec<AtomicBool>,
    last_seen_ms: Vec<AtomicU64>,
    now_ms: AtomicU64,
    traffic: [AtomicU64; 6],
    shutdown: AtomicBool,
    bp_rejects: Counter,
    send_failures: Counter,
}

impl LoopShared {
    fn publish(&self, reactor: &Reactor<EpollPoller>) {
        for i in 0..reactor.cfg.n {
            self.connected[i].store(reactor.is_connected(i), Ordering::Relaxed);
            self.backpressured[i].store(reactor.node_backpressured(i), Ordering::Relaxed);
            self.last_seen_ms[i].store(reactor.last_seen_ms[i], Ordering::Relaxed);
        }
        self.now_ms.store(reactor.poller.now_ms(), Ordering::Relaxed);
        let t = reactor.traffic();
        for (cell, v) in self.traffic.iter().zip([
            t.frames_in,
            t.bytes_in,
            t.frames_out,
            t.bytes_out,
            t.heartbeats,
            t.accepts,
        ]) {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

/// Coordinator transport over the epoll reactor: same API surface as
/// [`crate::tcp::TcpCoordinatorTransport`], one event-loop thread
/// instead of a reader thread per node, and synchronous backpressure on
/// `send`.
pub struct ReactorCoordinatorTransport {
    /// Inbound frames cross the loop→caller channel in per-poll-cycle
    /// batches (one channel node per batch, not per frame); `buf`
    /// holds the tail of the last batch between `recv` calls.
    rx: Receiver<Vec<(SpanId, NodeMessage)>>,
    buf: Mutex<VecDeque<(SpanId, NodeMessage)>>,
    shared: Arc<LoopShared>,
    waker: crate::poller::EpollWaker,
    syscalls: Arc<crate::poller::SyscallCounters>,
    max_outbound_frames: usize,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ReactorCoordinatorTransport {
    /// Bind `addr` and accept `n` node hellos (blocking; see
    /// [`ReactorCoordinatorTransport::bind_with_timeout`]).
    pub fn bind(addr: SocketAddr, n: usize) -> Result<(Self, SocketAddr), TcpError> {
        Self::bind_with_timeout(addr, n, None)
    }

    /// Like [`ReactorCoordinatorTransport::bind`] with a hello deadline.
    pub fn bind_with_timeout(
        addr: SocketAddr,
        n: usize,
        hello_timeout: Option<Duration>,
    ) -> Result<(Self, SocketAddr), TcpError> {
        Self::bind_with_telemetry(addr, n, hello_timeout, Telemetry::disabled())
    }

    /// Full constructor: transport + backpressure counters registered
    /// on `tel`.
    pub fn bind_with_telemetry(
        addr: SocketAddr,
        n: usize,
        hello_timeout: Option<Duration>,
        tel: Telemetry,
    ) -> Result<(Self, SocketAddr), TcpError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = EpollPoller::new()?;
        let syscalls = poller.counters();
        let waker = poller.waker();
        let mut reactor = Reactor::new(poller, Some(listener), ReactorConfig::new(n))?;
        reactor.set_telemetry(&tel);

        // Hello phase: pump the loop inline until every node greeted.
        let deadline = hello_timeout.map(|t| Instant::now() + t);
        while reactor.connected_count() < n {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                let missing = (0..n).filter(|&i| !reactor.is_connected(i)).collect();
                return Err(TcpError::HelloTimeout(missing));
            }
            reactor
                .poll_once(Some(Duration::from_millis(20)))
                .map_err(TcpError::Io)?;
        }

        let shared = Arc::new(LoopShared {
            cmd: Mutex::new(VecDeque::new()),
            depth: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            connected: (0..n).map(|_| AtomicBool::new(true)).collect(),
            backpressured: (0..n).map(|_| AtomicBool::new(false)).collect(),
            last_seen_ms: (0..n).map(|_| AtomicU64::new(0)).collect(),
            now_ms: AtomicU64::new(0),
            traffic: Default::default(),
            shutdown: AtomicBool::new(false),
            bp_rejects: tel.counter(
                "automon_net_backpressure_rejects_total",
                "Sends refused because the node's outbound queue was full",
            ),
            send_failures: tel.counter(
                "automon_net_send_failures_total",
                "Coordinator sends that failed (dead connection)",
            ),
        });
        shared.publish(&reactor);

        let (tx, rx) = channel();
        let max_outbound_frames = reactor.cfg.max_outbound_frames;
        let loop_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("automon-reactor".into())
            .spawn(move || event_loop(reactor, loop_shared, tx))
            .map_err(TcpError::Io)?;

        Ok((
            Self {
                rx,
                buf: Mutex::new(VecDeque::new()),
                shared,
                waker,
                syscalls,
                max_outbound_frames,
                handle: Some(handle),
            },
            local,
        ))
    }

    /// Blocking receive; `None` once the loop exits.
    pub fn recv(&self) -> Option<NodeMessage> {
        self.recv_traced().map(|(_, m)| m)
    }

    /// Receive with the propagated span.
    pub fn recv_traced(&self) -> Option<(SpanId, NodeMessage)> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = buf.pop_front() {
                return Some(item);
            }
            buf.extend(self.rx.recv().ok()?);
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<NodeMessage> {
        self.recv_timeout_traced(timeout).map(|(_, m)| m)
    }

    /// [`ReactorCoordinatorTransport::recv_traced`] with a timeout.
    pub fn recv_timeout_traced(&self, timeout: Duration) -> Option<(SpanId, NodeMessage)> {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = buf.pop_front() {
                return Some(item);
            }
            buf.extend(self.rx.recv_timeout(timeout).ok()?);
        }
    }

    /// Queue one outbound frame toward its node.
    ///
    /// Fails synchronously: [`TcpError::NotConnected`] without a live
    /// connection, [`TcpError::Backpressured`] when the node already
    /// has a full queue's worth of frames in flight — the signal to
    /// degrade that node to lazy-sync participation instead of letting
    /// its queue grow without bound.
    pub fn send(&self, out: &Outbound) -> Result<(), TcpError> {
        if !self.shared.connected[out.to].load(Ordering::Relaxed) {
            return Err(TcpError::NotConnected(out.to));
        }
        if self.shared.backpressured[out.to].load(Ordering::Relaxed)
            || self.shared.depth[out.to].load(Ordering::Relaxed) >= self.max_outbound_frames
        {
            self.shared.bp_rejects.inc();
            return Err(TcpError::Backpressured(out.to));
        }
        self.shared.depth[out.to].fetch_add(1, Ordering::Relaxed);
        self.shared.cmd.lock().unwrap_or_else(|e| e.into_inner()).push_back(out.clone());
        self.waker.wake();
        Ok(())
    }

    /// `true` while a live connection to `node` exists.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.shared.connected[node].load(Ordering::Relaxed)
    }

    /// `true` while `node` is under outbound backpressure.
    pub fn is_backpressured(&self, node: NodeId) -> bool {
        self.shared.backpressured[node].load(Ordering::Relaxed)
    }

    /// Nodes currently under backpressure — feed to
    /// `Coordinator::set_backpressured` so lazy-sync growth prefers
    /// responsive nodes.
    pub fn backpressured_nodes(&self) -> Vec<NodeId> {
        (0..self.shared.backpressured.len())
            .filter(|&i| self.shared.backpressured[i].load(Ordering::Relaxed))
            .collect()
    }

    /// Nodes not heard from for `timeout`.
    pub fn stale_nodes(&self, timeout: Duration) -> Vec<NodeId> {
        let now = self.shared.now_ms.load(Ordering::Relaxed);
        let horizon = timeout.as_millis() as u64;
        (0..self.shared.last_seen_ms.len())
            .filter(|&i| {
                now.saturating_sub(self.shared.last_seen_ms[i].load(Ordering::Relaxed))
                    >= horizon
            })
            .collect()
    }

    /// Syscalls the event loop has issued.
    pub fn syscall_stats(&self) -> SyscallStats {
        self.syscalls.snapshot()
    }

    /// Traffic moved by the event loop.
    pub fn traffic(&self) -> ReactorTraffic {
        let t = &self.shared.traffic;
        ReactorTraffic {
            frames_in: t[0].load(Ordering::Relaxed),
            bytes_in: t[1].load(Ordering::Relaxed),
            frames_out: t[2].load(Ordering::Relaxed),
            bytes_out: t[3].load(Ordering::Relaxed),
            heartbeats: t[4].load(Ordering::Relaxed),
            accepts: t[5].load(Ordering::Relaxed),
        }
    }
}

impl Drop for ReactorCoordinatorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn event_loop(
    mut reactor: Reactor<EpollPoller>,
    shared: Arc<LoopShared>,
    tx: Sender<Vec<(SpanId, NodeMessage)>>,
) {
    // `publish` mirrors per-node state into `shared` with O(n) atomic
    // stores — at 10k nodes that is ~30k stores, far more work than
    // handling one frame. The mirror feeds introspection (staleness,
    // backpressure flags) that only needs coarse freshness, so under
    // load it is refreshed every `PUBLISH_EVERY` iterations and
    // immediately whenever the loop goes idle.
    const PUBLISH_EVERY: u32 = 64;
    let mut since_publish = 0u32;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Move accepted sends into the reactor's per-node queues.
        loop {
            let Some(out) = shared
                .cmd
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            else {
                break;
            };
            let to = out.to;
            match reactor.enqueue(&out) {
                Ok(()) => {
                    shared.depth[to].fetch_sub(1, Ordering::Relaxed);
                }
                Err(TcpError::Backpressured(_)) => {
                    // Rare race: the pre-check admitted more than the
                    // queue takes. Put it back and let the queue drain.
                    shared
                        .cmd
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_front(out);
                    break;
                }
                Err(_) => {
                    shared.depth[to].fetch_sub(1, Ordering::Relaxed);
                    shared.send_failures.inc();
                }
            }
        }
        if reactor.poll_once(Some(Duration::from_millis(100))).is_err() {
            break;
        }
        let mut batch = Vec::new();
        while let Some(item) = reactor.pop_inbound() {
            batch.push(item);
        }
        let drained = !batch.is_empty();
        if drained && tx.send(batch).is_err() {
            shared.shutdown.store(true, Ordering::Relaxed);
        }
        since_publish += 1;
        if !drained || since_publish >= PUBLISH_EVERY {
            shared.publish(&reactor);
            since_publish = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_poller::{SimNet, SimPoller};
    use crate::tcp::TcpNodeTransport;
    use automon_core::{CommCause, CoordinatorMessage, ViolationKind};

    fn sim_reactor(seed: u64, n: usize) -> (Reactor<SimPoller>, SimNet) {
        let net = SimNet::with_limits(seed, 64, 1 << 16);
        let reactor = Reactor::new(
            net.poller(),
            Some(net.listener()),
            ReactorConfig::new(n),
        )
        .expect("sim reactor");
        (reactor, net)
    }

    fn hello(client: &crate::sim_poller::SimClient, id: usize) {
        let frame = wire::encode_node_message(&NodeMessage::LocalVector {
            node: id,
            vector: Vec::new(),
            epoch: 0,
        });
        assert!(client.send_frame(&frame));
    }

    #[test]
    fn coalesces_many_frames_per_read_batch() {
        let (mut reactor, net) = sim_reactor(7, 1);
        let client = net.connect();
        hello(&client, 0);
        // Ten reports queued before the reactor looks: they arrive in
        // few big chunks and all decode.
        for k in 0..10 {
            let frame = wire::encode_node_message(&NodeMessage::Violation {
                node: 0,
                kind: ViolationKind::SafeZone,
                local_vector: vec![k as f64],
                epoch: 1,
            });
            client.send_frame(&frame);
        }
        let mut got = Vec::new();
        for _ in 0..64 {
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
            while let Some((_, m)) = reactor.pop_inbound() {
                got.push(m);
            }
            if got.len() == 10 {
                break;
            }
        }
        assert_eq!(got.len(), 10, "all coalesced frames decode");
        assert!(reactor.is_connected(0));
        let t = reactor.traffic();
        assert_eq!(t.frames_in, 11, "hello + 10 reports");
        assert!(
            reactor.syscalls().reads < 2 * 11,
            "coalescing must beat two syscalls per frame: {:?}",
            reactor.syscalls()
        );
    }

    #[test]
    fn backpressure_engages_and_relieves() {
        // Tiny client buffer so writes jam immediately.
        let net = SimNet::with_limits(3, 64, 32);
        let mut reactor = Reactor::new(
            net.poller(),
            Some(net.listener()),
            ReactorConfig {
                max_outbound_frames: 4,
                ..ReactorConfig::new(1)
            },
        )
        .unwrap();
        let client = net.connect();
        hello(&client, 0);
        for _ in 0..16 {
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
            if reactor.is_connected(0) {
                break;
            }
        }
        let out = Outbound::new(
            0,
            CoordinatorMessage::SlackUpdate {
                slack: vec![0.0; 8],
                epoch: 1,
            },
            CommCause::LazySync,
        );
        // Fill the bounded queue; the 5th+ send must be refused.
        let mut refused = 0;
        for _ in 0..10 {
            match reactor.enqueue(&out) {
                Ok(()) => {}
                Err(TcpError::Backpressured(0)) => refused += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(refused > 0, "bounded queue must refuse past the cap");
        assert!(reactor.node_backpressured(0));
        assert_eq!(reactor.backpressured_nodes(), vec![0]);

        // The client drains; flushes resume; pressure relieves.
        for _ in 0..200 {
            let _ = client.recv_frames();
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
            if !reactor.node_backpressured(0) {
                break;
            }
        }
        assert!(!reactor.node_backpressured(0), "drain must relieve");
        assert!(reactor.enqueue(&out).is_ok());
    }

    #[test]
    fn rejoin_replaces_stale_connection() {
        let (mut reactor, net) = sim_reactor(5, 2);
        let old = net.connect();
        hello(&old, 1);
        for _ in 0..8 {
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
        }
        assert!(reactor.is_connected(1));
        // Same node dials back in (crash + restart): the new connection
        // takes over the id.
        let new = net.connect();
        hello(&new, 1);
        for _ in 0..8 {
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
        }
        assert!(reactor.is_connected(1));
        let out = Outbound::new(
            1,
            CoordinatorMessage::RequestLocalVector { epoch: 0 },
            CommCause::FullSync,
        );
        reactor.enqueue(&out).unwrap();
        for _ in 0..8 {
            reactor.poll_once(Some(Duration::ZERO)).unwrap();
        }
        assert_eq!(new.recv_frames().len(), 1, "frame lands on the rejoin");
        assert!(old.recv_frames().is_empty(), "stale conn got nothing");
        assert!(!reactor.is_connected(0), "node 0 never connected");
    }

    #[test]
    fn real_sockets_end_to_end_with_tcp_node_transport() {
        // The reactor speaks the same wire protocol as the blocking
        // transport: an unmodified TcpNodeTransport talks to it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder = std::thread::spawn(move || {
            ReactorCoordinatorTransport::bind(addr, 2).expect("bind")
        });
        let mut a = TcpNodeTransport::connect(addr, 0).expect("connect 0");
        let mut b = TcpNodeTransport::connect(addr, 1).expect("connect 1");
        let (tp, _) = binder.join().unwrap();
        assert!(tp.is_connected(0) && tp.is_connected(1));

        // Up: both nodes report; frames arrive with spans intact.
        let report = |node| NodeMessage::Violation {
            node,
            kind: ViolationKind::SafeZone,
            local_vector: vec![1.5, -0.5],
            epoch: 2,
        };
        a.send_traced(&report(0), automon_obs::SpanId(11)).unwrap();
        b.send_traced(&report(1), automon_obs::SpanId(22)).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(tp.recv_timeout_traced(Duration::from_secs(5)).expect("frame"));
        }
        got.sort_by_key(|(_, m)| m.sender());
        assert_eq!(got[0].0, automon_obs::SpanId(11));
        assert_eq!(got[0].1, report(0));
        assert_eq!(got[1].0, automon_obs::SpanId(22));

        // Down: send queues through the loop and lands on the node.
        let out = Outbound::new(
            1,
            CoordinatorMessage::RequestLocalVector { epoch: 2 },
            CommCause::FullSync,
        )
        .with_span(automon_obs::SpanId(7));
        tp.send(&out).unwrap();
        let (span, msg) = b.recv_traced().expect("reply");
        assert_eq!(span, automon_obs::SpanId(7));
        assert_eq!(msg, out.msg);

        // Heartbeats keep liveness fresh without surfacing.
        a.send_heartbeat().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(tp.stale_nodes(Duration::from_secs(60)).is_empty());
        let t = tp.traffic();
        assert!(t.frames_in >= 5 && t.frames_out >= 1);
        assert!(tp.syscall_stats().waits > 0);
    }

    #[test]
    fn disconnect_surfaces_as_not_connected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let binder = std::thread::spawn(move || {
            ReactorCoordinatorTransport::bind(addr, 1).expect("bind")
        });
        let a = TcpNodeTransport::connect(addr, 0).expect("connect");
        let (tp, _) = binder.join().unwrap();
        drop(a);
        let out = Outbound::new(
            0,
            CoordinatorMessage::RequestLocalVector { epoch: 0 },
            CommCause::FullSync,
        );
        let mut saw_down = false;
        for _ in 0..200 {
            match tp.send(&out) {
                Err(TcpError::NotConnected(0)) => {
                    saw_down = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(saw_down, "loop must notice the hangup");
    }
}
