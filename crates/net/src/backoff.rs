//! Deterministic jittered backoff, shared by both transport backends.
//!
//! The transport used to sleep hardcoded `2ms`/`5ms`/`10ms` literals in
//! its accept-poll and reconnect loops. Those magic numbers are now one
//! policy: an exponential schedule with *seeded* jitter, so two runs
//! with the same seed sleep the same sequence of durations — chaos and
//! determinism smokes stay byte-identical while still avoiding the
//! thundering-herd resonance that un-jittered retry loops produce.
//!
//! The jitter source is a tiny splitmix/xorshift chain rather than
//! `rand`, so `automon-net` keeps its dependency surface and the
//! sequence is stable across platforms.

use std::time::Duration;

/// Exponential backoff with deterministic jitter.
///
/// Delay for attempt `k` (0-based) is `min(base << k, max)` scaled by a
/// jitter factor in `[0.5, 1.0]` drawn from a seeded xorshift64* chain.
/// [`Backoff::reset`] rewinds the exponent but *not* the jitter chain,
/// so distinct bursts of retries still decorrelate.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base`, capping at `max`, jittered from
    /// `seed`. A zero seed is mapped to a fixed non-zero constant
    /// (xorshift has a zero fixpoint).
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        Self {
            base,
            max,
            attempt: 0,
            // splitmix64 scramble: nearby seeds (node ids) give
            // unrelated jitter chains.
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// The accept/poll idle schedule used by the transports: 1ms..10ms.
    /// `seed` is typically a stable endpoint identity (node id, port).
    pub fn accept_poll(seed: u64) -> Self {
        Self::new(Duration::from_millis(1), Duration::from_millis(10), seed)
    }

    /// Next delay in the schedule; advances the exponent and the jitter
    /// chain.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.max);
        self.attempt = self.attempt.saturating_add(1);
        // Jitter factor in [0.5, 1.0]: scale nanos by (1/2 + u/2).
        let u = self.next_u64();
        let frac = (u >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let nanos = exp.as_nanos() as f64 * (0.5 + frac * 0.5);
        Duration::from_nanos(nanos as u64)
    }

    /// Sleep for the next delay in the schedule.
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Rewind the exponent after a success; the jitter chain advances
    /// monotonically so the next burst draws fresh factors.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts taken since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, well-distributed enough for
        // jitter (this is not a statistical RNG).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(Duration::from_millis(1), Duration::from_millis(100), 7);
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(100), 7);
        let da: Vec<_> = (0..10).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "seeded backoff must be deterministic");
    }

    #[test]
    fn different_seed_different_jitter() {
        let mut a = Backoff::new(Duration::from_millis(4), Duration::from_secs(1), 1);
        let mut b = Backoff::new(Duration::from_millis(4), Duration::from_secs(1), 2);
        let da: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn delays_grow_and_cap_within_jitter_band() {
        let base = Duration::from_millis(2);
        let max = Duration::from_millis(16);
        let mut bo = Backoff::new(base, max, 3);
        let mut prev_ceiling = Duration::ZERO;
        for k in 0..8 {
            let d = bo.next_delay();
            let ceiling = base.saturating_mul(1 << k.min(16)).min(max);
            assert!(d <= ceiling, "attempt {k}: {d:?} above {ceiling:?}");
            assert!(d >= ceiling / 2, "attempt {k}: {d:?} under half ceiling");
            assert!(ceiling >= prev_ceiling, "schedule must be monotone");
            prev_ceiling = ceiling;
        }
    }

    #[test]
    fn reset_rewinds_exponent_not_chain() {
        let mut bo = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 9);
        let first = bo.next_delay();
        let _ = bo.next_delay();
        bo.reset();
        assert_eq!(bo.attempt(), 0);
        let again = bo.next_delay();
        // Same ceiling (1ms), but a later jitter draw: almost surely a
        // different duration — and never above the ceiling.
        assert!(again <= Duration::from_millis(1));
        assert_ne!(first, again, "jitter chain must advance across resets");
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut bo = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 0);
        assert!(bo.next_delay() > Duration::ZERO);
    }
}
