//! Messaging fabric for AutoMon.
//!
//! The paper treats messaging as the application's concern (§3.8): the
//! library produces and consumes message *contents*, and a fabric such as
//! ZeroMQ moves them. This crate supplies the Rust equivalents used by
//! the evaluation:
//!
//! * [`wire`] — a compact, hand-rolled binary codec for every protocol
//!   message. Payload sizes are deterministic, which is what the §4.7
//!   bandwidth experiments measure.
//! * [`CountingFabric`] — an in-process fabric that round-trips every
//!   message through the codec (so the bytes are real, not estimated),
//!   accumulating per-direction message and byte counts plus a
//!   configurable per-message transport overhead — reproducing the
//!   payload-vs-traffic split of Figure 10.
//! * [`ChannelFabric`] — a crossbeam-channel fabric carrying encoded
//!   frames between threads, for applications that want the
//!   coordinator and nodes actually decoupled (the ZeroMQ-style
//!   deployment of §4.7, minus the WAN).
//! * [`delta`] — sparse delta compression for local vectors, the §5
//!   bandwidth-reduction direction the paper defers to future work.
//! * [`tcp`] — the protocol over real `std::net` sockets with
//!   length-prefixed frames: the dependency-free ZeroMQ replacement for
//!   actual multi-process deployments. One reader thread per
//!   connection; the baseline (`--net-backend threaded`).
//! * [`reactor`] — the nonblocking runtime (`--net-backend reactor`):
//!   an edge-triggered epoll event loop ([`poller`]) over a slab of
//!   per-connection state machines, with frame coalescing and `writev`
//!   scatter-gather batching ([`frame`]), bounded outbound queues that
//!   surface backpressure, and a chaos seam at the decoded-frame
//!   boundary ([`gate`]). The same core runs deterministically over
//!   [`sim_poller`]'s seeded in-memory network for byte-identical
//!   replay (DESIGN.md §3.15).
//! * [`backoff`] — the one seeded, jittered retry/poll schedule both
//!   backends sleep on.
//!
//! For the hierarchical fleet (DESIGN.md §3.14), [`ShardedFabric`]
//! composes one `CountingFabric` per leaf shard with a cause-mapped
//! root fabric for inter-tier frames, and merges their accounting.

pub mod backoff;
pub mod delta;
mod fabric;
pub mod frame;
pub mod gate;
pub mod poller;
pub mod reactor;
mod sharded;
pub mod sim_poller;
pub mod tcp;
pub mod wire;

pub use backoff::Backoff;
pub use fabric::{ChannelFabric, CoordinatorEndpoint, CountingFabric, NodeEndpoint, TrafficStats};
pub use frame::{FrameAssembler, IoVec, OutQueue};
pub use gate::{FrameGate, GateVerdict, OpenGate};
pub use poller::{EpollPoller, Event, Poller, SyscallStats, Token};
pub use reactor::{Reactor, ReactorConfig, ReactorCoordinatorTransport, ReactorTraffic};
pub use sharded::ShardedFabric;
pub use sim_poller::{SimClient, SimNet, SimPoller};
