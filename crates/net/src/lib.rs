//! Messaging fabric for AutoMon.
//!
//! The paper treats messaging as the application's concern (§3.8): the
//! library produces and consumes message *contents*, and a fabric such as
//! ZeroMQ moves them. This crate supplies the Rust equivalents used by
//! the evaluation:
//!
//! * [`wire`] — a compact, hand-rolled binary codec for every protocol
//!   message. Payload sizes are deterministic, which is what the §4.7
//!   bandwidth experiments measure.
//! * [`CountingFabric`] — an in-process fabric that round-trips every
//!   message through the codec (so the bytes are real, not estimated),
//!   accumulating per-direction message and byte counts plus a
//!   configurable per-message transport overhead — reproducing the
//!   payload-vs-traffic split of Figure 10.
//! * [`ChannelFabric`] — a crossbeam-channel fabric carrying encoded
//!   frames between threads, for applications that want the
//!   coordinator and nodes actually decoupled (the ZeroMQ-style
//!   deployment of §4.7, minus the WAN).
//! * [`delta`] — sparse delta compression for local vectors, the §5
//!   bandwidth-reduction direction the paper defers to future work.
//! * [`tcp`] — the protocol over real `std::net` sockets with
//!   length-prefixed frames: the dependency-free ZeroMQ replacement for
//!   actual multi-process deployments.

//!
//! For the hierarchical fleet (DESIGN.md §3.14), [`ShardedFabric`]
//! composes one `CountingFabric` per leaf shard with a cause-mapped
//! root fabric for inter-tier frames, and merges their accounting.

pub mod delta;
mod fabric;
mod sharded;
pub mod tcp;
pub mod wire;

pub use fabric::{ChannelFabric, CoordinatorEndpoint, CountingFabric, NodeEndpoint, TrafficStats};
pub use sharded::ShardedFabric;
