//! Streaming frame assembly and batched outbound queues.
//!
//! The blocking transport reads one frame per pair of `read_exact`
//! calls: two syscalls per frame, regardless of how many frames the
//! kernel already buffered. The reactor instead drains everything a
//! readiness event promises into a reusable buffer and feeds it to a
//! [`FrameAssembler`], which peels off *every* complete length-prefixed
//! frame — frame coalescing: many frames per `read` syscall, with
//! partial frames (even a split length prefix) carried over to the next
//! chunk byte-for-byte.
//!
//! The write side mirrors it: [`OutQueue`] holds encoded frames with
//! their 4-byte prefixes and lays the whole backlog out as an iovec
//! list for one `writev` — scatter-gather: many frames per syscall,
//! zero copies into a staging buffer, and the iovec storage is reused
//! across rounds so steady-state flushing does not allocate per frame.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::wire::{check_frame_len, frame_len_prefix, WireError};

/// Incremental decoder for length-prefixed frames over arbitrary byte
/// chunks.
///
/// Feed it whatever the transport read — any split point is fine,
/// including mid-length-prefix — and pull complete frames with
/// [`FrameAssembler::next_frame`]. Length prefixes are validated
/// against [`crate::wire::MAX_FRAME_LEN`] *before* any payload
/// allocation, so a corrupt prefix surfaces as
/// [`WireError::Oversized`] instead of an OOM.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Unconsumed bytes: at most one partial frame plus whatever whole
    /// frames arrived in the last chunk.
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away
    /// opportunistically instead of on every frame.
    pos: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one chunk of raw transport bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame payload (the length prefix is
    /// stripped), `Ok(None)` when more bytes are needed. An empty
    /// payload — a heartbeat — is returned as an empty `Vec`.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let n = check_frame_len(u32::from_le_bytes([
            avail[0], avail[1], avail[2], avail[3],
        ]))?;
        if avail.len() < 4 + n {
            return Ok(None);
        }
        let frame = avail[4..4 + n].to_vec();
        self.pos += 4 + n;
        Ok(Some(frame))
    }

    /// Drop consumed bytes once they dominate the buffer, keeping the
    /// amortized cost of `feed` linear.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// A raw scatter-gather segment, layout-compatible with `struct iovec`
/// (`iov_base`, `iov_len`) so a slice of these can be handed to the
/// `writev` syscall directly.
///
/// Safety contract: an `IoVec` is only valid while the memory it points
/// into is alive and unmoved. [`OutQueue`] upholds this by building the
/// list immediately before the write call and clearing it immediately
/// after, while the owning queue entries are untouched.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct IoVec {
    /// Segment base pointer (`iovec.iov_base`).
    pub base: *const u8,
    /// Segment length (`iovec.iov_len`).
    pub len: usize,
}

impl IoVec {
    fn of(slice: &[u8]) -> Self {
        Self {
            base: slice.as_ptr(),
            len: slice.len(),
        }
    }
}

// An IoVec is a dumb pointer+len pair; the OutQueue that owns the
// pointed-to frames is what actually moves between threads.
unsafe impl Send for IoVec {}

/// One queued outbound frame: its 4-byte length prefix (stored inline
/// so no prefixed copy of the payload is ever made) and the encoded
/// payload.
#[derive(Debug)]
struct OutFrame {
    prefix: [u8; 4],
    payload: Bytes,
    /// Bytes of `prefix ++ payload` already written (partial writev).
    sent: usize,
}

impl OutFrame {
    fn total(&self) -> usize {
        4 + self.payload.len()
    }
}

/// Bounded outbound frame queue with iovec batching.
///
/// `push` rejects frames once `max_frames` are queued — the transport
/// surfaces that as backpressure instead of buffering without bound.
/// `fill_iovecs` lays out every unsent byte as scatter-gather segments
/// (reusing one `Vec<IoVec>` allocation across rounds);
/// `advance(n)` consumes `n` written bytes, handling partial writes
/// that stop mid-prefix or mid-payload.
#[derive(Debug)]
pub struct OutQueue {
    frames: VecDeque<OutFrame>,
    iovecs: Vec<IoVec>,
    max_frames: usize,
    queued_bytes: usize,
}

impl OutQueue {
    /// A queue admitting at most `max_frames` in-flight frames.
    pub fn new(max_frames: usize) -> Self {
        Self {
            frames: VecDeque::new(),
            iovecs: Vec::new(),
            max_frames,
            queued_bytes: 0,
        }
    }

    /// Queue one encoded frame payload. `Err(payload)` hands the frame
    /// back when the queue is at its bound (backpressure); a payload
    /// over the wire cap is a [`WireError::Oversized`] bug upstream and
    /// panics in debug builds, but is refused (returned) here too.
    pub fn push(&mut self, payload: Bytes) -> Result<(), Bytes> {
        if self.frames.len() >= self.max_frames {
            return Err(payload);
        }
        let prefix = match frame_len_prefix(payload.len()) {
            Ok(len) => len.to_le_bytes(),
            Err(_) => {
                debug_assert!(false, "oversized frame reached the out queue");
                return Err(payload);
            }
        };
        self.queued_bytes += 4 + payload.len();
        self.frames.push_back(OutFrame {
            prefix,
            payload,
            sent: 0,
        });
        Ok(())
    }

    /// Queued frames not yet fully written.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Unsent byte total across the queue (prefixes included).
    pub fn pending_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// `true` when another `push` would be refused.
    pub fn is_saturated(&self) -> bool {
        self.frames.len() >= self.max_frames
    }

    /// Lay every unsent byte out as iovec segments and run `write` over
    /// the list; consume however many bytes it reports written. The
    /// segment list borrows the queued frames only for the duration of
    /// the call and its storage is reused across calls.
    pub fn flush_with<E>(
        &mut self,
        mut write: impl FnMut(&[IoVec]) -> Result<usize, E>,
    ) -> Result<usize, E> {
        if self.frames.is_empty() {
            return Ok(0);
        }
        self.iovecs.clear();
        for f in &self.frames {
            if f.sent < 4 {
                self.iovecs.push(IoVec::of(&f.prefix[f.sent..]));
                self.iovecs.push(IoVec::of(&f.payload));
            } else if f.sent < f.total() {
                self.iovecs.push(IoVec::of(&f.payload[f.sent - 4..]));
            }
        }
        let written = match write(&self.iovecs) {
            Ok(n) => n,
            Err(e) => {
                self.iovecs.clear();
                return Err(e);
            }
        };
        self.iovecs.clear();
        self.advance(written);
        Ok(written)
    }

    /// Consume `n` written bytes from the front of the queue.
    fn advance(&mut self, mut n: usize) {
        self.queued_bytes -= n.min(self.queued_bytes);
        while n > 0 {
            let Some(front) = self.frames.front_mut() else {
                debug_assert!(false, "advanced past the queue");
                return;
            };
            let remaining = front.total() - front.sent;
            if n >= remaining {
                n -= remaining;
                self.frames.pop_front();
            } else {
                front.sent += n;
                n = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefixed(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_le_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn assembles_across_arbitrary_splits() {
        let frames: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 300]];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&prefixed(f));
        }
        // Feed one byte at a time: every split point, including inside
        // every length prefix.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.feed(&[b]);
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut asm = FrameAssembler::new();
        asm.feed(&u32::MAX.to_le_bytes());
        assert!(matches!(asm.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn out_queue_batches_and_handles_partial_writes() {
        let mut q = OutQueue::new(8);
        q.push(Bytes::from(vec![1u8, 2, 3])).unwrap();
        q.push(Bytes::from(vec![4u8; 10])).unwrap();
        assert_eq!(q.pending_bytes(), (4 + 3) + (4 + 10));

        // First flush: the "kernel" takes 5 bytes — the whole first
        // prefix plus one payload byte... no: 4 prefix + 1 payload.
        let n = q
            .flush_with(|iov| {
                assert_eq!(iov.len(), 4, "two frames, prefix+payload each");
                Ok::<usize, ()>(5)
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_bytes(), 2 + (4 + 10));

        // Second flush resumes mid-frame: first segment is the 2
        // remaining payload bytes of frame one.
        let mut seen = Vec::new();
        q.flush_with(|iov| {
            for v in iov {
                seen.push(unsafe { std::slice::from_raw_parts(v.base, v.len) }.to_vec());
            }
            Ok::<usize, ()>(iov.iter().map(|v| v.len).sum())
        })
        .unwrap();
        assert_eq!(seen[0], vec![2, 3]);
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
    }

    #[test]
    fn out_queue_bound_is_backpressure() {
        let mut q = OutQueue::new(2);
        q.push(Bytes::from(vec![0u8])).unwrap();
        q.push(Bytes::from(vec![1u8])).unwrap();
        assert!(q.is_saturated());
        let refused = q.push(Bytes::from(vec![2u8])).unwrap_err();
        assert_eq!(&refused[..], &[2u8]);
        // Draining reopens the queue.
        q.flush_with(|iov| Ok::<usize, ()>(iov.iter().map(|v| v.len).sum()))
            .unwrap();
        assert!(!q.is_saturated());
        q.push(Bytes::from(vec![2u8])).unwrap();
    }

    #[test]
    fn roundtrip_through_assembler() {
        // writev output fed back into an assembler reproduces the frame
        // sequence — the two halves agree on the framing.
        let payloads: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; i * 7]).collect();
        let mut q = OutQueue::new(64);
        for p in &payloads {
            q.push(Bytes::from(p.clone())).unwrap();
        }
        let mut wire = Vec::new();
        while !q.is_empty() {
            // Take 11 bytes per "syscall" to force partial writes.
            q.flush_with(|iov| {
                let mut budget = 11usize;
                for v in iov {
                    let take = v.len.min(budget);
                    wire.extend_from_slice(unsafe {
                        std::slice::from_raw_parts(v.base, take)
                    });
                    budget -= take;
                    if budget == 0 {
                        break;
                    }
                }
                Ok::<usize, ()>(11.min(iov.iter().map(|v| v.len).sum()))
            })
            .unwrap();
        }
        let mut asm = FrameAssembler::new();
        asm.feed(&wire);
        let mut got = Vec::new();
        while let Some(f) = asm.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, payloads);
    }
}
