//! Sparse delta encoding for local vectors.
//!
//! The paper defers GM bandwidth reduction to future work (§5 cites the
//! distance-based scheme of Alfassi et al.). This module implements the
//! simplest such reduction for AutoMon's highest-volume payload — the
//! local vector — as a standalone codec: encode only the coordinates
//! that changed (beyond a tolerance) relative to the receiver's last
//! known copy, falling back to dense encoding when too many moved.
//!
//! Histogram local vectors (KLD) change in a handful of bins per round,
//! so deltas shrink violation payloads by an order of magnitude; dense
//! fallback guarantees the codec never costs more than `9 + d/8` bytes
//! over the plain form.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::WireError;

/// Encoded-form tag.
const TAG_DENSE: u8 = 0;
const TAG_SPARSE: u8 = 1;

/// Encode `cur` relative to `prev`.
///
/// Coordinates with `|curᵢ - prevᵢ| ≤ tol` are considered unchanged and
/// reconstructed from `prev` on decode. Chooses the smaller of sparse
/// and dense representations.
///
/// # Panics
/// Panics when lengths differ.
pub fn encode_delta(prev: &[f64], cur: &[f64], tol: f64) -> Bytes {
    assert_eq!(prev.len(), cur.len(), "encode_delta: length mismatch");
    let changed: Vec<u32> = cur
        .iter()
        .zip(prev)
        .enumerate()
        .filter(|(_, (c, p))| (*c - *p).abs() > tol)
        .map(|(i, _)| i as u32)
        .collect();
    // Sparse cost: 1 + 4 + 12 per change; dense: 1 + 4 + 8 per coord.
    let sparse_cost = 5 + changed.len() * 12;
    let dense_cost = 5 + cur.len() * 8;
    let mut b = BytesMut::with_capacity(sparse_cost.min(dense_cost));
    if sparse_cost < dense_cost {
        b.put_u8(TAG_SPARSE);
        b.put_u32_le(changed.len() as u32);
        for &i in &changed {
            b.put_u32_le(i);
            b.put_f64_le(cur[i as usize]);
        }
    } else {
        b.put_u8(TAG_DENSE);
        b.put_u32_le(cur.len() as u32);
        for &v in cur {
            b.put_f64_le(v);
        }
    }
    b.freeze()
}

/// Decode a delta frame against the receiver's `prev` copy.
///
/// # Errors
/// Returns [`WireError`] on malformed frames or when a sparse frame's
/// indices exceed `prev`'s length.
pub fn decode_delta(prev: &[f64], mut buf: &[u8]) -> Result<Vec<f64>, WireError> {
    if buf.remaining() < 5 {
        return Err(WireError::Truncated);
    }
    let tag = buf.get_u8();
    let n = buf.get_u32_le() as usize;
    match tag {
        TAG_DENSE => {
            if buf.remaining() < n * 8 {
                return Err(WireError::Truncated);
            }
            Ok((0..n).map(|_| buf.get_f64_le()).collect())
        }
        TAG_SPARSE => {
            if buf.remaining() < n * 12 {
                return Err(WireError::Truncated);
            }
            let mut out = prev.to_vec();
            for _ in 0..n {
                let i = buf.get_u32_le() as usize;
                let v = buf.get_f64_le();
                if i >= out.len() {
                    return Err(WireError::BadTag("delta index", 0xFF));
                }
                out[i] = v;
            }
            Ok(out)
        }
        t => Err(WireError::BadTag("delta frame", t)),
    }
}

/// Offline analysis: total bytes to ship a local-vector series densely
/// vs delta-encoded (used by the bandwidth harness to quantify the
/// §5 saving opportunity).
pub fn series_savings(series: &[Vec<f64>], tol: f64) -> (usize, usize) {
    let mut dense = 0usize;
    let mut delta = 0usize;
    let mut prev: Option<&Vec<f64>> = None;
    for v in series {
        dense += 5 + v.len() * 8;
        match prev {
            None => delta += 5 + v.len() * 8,
            Some(p) => delta += encode_delta(p, v, tol).len(),
        }
        prev = Some(v);
    }
    (dense, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_round_trip() {
        let prev = vec![1.0, 2.0, 3.0, 4.0];
        let mut cur = prev.clone();
        cur[2] = 9.0;
        let frame = encode_delta(&prev, &cur, 1e-12);
        assert_eq!(frame[0], TAG_SPARSE);
        assert_eq!(frame.len(), 5 + 12);
        assert_eq!(decode_delta(&prev, &frame).unwrap(), cur);
    }

    #[test]
    fn dense_fallback_when_everything_changes() {
        let prev = vec![0.0; 4];
        let cur = vec![1.0, 2.0, 3.0, 4.0];
        let frame = encode_delta(&prev, &cur, 1e-12);
        assert_eq!(frame[0], TAG_DENSE);
        assert_eq!(decode_delta(&prev, &frame).unwrap(), cur);
    }

    #[test]
    fn tolerance_suppresses_noise() {
        let prev = vec![1.0, 2.0];
        let cur = vec![1.0 + 1e-9, 2.5];
        let frame = encode_delta(&prev, &cur, 1e-6);
        let decoded = decode_delta(&prev, &frame).unwrap();
        assert_eq!(decoded[0], 1.0); // unchanged within tol
        assert_eq!(decoded[1], 2.5);
    }

    #[test]
    fn histogram_series_saves_bytes() {
        // Simulated histogram drift: two bins change per step.
        let mut series = vec![vec![0.1; 20]];
        for t in 1..100 {
            let mut next = series[t - 1].clone();
            next[t % 20] += 0.005;
            next[(t + 7) % 20] -= 0.005;
            series.push(next);
        }
        let (dense, delta) = series_savings(&series, 1e-12);
        assert!(
            delta * 3 < dense,
            "expected ≥3x saving: dense {dense}, delta {delta}"
        );
    }

    #[test]
    fn malformed_frames_error() {
        let prev = vec![1.0];
        assert!(decode_delta(&prev, &[]).is_err());
        assert!(decode_delta(&prev, &[9, 0, 0, 0, 0]).is_err());
        // Sparse index out of range.
        let mut b = bytes::BytesMut::new();
        b.put_u8(TAG_SPARSE);
        b.put_u32_le(1);
        b.put_u32_le(5);
        b.put_f64_le(1.0);
        assert!(decode_delta(&prev, &b).is_err());
    }
}
