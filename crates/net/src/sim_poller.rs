//! A turmoil-style simulated poller: the reactor's determinism story.
//!
//! [`SimPoller`] implements the same [`Poller`] seam as the epoll
//! backend, but over in-memory duplex pipes under a **seeded logical
//! clock** — no sockets, no threads, no wall time. Reads are chunked
//! and writes shortened at *seeded* boundaries, so the reactor's
//! frame-reassembly and partial-write paths are exercised on every run,
//! and exercised identically for the same seed: the whole transport
//! becomes a pure function of `(seed, workload)`. Same seed ⇒ the same
//! syscall-equivalent op sequence, the same frame boundaries, the same
//! trace — byte for byte.
//!
//! The harness side holds [`SimClient`] handles (one per simulated
//! node) and drives the reactor synchronously with
//! `poll_once`/`pop_inbound`; there is no hidden event-loop thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::rc::Rc;
use std::time::Duration;

use crate::frame::{FrameAssembler, IoVec};
use crate::poller::{
    Event, NoopWaker, Poller, SyscallStats, Token, LISTENER_TOKEN,
};
use crate::wire::frame_len_prefix;

/// One simulated duplex connection between a client (node) and the
/// server (reactor).
#[derive(Debug, Default)]
struct Duplex {
    /// Bytes the client wrote, not yet read by the server.
    to_server: VecDeque<u8>,
    /// Bytes the server wrote, not yet read by the client.
    to_client: VecDeque<u8>,
    /// Client hung up; the server reads EOF after draining.
    client_closed: bool,
    /// Server hung up (connection dropped by the reactor).
    server_closed: bool,
    /// The server's last write was cut short; a writable event is due
    /// once the client drains some capacity.
    write_blocked: bool,
    /// Client-side reassembly of the server's byte stream.
    client_asm: FrameAssembler,
}

#[derive(Debug)]
struct SimNetInner {
    conns: Vec<Duplex>,
    /// Connections accepted by nobody yet, FIFO.
    pending_accepts: VecDeque<usize>,
    /// conn id -> registered token.
    tokens: Vec<Option<Token>>,
    /// xorshift64* state for chunk boundaries.
    rng: u64,
    /// Logical milliseconds; each `wait` is one tick.
    clock_ms: u64,
    /// Upper bound on bytes one simulated `read` returns.
    max_read_chunk: usize,
    /// Capacity of the server→client buffer (forces partial writes).
    client_buf_cap: usize,
    stats: SyscallStats,
}

impl SimNetInner {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Seeded value in `1..=max`.
    fn chunk(&mut self, max: usize) -> usize {
        1 + (self.next_u64() as usize) % max.max(1)
    }
}

/// The simulated network: connection factory plus the shared state the
/// poller, listener, and client handles all reference. Single-threaded
/// by construction (`Rc`), which is exactly what determinism wants.
#[derive(Debug, Clone)]
pub struct SimNet {
    inner: Rc<RefCell<SimNetInner>>,
}

impl SimNet {
    /// A network whose chunking schedule derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_limits(seed, 512, 4096)
    }

    /// Like [`SimNet::new`] with explicit read-chunk and client-buffer
    /// bounds (small values exercise more frame splits).
    pub fn with_limits(seed: u64, max_read_chunk: usize, client_buf_cap: usize) -> Self {
        Self {
            inner: Rc::new(RefCell::new(SimNetInner {
                conns: Vec::new(),
                pending_accepts: VecDeque::new(),
                tokens: Vec::new(),
                // splitmix64 scramble; zero maps to a fixed odd state.
                rng: splitmix64(seed ^ 0xD1B5_4A32_D192_ED03).max(1),
                clock_ms: 0,
                max_read_chunk: max_read_chunk.max(1),
                client_buf_cap: client_buf_cap.max(16),
                stats: SyscallStats::default(),
            })),
        }
    }

    /// Open a client connection; it appears on the listener at the
    /// server's next `wait`.
    pub fn connect(&self) -> SimClient {
        let mut net = self.inner.borrow_mut();
        let id = net.conns.len();
        net.conns.push(Duplex::default());
        net.tokens.push(None);
        net.pending_accepts.push_back(id);
        SimClient {
            inner: self.inner.clone(),
            id,
        }
    }

    /// The poller for the server (reactor) side.
    pub fn poller(&self) -> SimPoller {
        SimPoller {
            inner: self.inner.clone(),
        }
    }

    /// The accept source for the server side.
    pub fn listener(&self) -> SimListener {
        SimListener {
            _inner: self.inner.clone(),
        }
    }

    /// Logical clock, in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.inner.borrow().clock_ms
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Server-side accept source (state lives in the shared net).
#[derive(Debug)]
pub struct SimListener {
    _inner: Rc<RefCell<SimNetInner>>,
}

/// Server-side connection handle held by the reactor.
#[derive(Debug)]
pub struct SimConn {
    inner: Rc<RefCell<SimNetInner>>,
    id: usize,
}

impl Drop for SimConn {
    fn drop(&mut self) {
        let mut net = self.inner.borrow_mut();
        net.conns[self.id].server_closed = true;
        net.tokens[self.id] = None;
    }
}

/// Client-side handle: what a simulated node uses to talk to the
/// reactor. Frames are length-prefixed exactly like the TCP transport.
#[derive(Debug)]
pub struct SimClient {
    inner: Rc<RefCell<SimNetInner>>,
    id: usize,
}

impl SimClient {
    /// Queue one frame toward the server. `false` if the server side
    /// already dropped this connection.
    pub fn send_frame(&self, payload: &[u8]) -> bool {
        let mut net = self.inner.borrow_mut();
        let c = &mut net.conns[self.id];
        if c.server_closed {
            return false;
        }
        let prefix = frame_len_prefix(payload.len())
            .expect("sim frame under the wire cap")
            .to_le_bytes();
        c.to_server.extend(prefix);
        c.to_server.extend(payload.iter().copied());
        true
    }

    /// Drain every complete frame the server has delivered so far.
    pub fn recv_frames(&self) -> Vec<Vec<u8>> {
        let mut net = self.inner.borrow_mut();
        let c = &mut net.conns[self.id];
        if !c.to_client.is_empty() {
            let bytes: Vec<u8> = c.to_client.drain(..).collect();
            c.client_asm.feed(&bytes);
        }
        let mut frames = Vec::new();
        while let Ok(Some(f)) = c.client_asm.next_frame() {
            frames.push(f);
        }
        frames
    }

    /// Hang up; the server observes EOF after draining what was sent.
    pub fn close(&self) {
        self.inner.borrow_mut().conns[self.id].client_closed = true;
    }
}

/// Deterministic [`Poller`] over a [`SimNet`].
#[derive(Debug)]
pub struct SimPoller {
    inner: Rc<RefCell<SimNetInner>>,
}

impl Poller for SimPoller {
    type Conn = SimConn;
    type Listener = SimListener;
    type Waker = NoopWaker;

    fn waker(&self) -> NoopWaker {
        NoopWaker
    }

    fn register_listener(&mut self, _l: &SimListener) -> io::Result<()> {
        Ok(())
    }

    fn accept(&mut self, _l: &SimListener) -> io::Result<Option<SimConn>> {
        let mut net = self.inner.borrow_mut();
        let Some(id) = net.pending_accepts.pop_front() else {
            return Ok(None);
        };
        net.stats.accepts += 1;
        Ok(Some(SimConn {
            inner: self.inner.clone(),
            id,
        }))
    }

    fn register(&mut self, c: &SimConn, token: Token) -> io::Result<()> {
        self.inner.borrow_mut().tokens[c.id] = Some(token);
        Ok(())
    }

    fn deregister(&mut self, c: &SimConn) -> io::Result<()> {
        self.inner.borrow_mut().tokens[c.id] = None;
        Ok(())
    }

    fn read(&mut self, c: &mut SimConn, buf: &mut [u8]) -> io::Result<usize> {
        let mut net = self.inner.borrow_mut();
        net.stats.reads += 1;
        let max_chunk = net.max_read_chunk;
        let chunk = net.chunk(max_chunk);
        let d = &mut net.conns[c.id];
        if d.to_server.is_empty() {
            if d.client_closed {
                return Ok(0); // EOF
            }
            return Err(io::ErrorKind::WouldBlock.into());
        }
        // A seeded chunk bound splits frames (and length prefixes) at
        // boundaries that vary with the seed but replay exactly.
        let n = buf.len().min(chunk).min(d.to_server.len());
        for b in buf.iter_mut().take(n) {
            *b = d.to_server.pop_front().expect("length checked");
        }
        Ok(n)
    }

    fn writev(&mut self, c: &mut SimConn, bufs: &[IoVec]) -> io::Result<usize> {
        let mut net = self.inner.borrow_mut();
        net.stats.writevs += 1;
        let cap = net.client_buf_cap;
        let chunk = net.chunk(cap);
        let d = &mut net.conns[c.id];
        let free = cap.saturating_sub(d.to_client.len());
        if free == 0 {
            d.write_blocked = true;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        // Short writes at seeded boundaries, bounded by buffer space —
        // the sim analogue of a full kernel send buffer.
        let mut budget = free.min(chunk);
        let offered: usize = bufs.iter().map(|v| v.len).sum();
        let mut written = 0usize;
        'outer: for v in bufs {
            let seg = unsafe { std::slice::from_raw_parts(v.base, v.len) };
            for &b in seg {
                if budget == 0 {
                    break 'outer;
                }
                d.to_client.push_back(b);
                budget -= 1;
                written += 1;
            }
        }
        if written < offered {
            d.write_blocked = true;
        }
        Ok(written)
    }

    fn wait(&mut self, events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
        let mut net = self.inner.borrow_mut();
        net.stats.waits += 1;
        net.clock_ms += 1;
        if !net.pending_accepts.is_empty() {
            events.push(Event {
                token: LISTENER_TOKEN,
                readable: true,
                writable: false,
                closed: false,
            });
        }
        // Scan in connection order: deterministic event ordering.
        for id in 0..net.conns.len() {
            let Some(token) = net.tokens[id] else { continue };
            let d = &net.conns[id];
            let readable = !d.to_server.is_empty() || d.client_closed;
            let writable = d.write_blocked && d.to_client.len() < net.client_buf_cap;
            if readable || writable {
                events.push(Event {
                    token,
                    readable,
                    writable,
                    closed: false,
                });
            }
            if writable {
                net.conns[id].write_blocked = false;
            }
        }
        Ok(())
    }

    fn stats(&self) -> SyscallStats {
        self.inner.borrow().stats
    }

    fn now_ms(&self) -> u64 {
        self.inner.borrow().clock_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run one scripted exchange and return the op trace.
    fn scripted(seed: u64) -> (Vec<String>, SyscallStats) {
        let net = SimNet::with_limits(seed, 7, 64);
        let listener = net.listener();
        let mut poller = net.poller();
        let client = net.connect();
        let mut trace = Vec::new();

        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.token == LISTENER_TOKEN));
        let mut conn = poller.accept(&listener).unwrap().expect("pending");
        poller.register(&conn, 3).unwrap();

        client.send_frame(&[0xAA; 100]);
        client.send_frame(&[0xBB; 50]);
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        let mut buf = [0u8; 256];
        while frames.len() < 2 {
            events.clear();
            poller.wait(&mut events, None).unwrap();
            loop {
                match poller.read(&mut conn, &mut buf) {
                    Ok(n) => {
                        trace.push(format!("read:{n}"));
                        asm.feed(&buf[..n]);
                        while let Some(f) = asm.next_frame().unwrap() {
                            trace.push(format!("frame:{}", f.len()));
                            frames.push(f);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("{e}"),
                }
            }
        }
        assert_eq!(frames[0], vec![0xAA; 100]);
        assert_eq!(frames[1], vec![0xBB; 50]);

        // Server reply larger than the 64-byte client buffer: must take
        // several partial writev rounds.
        let payload = vec![0xCC_u8; 150];
        let prefix = (payload.len() as u32).to_le_bytes();
        let mut sent = 0usize;
        let total = payload.len() + 4;
        while sent < total {
            let whole = [prefix.as_slice(), payload.as_slice()].concat();
            let rest = &whole[sent..];
            let iov = [IoVec {
                base: rest.as_ptr(),
                len: rest.len(),
            }];
            match poller.writev(&mut conn, &iov) {
                Ok(n) => {
                    trace.push(format!("writev:{n}"));
                    sent += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    trace.push("writev:block".into());
                }
                Err(e) => panic!("{e}"),
            }
            // Client drains, freeing capacity.
            for f in client.recv_frames() {
                trace.push(format!("client_frame:{}", f.len()));
            }
        }
        (trace, poller.stats())
    }

    #[test]
    fn same_seed_same_op_trace() {
        let (a, sa) = scripted(42);
        let (b, sb) = scripted(42);
        assert_eq!(a, b, "sim transport must replay bit-identically");
        assert_eq!(sa, sb);
        assert!(a.iter().any(|l| l.starts_with("read:")));
    }

    #[test]
    fn different_seed_different_chunking() {
        let (a, _) = scripted(1);
        let (b, _) = scripted(2);
        assert_ne!(a, b, "chunk boundaries must depend on the seed");
    }

    #[test]
    fn eof_after_client_close() {
        let net = SimNet::new(9);
        let listener = net.listener();
        let mut poller = net.poller();
        let client = net.connect();
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        let mut conn = poller.accept(&listener).unwrap().unwrap();
        poller.register(&conn, 0).unwrap();

        client.send_frame(b"bye");
        client.close();
        let mut buf = [0u8; 64];
        let mut drained = Vec::new();
        loop {
            match poller.read(&mut conn, &mut buf) {
                Ok(0) => break,
                Ok(n) => drained.extend_from_slice(&buf[..n]),
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(drained.len(), 4 + 3, "data before EOF is not lost");
    }
}
