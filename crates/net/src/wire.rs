//! Compact binary wire format for AutoMon protocol messages.
//!
//! Layout conventions: little-endian throughout; `u8` tags for enums;
//! `u32` lengths; raw `f64` bits for floats. The format is versioned with
//! a leading magic byte so stray frames fail fast instead of decoding
//! into garbage.
//!
//! Every frame header carries a wire-propagated trace context: the
//! 8-byte [`SpanId`] of the span open on the sending side (0 when
//! telemetry is off or no span is open). Together with the epoch each
//! message already carries, the receiver reconstructs a
//! [`automon_obs::TraceCtx`] and can parent its handler span under the
//! sender's — causality survives the transport. The slot is always
//! present so frame sizes never depend on whether telemetry is enabled.

use automon_core::{
    Curvature, CoordinatorMessage, DcKind, NeighborhoodBox, NodeMessage, SafeZone, TierMessage,
    ViolationKind, ZoneUpdate,
};
use automon_linalg::Matrix;
use automon_obs::SpanId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format version magic (bump on layout changes).
///
/// `0xA8` added the `u64` epoch stamp to every message; `0xA9` added the
/// `u64` span-id trace context after the magic byte.
const MAGIC: u8 = 0xA9;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than its declared contents.
    Truncated,
    /// Unknown tag byte at the given offset description.
    BadTag(&'static str, u8),
    /// Magic byte mismatch (not an AutoMon frame or wrong version).
    BadMagic(u8),
    /// Frame larger than [`MAX_FRAME_LEN`]: either a hostile/corrupt
    /// length prefix on the read side, or a payload too large for the
    /// u32 prefix on the write side (which would otherwise truncate
    /// silently on the `as u32` cast).
    Oversized(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(what, t) => write!(f, "bad {what} tag {t:#x}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on a single frame's payload length. Generous for the
/// protocol (the largest message, a d×d quadratic-curvature install at
/// d = 1000, is ~8 MB) yet small enough that a corrupt or hostile u32
/// length prefix cannot demand a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Validate a frame length against [`MAX_FRAME_LEN`] and fold it into
/// the u32 length prefix. Every writer must funnel through here: the
/// bare `len as u32` cast it replaces silently truncated frames above
/// 4 GiB into garbage prefixes.
pub fn frame_len_prefix(len: usize) -> Result<u32, WireError> {
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    Ok(len as u32)
}

/// Validate a decoded u32 length prefix before any allocation.
pub fn check_frame_len(len: u32) -> Result<usize, WireError> {
    let n = len as usize;
    if n > MAX_FRAME_LEN {
        return Err(WireError::Oversized(n));
    }
    Ok(n)
}

// --- Exact frame sizing -------------------------------------------------
//
// Every encoder reserves its frame's exact byte count up front, so the
// buffer never reallocates (the old fixed 64-byte guess forced two or
// three grow-and-copy cycles on a d = 40 violation) and the hot vector
// payloads go out through [`put_vec`]'s chunked bulk writes instead of
// one capacity-checked `put_f64_le` per element.

/// Encoded size of a `u32`-length-prefixed `f64` vector.
fn vec_len(v: &[f64]) -> usize {
    4 + 8 * v.len()
}

/// Encoded size of a dims-prefixed dense matrix.
fn matrix_len(m: &Matrix) -> usize {
    8 + 8 * m.rows() * m.cols()
}

fn neighborhood_len(nb: &Option<NeighborhoodBox>) -> usize {
    1 + nb
        .as_ref()
        .map_or(0, |nb| vec_len(&nb.lo) + vec_len(&nb.hi))
}

fn zone_len(z: &SafeZone) -> usize {
    let curvature = 1 + match &z.curvature {
        Curvature::Scalar(_) => 8,
        Curvature::Quadratic(m) => matrix_len(m),
    };
    vec_len(&z.x0) + 8 + vec_len(&z.grad0) + 8 + 8 + 1 + curvature + neighborhood_len(&z.neighborhood)
}

fn zone_update_len(z: &ZoneUpdate) -> usize {
    vec_len(&z.x0) + 8 + vec_len(&z.grad0) + 8 + 8 + 1 + neighborhood_len(&z.neighborhood)
}

/// Header bytes shared by every frame: magic + span-id trace context +
/// message tag.
const HEADER_LEN: usize = 1 + 8 + 1;

/// Exact frame size of an encoded node→coordinator message.
fn node_message_len(msg: &NodeMessage) -> usize {
    HEADER_LEN + match msg {
        NodeMessage::Violation { local_vector, .. } => 4 + 8 + 1 + vec_len(local_vector),
        NodeMessage::LocalVector { vector, .. } => 4 + 8 + vec_len(vector),
    }
}

/// Exact frame size of an encoded coordinator→node message.
fn coordinator_message_len(msg: &CoordinatorMessage) -> usize {
    HEADER_LEN + match msg {
        CoordinatorMessage::RequestLocalVector { .. } => 8,
        CoordinatorMessage::NewConstraints { zone, slack, .. } => 8 + zone_len(zone) + vec_len(slack),
        CoordinatorMessage::SlackUpdate { slack, .. } => 8 + vec_len(slack),
        CoordinatorMessage::NewConstraintsCached { update, slack, .. } => {
            8 + zone_update_len(update) + vec_len(slack)
        }
    }
}

/// Encoded size of a `u32`-length-prefixed node-id list.
fn id_vec_len(v: &[usize]) -> usize {
    4 + 4 * v.len()
}

/// Exact frame size of an encoded inter-tier message.
fn tier_message_len(msg: &TierMessage) -> usize {
    HEADER_LEN
        + match msg {
            TierMessage::LeafReport { partial, .. } => 4 + 8 + 1 + 8 + vec_len(partial),
            TierMessage::Rebalance { adopted, .. } => 4 + 8 + id_vec_len(adopted),
        }
}

/// Encode a node→coordinator message with an empty trace context.
pub fn encode_node_message(msg: &NodeMessage) -> Bytes {
    encode_node_message_ctx(msg, SpanId::NONE)
}

/// Encode a node→coordinator message, stamping `span` into the frame
/// header as the wire-propagated trace context.
pub fn encode_node_message_ctx(msg: &NodeMessage, span: SpanId) -> Bytes {
    let mut b = BytesMut::with_capacity(node_message_len(msg));
    b.put_u8(MAGIC);
    b.put_u64_le(span.0);
    match msg {
        NodeMessage::Violation {
            node,
            kind,
            local_vector,
            epoch,
        } => {
            b.put_u8(0);
            b.put_u32_le(*node as u32);
            b.put_u64_le(*epoch);
            b.put_u8(violation_tag(*kind));
            put_vec(&mut b, local_vector);
        }
        NodeMessage::LocalVector {
            node,
            vector,
            epoch,
        } => {
            b.put_u8(1);
            b.put_u32_le(*node as u32);
            b.put_u64_le(*epoch);
            put_vec(&mut b, vector);
        }
    }
    debug_assert_eq!(b.len(), node_message_len(msg), "frame size mispredicted");
    b.freeze()
}

/// Decode a node→coordinator message, discarding the trace context.
pub fn decode_node_message(buf: &[u8]) -> Result<NodeMessage, WireError> {
    decode_node_message_ctx(buf).map(|(_, msg)| msg)
}

/// Decode a node→coordinator message plus the sender's span id from the
/// frame header.
pub fn decode_node_message_ctx(mut buf: &[u8]) -> Result<(SpanId, NodeMessage), WireError> {
    check_magic(&mut buf)?;
    let span = SpanId(get_u64(&mut buf)?);
    decode_node_body(buf).map(|msg| (span, msg))
}

fn decode_node_body(mut buf: &[u8]) -> Result<NodeMessage, WireError> {
    let tag = get_u8(&mut buf)?;
    match tag {
        0 => {
            let node = get_u32(&mut buf)? as usize;
            let epoch = get_u64(&mut buf)?;
            let kind = violation_from_tag(get_u8(&mut buf)?)?;
            let local_vector = get_vec(&mut buf)?;
            Ok(NodeMessage::Violation {
                node,
                kind,
                local_vector,
                epoch,
            })
        }
        1 => {
            let node = get_u32(&mut buf)? as usize;
            let epoch = get_u64(&mut buf)?;
            let vector = get_vec(&mut buf)?;
            Ok(NodeMessage::LocalVector {
                node,
                vector,
                epoch,
            })
        }
        t => Err(WireError::BadTag("node message", t)),
    }
}

/// Encode a coordinator→node message with an empty trace context.
pub fn encode_coordinator_message(msg: &CoordinatorMessage) -> Bytes {
    encode_coordinator_message_ctx(msg, SpanId::NONE)
}

/// Encode a coordinator→node message, stamping `span` into the frame
/// header as the wire-propagated trace context.
pub fn encode_coordinator_message_ctx(msg: &CoordinatorMessage, span: SpanId) -> Bytes {
    let mut b = BytesMut::with_capacity(coordinator_message_len(msg));
    b.put_u8(MAGIC);
    b.put_u64_le(span.0);
    match msg {
        CoordinatorMessage::RequestLocalVector { epoch } => {
            b.put_u8(0);
            b.put_u64_le(*epoch);
        }
        CoordinatorMessage::NewConstraints { zone, slack, epoch } => {
            b.put_u8(1);
            b.put_u64_le(*epoch);
            put_zone(&mut b, zone);
            put_vec(&mut b, slack);
        }
        CoordinatorMessage::SlackUpdate { slack, epoch } => {
            b.put_u8(2);
            b.put_u64_le(*epoch);
            put_vec(&mut b, slack);
        }
        CoordinatorMessage::NewConstraintsCached {
            update,
            slack,
            epoch,
        } => {
            b.put_u8(3);
            b.put_u64_le(*epoch);
            put_zone_update(&mut b, update);
            put_vec(&mut b, slack);
        }
    }
    debug_assert_eq!(
        b.len(),
        coordinator_message_len(msg),
        "frame size mispredicted"
    );
    b.freeze()
}

/// Decode a coordinator→node message, discarding the trace context.
pub fn decode_coordinator_message(buf: &[u8]) -> Result<CoordinatorMessage, WireError> {
    decode_coordinator_message_ctx(buf).map(|(_, msg)| msg)
}

/// Decode a coordinator→node message plus the sender's span id from the
/// frame header.
pub fn decode_coordinator_message_ctx(
    mut buf: &[u8],
) -> Result<(SpanId, CoordinatorMessage), WireError> {
    check_magic(&mut buf)?;
    let span = SpanId(get_u64(&mut buf)?);
    decode_coordinator_body(buf).map(|msg| (span, msg))
}

fn decode_coordinator_body(mut buf: &[u8]) -> Result<CoordinatorMessage, WireError> {
    let tag = get_u8(&mut buf)?;
    match tag {
        0 => Ok(CoordinatorMessage::RequestLocalVector {
            epoch: get_u64(&mut buf)?,
        }),
        1 => {
            let epoch = get_u64(&mut buf)?;
            let zone = get_zone(&mut buf)?;
            let slack = get_vec(&mut buf)?;
            Ok(CoordinatorMessage::NewConstraints { zone, slack, epoch })
        }
        2 => {
            let epoch = get_u64(&mut buf)?;
            Ok(CoordinatorMessage::SlackUpdate {
                slack: get_vec(&mut buf)?,
                epoch,
            })
        }
        3 => {
            let epoch = get_u64(&mut buf)?;
            let update = get_zone_update(&mut buf)?;
            let slack = get_vec(&mut buf)?;
            Ok(CoordinatorMessage::NewConstraintsCached {
                update,
                slack,
                epoch,
            })
        }
        t => Err(WireError::BadTag("coordinator message", t)),
    }
}

/// Encode an inter-tier (leaf↔root) message with an empty trace context.
pub fn encode_tier_message(msg: &TierMessage) -> Bytes {
    encode_tier_message_ctx(msg, SpanId::NONE)
}

/// Encode an inter-tier message, stamping `span` into the frame header
/// as the wire-propagated trace context. Tier frames share the flat
/// protocol's header layout (magic + span + tag) but live in their own
/// tag space, decoded only by [`decode_tier_message_ctx`] — a tier frame
/// handed to the flat decoders fails on the tag, not silently.
pub fn encode_tier_message_ctx(msg: &TierMessage, span: SpanId) -> Bytes {
    let mut b = BytesMut::with_capacity(tier_message_len(msg));
    b.put_u8(MAGIC);
    b.put_u64_le(span.0);
    match msg {
        TierMessage::LeafReport {
            leaf,
            kind,
            partial,
            weight,
            epoch,
        } => {
            b.put_u8(0);
            b.put_u32_le(*leaf as u32);
            b.put_u64_le(*epoch);
            b.put_u8(violation_tag(*kind));
            b.put_u64_le(*weight);
            put_vec(&mut b, partial);
        }
        TierMessage::Rebalance {
            leaf,
            adopted,
            epoch,
        } => {
            b.put_u8(1);
            b.put_u32_le(*leaf as u32);
            b.put_u64_le(*epoch);
            b.put_u32_le(adopted.len() as u32);
            for &id in adopted {
                b.put_u32_le(id as u32);
            }
        }
    }
    debug_assert_eq!(b.len(), tier_message_len(msg), "frame size mispredicted");
    b.freeze()
}

/// Decode an inter-tier message, discarding the trace context.
pub fn decode_tier_message(buf: &[u8]) -> Result<TierMessage, WireError> {
    decode_tier_message_ctx(buf).map(|(_, msg)| msg)
}

/// Decode an inter-tier message plus the sender's span id from the
/// frame header.
pub fn decode_tier_message_ctx(mut buf: &[u8]) -> Result<(SpanId, TierMessage), WireError> {
    check_magic(&mut buf)?;
    let span = SpanId(get_u64(&mut buf)?);
    decode_tier_body(buf).map(|msg| (span, msg))
}

fn decode_tier_body(mut buf: &[u8]) -> Result<TierMessage, WireError> {
    let tag = get_u8(&mut buf)?;
    match tag {
        0 => {
            let leaf = get_u32(&mut buf)? as usize;
            let epoch = get_u64(&mut buf)?;
            let kind = violation_from_tag(get_u8(&mut buf)?)?;
            let weight = get_u64(&mut buf)?;
            let partial = get_vec(&mut buf)?;
            Ok(TierMessage::LeafReport {
                leaf,
                kind,
                partial,
                weight,
                epoch,
            })
        }
        1 => {
            let leaf = get_u32(&mut buf)? as usize;
            let epoch = get_u64(&mut buf)?;
            let n = get_u32(&mut buf)? as usize;
            let bytes = n.checked_mul(4).ok_or(WireError::Truncated)?;
            if buf.remaining() < bytes {
                return Err(WireError::Truncated);
            }
            let adopted = (0..n).map(|_| buf.get_u32_le() as usize).collect();
            Ok(TierMessage::Rebalance {
                leaf,
                adopted,
                epoch,
            })
        }
        t => Err(WireError::BadTag("tier message", t)),
    }
}

fn violation_tag(kind: ViolationKind) -> u8 {
    match kind {
        ViolationKind::Uninitialized => 0,
        ViolationKind::Neighborhood => 1,
        ViolationKind::SafeZone => 2,
        ViolationKind::FaultyConstraints => 3,
    }
}

fn violation_from_tag(t: u8) -> Result<ViolationKind, WireError> {
    Ok(match t {
        0 => ViolationKind::Uninitialized,
        1 => ViolationKind::Neighborhood,
        2 => ViolationKind::SafeZone,
        3 => ViolationKind::FaultyConstraints,
        t => return Err(WireError::BadTag("violation kind", t)),
    })
}

/// Bulk-write `f64`s as little-endian bytes: elements are staged in a
/// stack chunk and flushed with one `put_slice` per 32 values, so the
/// buffer's capacity bookkeeping runs once per chunk instead of once
/// per element.
fn put_f64s(b: &mut BytesMut, v: &[f64]) {
    let mut chunk = [0u8; 256];
    for group in v.chunks(32) {
        for (i, &x) in group.iter().enumerate() {
            chunk[i * 8..(i + 1) * 8].copy_from_slice(&x.to_le_bytes());
        }
        b.put_slice(&chunk[..group.len() * 8]);
    }
}

fn put_vec(b: &mut BytesMut, v: &[f64]) {
    b.put_u32_le(v.len() as u32);
    put_f64s(b, v);
}

fn put_matrix(b: &mut BytesMut, m: &Matrix) {
    b.put_u32_le(m.rows() as u32);
    b.put_u32_le(m.cols() as u32);
    put_f64s(b, m.as_slice());
}

fn put_zone(b: &mut BytesMut, z: &SafeZone) {
    put_vec(b, &z.x0);
    b.put_f64_le(z.f0);
    put_vec(b, &z.grad0);
    b.put_f64_le(z.l);
    b.put_f64_le(z.u);
    b.put_u8(match z.dc {
        DcKind::ConvexDiff => 0,
        DcKind::ConcaveDiff => 1,
        DcKind::AdmissibleOnly => 2,
    });
    match &z.curvature {
        Curvature::Scalar(c) => {
            b.put_u8(0);
            b.put_f64_le(*c);
        }
        Curvature::Quadratic(m) => {
            b.put_u8(1);
            put_matrix(b, m);
        }
    }
    match &z.neighborhood {
        None => b.put_u8(0),
        Some(nb) => {
            b.put_u8(1);
            put_vec(b, &nb.lo);
            put_vec(b, &nb.hi);
        }
    }
}

fn put_zone_update(b: &mut BytesMut, z: &ZoneUpdate) {
    put_vec(b, &z.x0);
    b.put_f64_le(z.f0);
    put_vec(b, &z.grad0);
    b.put_f64_le(z.l);
    b.put_f64_le(z.u);
    b.put_u8(match z.dc {
        DcKind::ConvexDiff => 0,
        DcKind::ConcaveDiff => 1,
        DcKind::AdmissibleOnly => 2,
    });
    match &z.neighborhood {
        None => b.put_u8(0),
        Some(nb) => {
            b.put_u8(1);
            put_vec(b, &nb.lo);
            put_vec(b, &nb.hi);
        }
    }
}

fn get_zone_update(buf: &mut &[u8]) -> Result<ZoneUpdate, WireError> {
    let x0 = get_vec(buf)?;
    let f0 = get_f64(buf)?;
    let grad0 = get_vec(buf)?;
    let l = get_f64(buf)?;
    let u = get_f64(buf)?;
    let dc = match get_u8(buf)? {
        0 => DcKind::ConvexDiff,
        1 => DcKind::ConcaveDiff,
        2 => DcKind::AdmissibleOnly,
        t => return Err(WireError::BadTag("dc kind", t)),
    };
    let neighborhood = match get_u8(buf)? {
        0 => None,
        1 => Some(NeighborhoodBox {
            lo: get_vec(buf)?,
            hi: get_vec(buf)?,
        }),
        t => return Err(WireError::BadTag("neighborhood", t)),
    };
    Ok(ZoneUpdate {
        x0,
        f0,
        grad0,
        l,
        u,
        dc,
        neighborhood,
    })
}

fn check_magic(buf: &mut &[u8]) -> Result<(), WireError> {
    let m = get_u8(buf)?;
    if m != MAGIC {
        return Err(WireError::BadMagic(m));
    }
    Ok(())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_f64_le())
}

fn get_vec(buf: &mut &[u8]) -> Result<Vec<f64>, WireError> {
    let n = get_u32(buf)? as usize;
    // Checked: a hostile length must not overflow into a small byte
    // count and then panic the element reads below.
    let bytes = n.checked_mul(8).ok_or(WireError::Truncated)?;
    if buf.remaining() < bytes {
        return Err(WireError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

fn get_matrix(buf: &mut &[u8]) -> Result<Matrix, WireError> {
    let rows = get_u32(buf)? as usize;
    let cols = get_u32(buf)? as usize;
    let bytes = rows
        .checked_mul(cols)
        .and_then(|e| e.checked_mul(8))
        .ok_or(WireError::Truncated)?;
    if buf.remaining() < bytes {
        return Err(WireError::Truncated);
    }
    let data = (0..rows * cols).map(|_| buf.get_f64_le()).collect();
    Ok(Matrix::from_rows(rows, cols, data))
}

fn get_zone(buf: &mut &[u8]) -> Result<SafeZone, WireError> {
    let x0 = get_vec(buf)?;
    let f0 = get_f64(buf)?;
    let grad0 = get_vec(buf)?;
    let l = get_f64(buf)?;
    let u = get_f64(buf)?;
    let dc = match get_u8(buf)? {
        0 => DcKind::ConvexDiff,
        1 => DcKind::ConcaveDiff,
        2 => DcKind::AdmissibleOnly,
        t => return Err(WireError::BadTag("dc kind", t)),
    };
    let curvature = match get_u8(buf)? {
        0 => Curvature::Scalar(get_f64(buf)?),
        1 => Curvature::Quadratic(get_matrix(buf)?),
        t => return Err(WireError::BadTag("curvature", t)),
    };
    let neighborhood = match get_u8(buf)? {
        0 => None,
        1 => Some(NeighborhoodBox {
            lo: get_vec(buf)?,
            hi: get_vec(buf)?,
        }),
        t => return Err(WireError::BadTag("neighborhood", t)),
    };
    Ok(SafeZone {
        x0,
        f0,
        grad0,
        l,
        u,
        dc,
        curvature,
        neighborhood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_zone() -> SafeZone {
        SafeZone {
            x0: vec![1.0, -2.0],
            f0: 3.5,
            grad0: vec![0.25, 0.75],
            l: 3.0,
            u: 4.0,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Scalar(1.25),
            neighborhood: Some(NeighborhoodBox {
                lo: vec![0.0, -3.0],
                hi: vec![2.0, -1.0],
            }),
        }
    }

    #[test]
    fn node_message_round_trips() {
        for msg in [
            NodeMessage::Violation {
                node: 5,
                kind: ViolationKind::Neighborhood,
                local_vector: vec![1.0, 2.0, 3.0],
                epoch: 7,
            },
            NodeMessage::LocalVector {
                node: 0,
                vector: vec![],
                epoch: 0,
            },
            // Epoch must survive the full u64 range.
            NodeMessage::LocalVector {
                node: 1,
                vector: vec![-1.0],
                epoch: u64::MAX,
            },
        ] {
            let bytes = encode_node_message(&msg);
            assert_eq!(decode_node_message(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn coordinator_message_round_trips() {
        for msg in [
            CoordinatorMessage::RequestLocalVector { epoch: 3 },
            CoordinatorMessage::SlackUpdate {
                slack: vec![0.5, -0.5],
                epoch: 12,
            },
            CoordinatorMessage::NewConstraints {
                zone: sample_zone(),
                slack: vec![1.0, 2.0],
                epoch: u64::MAX,
            },
        ] {
            let bytes = encode_coordinator_message(&msg);
            assert_eq!(decode_coordinator_message(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn quadratic_curvature_round_trips() {
        let mut z = sample_zone();
        z.curvature = Curvature::Quadratic(Matrix::from_rows(2, 2, vec![1.0, 0.5, 0.5, 2.0]));
        z.neighborhood = None;
        let msg = CoordinatorMessage::NewConstraints {
            zone: z,
            slack: vec![0.0, 0.0],
            epoch: 1,
        };
        let bytes = encode_coordinator_message(&msg);
        assert_eq!(decode_coordinator_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn payload_sizes_are_compact() {
        // Violation with d = 40: magic + span + tag + node + epoch + kind
        // + len + 40·8 = 1 + 8 + 1 + 4 + 8 + 1 + 4 + 320 = 347 bytes.
        let msg = NodeMessage::Violation {
            node: 1,
            kind: ViolationKind::SafeZone,
            local_vector: vec![0.0; 40],
            epoch: 2,
        };
        assert_eq!(encode_node_message(&msg).len(), 347);
    }

    #[test]
    fn trace_context_rides_the_frame_header() {
        let msg = NodeMessage::Violation {
            node: 2,
            kind: ViolationKind::SafeZone,
            local_vector: vec![1.0, 2.0],
            epoch: 4,
        };
        let frame = encode_node_message_ctx(&msg, SpanId(0xDEAD_BEEF));
        let (span, decoded) = decode_node_message_ctx(&frame).unwrap();
        assert_eq!(span, SpanId(0xDEAD_BEEF));
        assert_eq!(decoded, msg);
        // The context changes only the header slot, never the size.
        assert_eq!(frame.len(), encode_node_message(&msg).len());
        // Legacy decode drops the context but still reads the body.
        assert_eq!(decode_node_message(&frame).unwrap(), msg);

        let reply = CoordinatorMessage::SlackUpdate {
            slack: vec![0.5],
            epoch: 4,
        };
        let frame = encode_coordinator_message_ctx(&reply, SpanId(7));
        let (span, decoded) = decode_coordinator_message_ctx(&frame).unwrap();
        assert_eq!(span, SpanId(7));
        assert_eq!(decoded, reply);
        // An empty context decodes as SpanId::NONE.
        let plain = encode_coordinator_message(&reply);
        assert_eq!(
            decode_coordinator_message_ctx(&plain).unwrap().0,
            SpanId::NONE
        );
    }

    #[test]
    fn frame_sizes_are_predicted_exactly() {
        // Every encoder reserves `*_message_len` bytes up front; the
        // frame must land on exactly that size (no reallocation, no
        // slack). Covers all tags and both curvature arms.
        let node_msgs = [
            NodeMessage::Violation {
                node: 3,
                kind: ViolationKind::SafeZone,
                local_vector: vec![1.5; 33],
                epoch: 9,
            },
            NodeMessage::LocalVector {
                node: 0,
                vector: vec![],
                epoch: 1,
            },
        ];
        for msg in &node_msgs {
            let frame = encode_node_message(msg);
            assert_eq!(frame.len(), node_message_len(msg), "{msg:?}");
        }
        let mut quad = sample_zone();
        quad.curvature = Curvature::Quadratic(Matrix::identity(2));
        let coord_msgs = [
            CoordinatorMessage::RequestLocalVector { epoch: 4 },
            CoordinatorMessage::SlackUpdate {
                slack: vec![0.1; 7],
                epoch: 2,
            },
            CoordinatorMessage::NewConstraints {
                zone: sample_zone(),
                slack: vec![0.0; 2],
                epoch: 5,
            },
            CoordinatorMessage::NewConstraints {
                zone: quad,
                slack: vec![0.0; 2],
                epoch: 5,
            },
            CoordinatorMessage::NewConstraintsCached {
                update: ZoneUpdate {
                    x0: vec![0.1; 4],
                    f0: 1.0,
                    grad0: vec![0.2; 4],
                    l: 0.9,
                    u: 1.1,
                    dc: DcKind::ConcaveDiff,
                    neighborhood: None,
                },
                slack: vec![0.0; 4],
                epoch: 6,
            },
        ];
        for msg in &coord_msgs {
            let frame = encode_coordinator_message(msg);
            assert_eq!(frame.len(), coordinator_message_len(msg), "{msg:?}");
        }
    }

    #[test]
    fn tier_message_round_trips_with_exact_sizes() {
        let msgs = [
            TierMessage::LeafReport {
                leaf: 3,
                kind: ViolationKind::SafeZone,
                partial: vec![1.5, -2.5, 0.0],
                weight: 312,
                epoch: 9,
            },
            TierMessage::LeafReport {
                leaf: 0,
                kind: ViolationKind::Uninitialized,
                partial: vec![],
                weight: 0,
                epoch: 0,
            },
            TierMessage::Rebalance {
                leaf: 7,
                adopted: vec![100, 101, 4000],
                epoch: u64::MAX,
            },
            TierMessage::Rebalance {
                leaf: 1,
                adopted: vec![],
                epoch: 2,
            },
        ];
        for msg in &msgs {
            let frame = encode_tier_message_ctx(msg, SpanId(0xBEEF));
            assert_eq!(frame.len(), tier_message_len(msg), "{msg:?}");
            let (span, decoded) = decode_tier_message_ctx(&frame).unwrap();
            assert_eq!(span, SpanId(0xBEEF));
            assert_eq!(&decoded, msg);
            assert_eq!(&decode_tier_message(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn tier_frames_are_rejected_by_flat_decoders_and_vice_versa() {
        // The tier tag space overlaps the flat ones numerically, so a
        // misrouted frame decodes into the wrong *variant*, never into
        // garbage — but a tag outside the space still fails loudly.
        let bad = [MAGIC, 0, 0, 0, 0, 0, 0, 0, 0, 9];
        assert_eq!(
            decode_tier_message(&bad),
            Err(WireError::BadTag("tier message", 9))
        );
        // Truncated adopted-id list.
        let frame = encode_tier_message(&TierMessage::Rebalance {
            leaf: 0,
            adopted: vec![1, 2, 3],
            epoch: 1,
        });
        assert_eq!(
            decode_tier_message(&frame[..frame.len() - 2]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_bad_frames() {
        assert_eq!(decode_node_message(&[]), Err(WireError::Truncated));
        assert_eq!(decode_node_message(&[0x00, 0x00]), Err(WireError::BadMagic(0)));
        // A frame cut off inside the span-id header slot.
        assert_eq!(decode_node_message(&[MAGIC, 9]), Err(WireError::Truncated));
        assert_eq!(
            decode_node_message(&[MAGIC, 0, 0, 0, 0, 0, 0, 0, 0, 9]),
            Err(WireError::BadTag("node message", 9))
        );
        // Truncated vector payload.
        let good = encode_node_message(&NodeMessage::LocalVector {
            node: 0,
            vector: vec![1.0, 2.0],
            epoch: 0,
        });
        assert_eq!(
            decode_node_message(&good[..good.len() - 3]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated frame");
        assert!(WireError::BadMagic(7).to_string().contains("0x7"));
        assert!(WireError::Oversized(usize::MAX)
            .to_string()
            .contains("exceeds"));
    }

    #[test]
    fn oversized_frames_are_rejected_not_truncated() {
        // Write side: a payload longer than the cap must refuse to
        // produce a prefix instead of silently wrapping on `as u32`.
        assert!(frame_len_prefix(MAX_FRAME_LEN).is_ok());
        assert_eq!(
            frame_len_prefix(MAX_FRAME_LEN + 1),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );
        // The historical failure mode: 2^32 + 5 used to cast to a
        // 5-byte prefix, shearing the stream out of frame sync.
        let wrapped = (1usize << 32) + 5;
        assert_eq!(frame_len_prefix(wrapped), Err(WireError::Oversized(wrapped)));

        // Read side: a hostile prefix is rejected before allocation.
        assert_eq!(check_frame_len(1024).unwrap(), 1024);
        assert_eq!(
            check_frame_len(u32::MAX),
            Err(WireError::Oversized(u32::MAX as usize))
        );
    }
}

#[cfg(test)]
mod cached_constraint_tests {
    use super::*;

    #[test]
    fn cached_constraints_round_trip_and_shrink_payload() {
        let d = 40;
        let zone = SafeZone {
            x0: vec![0.1; d],
            f0: 1.0,
            grad0: vec![0.2; d],
            l: 0.9,
            u: 1.1,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Quadratic(Matrix::identity(d)),
            neighborhood: None,
        };
        let full = CoordinatorMessage::NewConstraints {
            zone: zone.clone(),
            slack: vec![0.0; d],
            epoch: 1,
        };
        let cached = CoordinatorMessage::NewConstraintsCached {
            update: ZoneUpdate {
                x0: zone.x0.clone(),
                f0: zone.f0,
                grad0: zone.grad0.clone(),
                l: zone.l,
                u: zone.u,
                dc: zone.dc,
                neighborhood: zone.neighborhood.clone(),
            },
            slack: vec![0.0; d],
            epoch: 1,
        };
        let full_frame = encode_coordinator_message(&full);
        let cached_frame = encode_coordinator_message(&cached);
        assert_eq!(
            decode_coordinator_message(&cached_frame).unwrap(),
            cached
        );
        // The d×d matrix (40·40·8 = 12.8 KB) stays off the wire.
        assert!(
            cached_frame.len() + d * d * 8 <= full_frame.len() + 16,
            "cached {} vs full {}",
            cached_frame.len(),
            full_frame.len()
        );
    }
}
