//! Compacted checkpoints: a `CoordinatorSnapshot` plus the WAL position
//! it covers.
//!
//! A snapshot with `covered_seq = S` captures the effect of every
//! record with `seq < S`; recovery folds records with `seq >= S` on
//! top of it. Snapshot files are a single CRC frame (same codec as the
//! WAL, with `seq = covered_seq`) so torture-level corruption checks
//! apply to checkpoints too.

use automon_core::CoordinatorSnapshot;
use serde::{Deserialize, Serialize};

use crate::record::{decode_frames, encode_frame, JournalRecord};

/// A checkpoint as stored on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredSnapshot {
    /// Records with `seq < covered_seq` are folded into `snapshot`.
    pub covered_seq: u64,
    pub snapshot: CoordinatorSnapshot,
}

/// Serialize a checkpoint as one CRC frame.
pub fn encode_snapshot(s: &StoredSnapshot) -> Vec<u8> {
    let payload = serde_json::to_vec(s).expect("snapshots always serialize");
    encode_frame(s.covered_seq, &payload)
}

/// Decode a checkpoint file; `None` on any corruption (the caller
/// falls back to an older checkpoint).
pub fn decode_snapshot(bytes: &[u8]) -> Option<StoredSnapshot> {
    let (frames, err) = decode_frames(bytes);
    if err.is_some() || frames.len() != 1 {
        return None;
    }
    serde_json::from_slice(&frames[0].payload).ok()
}

/// Fold one replayed journal record into a snapshot.
///
/// Records are per-key "latest wins" overwrites, so folding in
/// sequence order reproduces the coordinator state at the tail of the
/// valid WAL prefix.
pub fn apply(snap: &mut CoordinatorSnapshot, rec: &JournalRecord) {
    match rec {
        JournalRecord::Node { node, x, slack, alive, has_curvature } => {
            // A record for a node outside the snapshot's fleet size can
            // only come from a corrupt-but-CRC-valid stream; ignore it
            // rather than panic during recovery.
            if *node < snap.n {
                snap.known_x[*node] = x.clone();
                snap.slack[*node] = slack.clone();
                snap.alive[*node] = *alive;
                // Checkpoints from older versions lack the curvature
                // vector; size it (all-false) before writing into it.
                if snap.node_has_curvature.len() != snap.n {
                    snap.node_has_curvature = vec![false; snap.n];
                }
                snap.node_has_curvature[*node] = *has_curvature;
            }
        }
        JournalRecord::Zone { epoch, r, zone } => {
            snap.epoch = *epoch;
            snap.r = *r;
            snap.zone = zone.clone();
        }
        JournalRecord::Control { lru, stats, consecutive_neighborhood } => {
            snap.lru = lru.clone();
            snap.stats = stats.clone();
            snap.consecutive_neighborhood = *consecutive_neighborhood;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_core::CoordinatorStats;

    fn base(n: usize) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            n,
            r: 1.0,
            zone: None,
            slack: vec![vec![0.0; 2]; n],
            known_x: vec![None; n],
            lru: Vec::new(),
            stats: CoordinatorStats::default(),
            consecutive_neighborhood: 0,
            epoch: 0,
            alive: vec![true; n],
            node_has_curvature: vec![false; n],
        }
    }

    #[test]
    fn snapshot_frame_round_trip() {
        let s = StoredSnapshot { covered_seq: 17, snapshot: base(3) };
        let bytes = encode_snapshot(&s);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.covered_seq, 17);
        assert_eq!(back.snapshot, s.snapshot);
    }

    #[test]
    fn corrupt_snapshot_decodes_to_none() {
        let s = StoredSnapshot { covered_seq: 17, snapshot: base(3) };
        let mut bytes = encode_snapshot(&s);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(decode_snapshot(&bytes).is_none());
    }

    #[test]
    fn apply_folds_latest_wins() {
        let mut snap = base(2);
        apply(
            &mut snap,
            &JournalRecord::Node { node: 1, x: Some(vec![3.0, 4.0]), slack: vec![0.1, 0.2], alive: true, has_curvature: false },
        );
        apply(&mut snap, &JournalRecord::Zone { epoch: 5, r: 2.0, zone: None });
        apply(
            &mut snap,
            &JournalRecord::Node { node: 1, x: None, slack: vec![0.0, 0.0], alive: false, has_curvature: false },
        );
        // Out-of-range node: ignored, not a panic.
        apply(
            &mut snap,
            &JournalRecord::Node { node: 9, x: None, slack: vec![], alive: false, has_curvature: false },
        );
        assert_eq!(snap.epoch, 5);
        assert_eq!(snap.r, 2.0);
        assert!(!snap.alive[1]);
        assert_eq!(snap.known_x[1], None);
    }
}
