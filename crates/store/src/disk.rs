//! The I/O boundary of the store.
//!
//! Everything the WAL and snapshot layers do to stable storage goes
//! through [`DiskManager`]: named append-only files, an explicit sync
//! point, and a `crash()` hook that discards whatever was appended but
//! not yet synced. Two backends implement it:
//!
//! * [`FileDisk`] — real files under a root directory. Appends are
//!   buffered in memory; `sync` flushes the buffer with `write_all` and
//!   `File::sync_all`, which is the store's durability point. File
//!   creations and removals additionally `sync_all` the root directory
//!   (on unix), so a new segment or checkpoint cannot vanish from the
//!   directory after a power loss even though its data was synced.
//! * [`MemDisk`] — a deterministic in-memory filesystem for the
//!   simulator and tests. `crash` truncates each file to its last
//!   synced length, which models exactly what `FileDisk` loses.
//!
//! Both backends enumerate files in sorted name order so recovery scans
//! are byte-identical regardless of backend or directory enumeration
//! order.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

/// Abstract append-only storage used by [`crate::CoordinatorStore`].
///
/// Files are flat names (no directories). Appends become durable only
/// at the next `sync` of the same file; `crash` models a power loss at
/// this instant and must discard all unsynced appends.
pub trait DiskManager: Send {
    /// Append `data` to `file`, creating it if absent. Not durable
    /// until [`DiskManager::sync`] is called for the same file.
    fn append(&mut self, file: &str, data: &[u8]) -> io::Result<()>;
    /// Make all prior appends to `file` durable.
    fn sync(&mut self, file: &str) -> io::Result<()>;
    /// Read the full contents of `file`, including unsynced appends.
    fn read(&self, file: &str) -> io::Result<Vec<u8>>;
    /// All file names, sorted ascending.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Delete `file`. Deleting a missing file is not an error.
    fn remove(&mut self, file: &str) -> io::Result<()>;
    /// Simulate a crash: drop every append that was not synced.
    fn crash(&mut self);
}

impl DiskManager for Box<dyn DiskManager> {
    fn append(&mut self, file: &str, data: &[u8]) -> io::Result<()> {
        (**self).append(file, data)
    }
    fn sync(&mut self, file: &str) -> io::Result<()> {
        (**self).sync(file)
    }
    fn read(&self, file: &str) -> io::Result<Vec<u8>> {
        (**self).read(file)
    }
    fn list(&self) -> io::Result<Vec<String>> {
        (**self).list()
    }
    fn remove(&mut self, file: &str) -> io::Result<()> {
        (**self).remove(file)
    }
    fn crash(&mut self) {
        (**self).crash()
    }
}

/// Real-file backend rooted at a directory.
///
/// Appends accumulate in a per-file buffer; `sync` writes the buffer
/// out with `O_APPEND` semantics and calls `sync_all`. A process crash
/// before `sync` therefore loses exactly the buffered bytes, matching
/// [`MemDisk::crash`].
pub struct FileDisk {
    root: PathBuf,
    buffers: BTreeMap<String, Vec<u8>>,
}

impl FileDisk {
    /// Open (creating if needed) a disk rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileDisk { root, buffers: BTreeMap::new() })
    }

    fn path(&self, file: &str) -> PathBuf {
        self.root.join(file)
    }

    /// Sync the root directory itself, so file creations and removals
    /// survive a power loss. Without this a freshly created segment or
    /// checkpoint could vanish from the directory even though its data
    /// bytes were synced.
    fn sync_root(&self) -> io::Result<()> {
        #[cfg(unix)]
        fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }
}

impl DiskManager for FileDisk {
    fn append(&mut self, file: &str, data: &[u8]) -> io::Result<()> {
        self.buffers.entry(file.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, file: &str) -> io::Result<()> {
        let Some(buf) = self.buffers.remove(file) else { return Ok(()) };
        if buf.is_empty() {
            return Ok(());
        }
        let created = !self.path(file).exists();
        let mut f = fs::OpenOptions::new().create(true).append(true).open(self.path(file))?;
        f.write_all(&buf)?;
        f.sync_all()?;
        if created {
            self.sync_root()?;
        }
        Ok(())
    }

    fn read(&self, file: &str) -> io::Result<Vec<u8>> {
        let mut data = match fs::read(self.path(file)) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if let Some(buf) = self.buffers.get(file) {
            data.extend_from_slice(buf);
        }
        if data.is_empty() && !self.buffers.contains_key(file) && !self.path(file).exists() {
            return Err(io::Error::new(io::ErrorKind::NotFound, format!("no such file: {file}")));
        }
        Ok(data)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        for name in self.buffers.keys() {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, file: &str) -> io::Result<()> {
        self.buffers.remove(file);
        match fs::remove_file(self.path(file)) {
            Ok(()) => self.sync_root(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn crash(&mut self) {
        self.buffers.clear();
    }
}

#[derive(Default, Clone)]
struct MemFile {
    /// Length of the durable prefix; bytes past this are lost on crash.
    synced: usize,
    data: Vec<u8>,
}

/// Deterministic in-memory backend.
///
/// Behaves exactly like [`FileDisk`] from the store's point of view,
/// including crash semantics, but never touches the real filesystem —
/// so simulator runs stay hermetic and replay bit-identically.
#[derive(Default)]
pub struct MemDisk {
    files: BTreeMap<String, MemFile>,
}

impl MemDisk {
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw contents of `file` (durable + unsynced) — torture-test hook.
    pub fn contents(&self, file: &str) -> Option<Vec<u8>> {
        self.files.get(file).map(|f| f.data.clone())
    }

    /// Overwrite `file` with `data`, marking all of it synced —
    /// torture-test hook for injecting corruption.
    pub fn set_contents(&mut self, file: &str, data: Vec<u8>) {
        self.files.insert(file.to_string(), MemFile { synced: data.len(), data });
    }
}

impl DiskManager for MemDisk {
    fn append(&mut self, file: &str, data: &[u8]) -> io::Result<()> {
        self.files.entry(file.to_string()).or_default().data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, file: &str) -> io::Result<()> {
        if let Some(f) = self.files.get_mut(file) {
            f.synced = f.data.len();
        }
        Ok(())
    }

    fn read(&self, file: &str) -> io::Result<Vec<u8>> {
        self.files
            .get(file)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {file}")))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn remove(&mut self, file: &str) -> io::Result<()> {
        self.files.remove(file);
        Ok(())
    }

    fn crash(&mut self) {
        for f in self.files.values_mut() {
            f.data.truncate(f.synced);
        }
        self.files.retain(|_, f| f.synced > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdisk_crash_discards_unsynced_tail() {
        let mut d = MemDisk::new();
        d.append("a.log", b"one").unwrap();
        d.sync("a.log").unwrap();
        d.append("a.log", b"two").unwrap();
        d.append("b.log", b"never synced").unwrap();
        d.crash();
        assert_eq!(d.read("a.log").unwrap(), b"one");
        assert!(d.read("b.log").is_err());
        assert_eq!(d.list().unwrap(), vec!["a.log".to_string()]);
    }

    #[test]
    fn memdisk_read_includes_unsynced() {
        let mut d = MemDisk::new();
        d.append("a.log", b"one").unwrap();
        assert_eq!(d.read("a.log").unwrap(), b"one");
    }

    #[test]
    fn filedisk_round_trip_and_crash() {
        let root = std::env::temp_dir().join(format!(
            "automon-store-test-{}-{}",
            std::process::id(),
            "round_trip"
        ));
        let _ = fs::remove_dir_all(&root);
        let mut d = FileDisk::open(&root).unwrap();
        d.append("w.log", b"alpha").unwrap();
        // Unsynced appends are visible to read()...
        assert_eq!(d.read("w.log").unwrap(), b"alpha");
        d.sync("w.log").unwrap();
        d.append("w.log", b"beta").unwrap();
        // ...but lost on crash.
        d.crash();
        assert_eq!(d.read("w.log").unwrap(), b"alpha");
        assert_eq!(d.list().unwrap(), vec!["w.log".to_string()]);
        d.remove("w.log").unwrap();
        assert!(d.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
