//! Segment and snapshot file naming.
//!
//! WAL segments are `wal-XXXXXXXX.log` (zero-padded index, so sorted
//! name order is creation order) and snapshots are
//! `snap-XXXXXXXXXXXXXXXX.json` (zero-padded covered sequence number,
//! so sorted name order is recency order). Both parsers reject
//! anything that doesn't match exactly, which lets recovery ignore
//! stray files.

/// File name of WAL segment `idx`.
pub fn segment_name(idx: u64) -> String {
    format!("wal-{idx:08}.log")
}

/// Parse a WAL segment name back to its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// File name of the snapshot covering all records with seq < `covered_seq`.
pub fn snapshot_name(covered_seq: u64) -> String {
    format!("snap-{covered_seq:016}.json")
}

/// Parse a snapshot name back to its covered sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".json")?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(parse_segment_name(&segment_name(7)), Some(7));
        assert_eq!(parse_snapshot_name(&snapshot_name(123)), Some(123));
        assert!(segment_name(2) < segment_name(10), "zero padding keeps sort order");
        assert!(snapshot_name(9) < snapshot_name(10));
    }

    #[test]
    fn foreign_names_are_rejected() {
        for name in ["wal-1.log", "wal-00000001.txt", "snap-1.json", "notes.md", "wal-0000000a.log"] {
            assert!(parse_segment_name(name).is_none(), "{name}");
            assert!(parse_snapshot_name(name).is_none(), "{name}");
        }
    }
}
