//! The WAL frame codec.
//!
//! Every durable record — journal transitions and snapshots alike — is
//! one self-describing frame:
//!
//! ```text
//! +--------+----------------+---------------+----------------+---------+
//! | 0xA7   | seq   u64 LE   | len   u32 LE  | crc32 u32 LE   | payload |
//! | 1 byte | 8 bytes        | 4 bytes       | 4 bytes        | len B   |
//! +--------+----------------+---------------+----------------+---------+
//! ```
//!
//! `seq` is the global, strictly increasing record sequence number;
//! `crc32` (IEEE polynomial) covers the seq bytes, the len bytes, and
//! the payload, so header corruption and payload corruption are both
//! caught. Payloads are canonical JSON from the vendored serde_json
//! (deterministic field order, shortest-round-trip floats), which keeps
//! recovery replay byte-identical across backends.
//!
//! [`decode_stream`] implements valid-prefix semantics: it stops at the
//! first bad magic byte, truncated frame, CRC mismatch, or undecodable
//! payload and reports what it found — it never panics and never
//! yields a record past the corruption point.

use automon_core::journal::Transition;
use automon_core::{CoordinatorStats, Epoch, NodeId, SafeZone};
use serde::{Deserialize, Serialize};

/// Frame magic. 0xA7 follows the wire-protocol magics (0xA9 frames).
pub const MAGIC: u8 = 0xA7;
/// Fixed frame header size: magic + seq + len + crc.
pub const HEADER_LEN: usize = 1 + 8 + 4 + 4;

/// A journaled coordinator state transition, as stored on disk.
///
/// Mirrors [`Transition`] but owns a plain `Option<SafeZone>` (the
/// journal boxes it to keep the enum small in the coordinator's hot
/// path; on disk the JSON is identical either way).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    Node { node: NodeId, x: Option<Vec<f64>>, slack: Vec<f64>, alive: bool, has_curvature: bool },
    Zone { epoch: Epoch, r: f64, zone: Option<SafeZone> },
    Control { lru: Vec<NodeId>, stats: CoordinatorStats, consecutive_neighborhood: usize },
}

impl JournalRecord {
    /// The bitcask key this record supersedes.
    pub fn key(&self) -> StoreKey {
        match self {
            JournalRecord::Node { node, .. } => StoreKey::Node(*node),
            JournalRecord::Zone { .. } => StoreKey::Zone,
            JournalRecord::Control { .. } => StoreKey::Control,
        }
    }
}

impl From<Transition> for JournalRecord {
    fn from(t: Transition) -> Self {
        match t {
            Transition::Node { node, x, slack, alive, has_curvature } => {
                JournalRecord::Node { node, x, slack, alive, has_curvature }
            }
            Transition::Zone { epoch, r, zone } => {
                JournalRecord::Zone { epoch, r, zone: zone.map(|z| *z) }
            }
            Transition::Control { lru, stats, consecutive_neighborhood } => {
                JournalRecord::Control { lru, stats, consecutive_neighborhood }
            }
        }
    }
}

/// Key space of the in-memory directory: one slot per node plus the
/// global zone and control records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoreKey {
    Node(NodeId),
    Zone,
    Control,
}

// --- CRC32 (IEEE 802.3 polynomial, reflected) ------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32 over the frame's covered bytes: seq LE ++ len LE ++ payload.
fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    crc = crc32_update(crc, &seq.to_le_bytes());
    crc = crc32_update(crc, &(payload.len() as u32).to_le_bytes());
    crc = crc32_update(crc, payload);
    !crc
}

/// Encode one frame around an already-serialized payload.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a journal record as one frame.
pub fn encode_record(seq: u64, rec: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_vec(rec).expect("journal records always serialize");
    encode_frame(seq, &payload)
}

/// One decoded frame: its sequence number and raw payload bytes.
pub struct Frame {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Decode a stream of frames, stopping at the first corruption.
///
/// Returns the valid prefix and, if the stream did not end cleanly, a
/// description of what stopped the scan. Trailing garbage after a
/// valid prefix is reported, never consumed.
pub fn decode_frames(bytes: &[u8]) -> (Vec<Frame>, Option<String>) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < HEADER_LEN {
            return (frames, Some(format!("truncated header at offset {off}")));
        }
        if rest[0] != MAGIC {
            return (frames, Some(format!("bad magic 0x{:02X} at offset {off}", rest[0])));
        }
        let seq = u64::from_le_bytes(rest[1..9].try_into().unwrap());
        let len = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[13..17].try_into().unwrap());
        if rest.len() < HEADER_LEN + len {
            return (frames, Some(format!("truncated payload at offset {off} (want {len} bytes)")));
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if frame_crc(seq, payload) != crc {
            return (frames, Some(format!("crc mismatch at offset {off} (seq {seq})")));
        }
        frames.push(Frame { seq, payload: payload.to_vec() });
        off += HEADER_LEN + len;
    }
    (frames, None)
}

/// Decode a stream of journal-record frames (valid-prefix semantics).
pub fn decode_stream(bytes: &[u8]) -> (Vec<(u64, JournalRecord)>, Option<String>) {
    let (frames, mut err) = decode_frames(bytes);
    let mut records = Vec::with_capacity(frames.len());
    for f in frames {
        match serde_json::from_slice::<JournalRecord>(&f.payload) {
            Ok(rec) => records.push((f.seq, rec)),
            Err(e) => {
                // A frame that passes its CRC but fails to decode means a
                // format break, not bit rot; still valid-prefix.
                err = Some(format!("undecodable record at seq {}: {e}", f.seq));
                break;
            }
        }
    }
    (records, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalRecord {
        JournalRecord::Node { node: 3, x: Some(vec![1.5, -2.0]), slack: vec![0.25, 0.0], alive: true, has_curvature: false }
    }

    #[test]
    fn frame_round_trip() {
        let bytes = encode_record(42, &sample());
        let (recs, err) = decode_stream(&bytes);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, 42);
        assert_eq!(recs[0].1, sample());
    }

    #[test]
    fn multi_frame_stream_round_trip() {
        let mut bytes = encode_record(1, &sample());
        bytes.extend(encode_record(
            2,
            &JournalRecord::Zone { epoch: 7, r: 0.5, zone: None },
        ));
        let (recs, err) = decode_stream(&bytes);
        assert!(err.is_none());
        assert_eq!(recs.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn truncated_tail_yields_valid_prefix() {
        let mut bytes = encode_record(1, &sample());
        let full = encode_record(2, &sample());
        bytes.extend_from_slice(&full[..full.len() - 3]);
        let (recs, err) = decode_stream(&bytes);
        assert_eq!(recs.len(), 1);
        assert!(err.unwrap().contains("truncated"));
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let mut bytes = encode_record(1, &sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let (recs, err) = decode_stream(&bytes);
        assert!(recs.is_empty());
        assert!(err.unwrap().contains("crc mismatch"));
    }

    #[test]
    fn bad_magic_stops_scan() {
        let mut bytes = encode_record(1, &sample());
        let good_len = bytes.len();
        bytes.extend(encode_record(2, &sample()));
        bytes[good_len] = 0x00;
        let (recs, err) = decode_stream(&bytes);
        assert_eq!(recs.len(), 1);
        assert!(err.unwrap().contains("bad magic"));
    }
}
