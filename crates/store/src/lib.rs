//! Durable coordinator state: a bitcask-style write-ahead log plus
//! compacted snapshots (DESIGN.md §3.13, docs/DURABILITY.md).
//!
//! The coordinator journals protocol state transitions (via
//! [`automon_core::journal::Journal`]) into an append-only, CRC-framed
//! log; periodically a full [`automon_core::CoordinatorSnapshot`] is
//! checkpointed and segments made of superseded records are dropped.
//! Recovery loads the newest decodable checkpoint and folds the valid
//! log suffix on top — truncated tails, bit flips, and duplicated
//! segments all degrade to the last valid prefix, never to a panic or
//! silently corrupt state.
//!
//! All I/O goes through [`DiskManager`]; [`FileDisk`] persists to real
//! files while [`MemDisk`] gives the simulator a deterministic
//! in-memory filesystem with identical crash semantics, so a seeded
//! chaos run replays bit-identically on either backend.

mod disk;
mod key_dir;
pub mod record;
pub mod segment;
pub mod snapshot;

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use automon_core::journal::{Journal, Transition};
use automon_core::CoordinatorSnapshot;
use parking_lot::Mutex;

pub use disk::{DiskManager, FileDisk, MemDisk};
pub use key_dir::{KeyDir, RecordLoc};
pub use record::{decode_stream, encode_record, JournalRecord, StoreKey};
pub use snapshot::StoredSnapshot;

/// When appended records become durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record (default; one record is the most a
    /// crash can lose, and with [`MemDisk`] it costs a length update).
    EveryRecord,
    /// Sync every `n` records; a crash loses at most `n - 1`.
    EveryN(u32),
    /// Only sync at snapshots, rotations, and explicit [`CoordinatorStore::sync`].
    Manual,
}

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rotate the active segment once it would exceed this many bytes.
    pub segment_bytes: u64,
    pub sync: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { segment_bytes: 64 * 1024, sync: SyncPolicy::EveryRecord }
    }
}

/// What recovery found.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// `covered_seq` of the checkpoint recovery started from.
    pub snapshot_seq: Option<u64>,
    /// Journal records folded on top of the checkpoint.
    pub records_replayed: usize,
    /// WAL segments scanned.
    pub segments_scanned: usize,
    /// First corruption encountered, if any (recovery still succeeds
    /// with the valid prefix).
    pub corruption: Option<String>,
}

/// The recovered coordinator state plus how it was assembled.
#[derive(Debug)]
pub struct RecoveredState {
    /// Checkpoint + replayed suffix, ready for `Coordinator::restore`.
    /// `None` when no decodable checkpoint exists (an empty or fully
    /// corrupt store).
    pub snapshot: Option<CoordinatorSnapshot>,
    pub report: RecoveryReport,
}

/// The durable coordinator store: WAL + key directory + checkpoints.
pub struct CoordinatorStore<D: DiskManager> {
    disk: D,
    opts: StoreOptions,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
    /// Index of the active (append) segment.
    active: u64,
    active_bytes: u64,
    /// Records appended since the last sync (for `SyncPolicy::EveryN`).
    unsynced: u32,
    key_dir: KeyDir,
    /// Highest record seq per segment, for coverage-based compaction.
    seg_max: BTreeMap<u64, u64>,
    /// `covered_seq` of checkpoints currently on disk, ascending.
    checkpoints: Vec<u64>,
    /// First append error, surfaced out-of-band (journaling must not
    /// unwind the protocol).
    io_error: Option<io::Error>,
}

impl<D: DiskManager> CoordinatorStore<D> {
    /// Open a store on `disk`, recovering whatever it holds.
    pub fn open(disk: D, opts: StoreOptions) -> io::Result<(Self, RecoveredState)> {
        let mut store = CoordinatorStore {
            disk,
            opts,
            next_seq: 0,
            active: 0,
            active_bytes: 0,
            unsynced: 0,
            key_dir: KeyDir::new(),
            seg_max: BTreeMap::new(),
            checkpoints: Vec::new(),
            io_error: None,
        };
        let recovered = store.recover()?;
        Ok((store, recovered))
    }

    /// Scan disk and rebuild all in-memory state; returns the
    /// recovered coordinator snapshot (checkpoint + valid log suffix).
    ///
    /// Callable at any time — after [`CoordinatorStore::crash`] it is
    /// how the store re-synchronizes with what actually survived.
    pub fn recover(&mut self) -> io::Result<RecoveredState> {
        self.key_dir.clear();
        self.seg_max.clear();
        self.checkpoints.clear();
        self.unsynced = 0;
        self.io_error = None;

        let mut segments: Vec<u64> = Vec::new();
        let mut snapshot_files: Vec<u64> = Vec::new();
        for name in self.disk.list()? {
            if let Some(idx) = segment::parse_segment_name(&name) {
                segments.push(idx);
            } else if let Some(seq) = segment::parse_snapshot_name(&name) {
                snapshot_files.push(seq);
            }
        }
        segments.sort_unstable();
        snapshot_files.sort_unstable();

        // Scan segments in creation order, enforcing a strictly
        // increasing global sequence. A regression means a duplicated
        // (re-copied) segment; any corruption ends the valid prefix —
        // later segments cannot be trusted to be contiguous.
        let mut replay: Vec<(u64, u64, JournalRecord)> = Vec::new();
        let mut corruption: Option<String> = None;
        let mut bad_seg: Option<u64> = None;
        let mut last_seq: Option<u64> = None;
        let mut segments_scanned = 0usize;
        'scan: for &seg in &segments {
            segments_scanned += 1;
            let bytes = self.disk.read(&segment::segment_name(seg))?;
            let (records, err) = decode_stream(&bytes);
            for (seq, rec) in records {
                if last_seq.is_some_and(|l| seq <= l) {
                    corruption = Some(format!(
                        "duplicated segment {seg}: seq {seq} not after {}",
                        last_seq.unwrap()
                    ));
                    bad_seg = Some(seg);
                    break 'scan;
                }
                last_seq = Some(seq);
                replay.push((seq, seg, rec));
            }
            if let Some(e) = err {
                corruption = Some(format!("segment {seg}: {e}"));
                bad_seg = Some(seg);
                break 'scan;
            }
        }

        // Quarantine the corruption. If the corrupt tail survived here,
        // the next recovery would re-break at this same spot and orphan
        // every record appended after THIS recovery — acknowledged
        // writes would silently vanish. The bad segment's decoded valid
        // prefix is copied to a fresh segment FIRST (encoding is
        // canonical, so the bytes are reproduced exactly), and only then
        // are the bad segment and the untrusted, never-replayed
        // segments after it deleted — so a crash at any point mid-
        // quarantine either leaves the old corrupt layout (re-
        // quarantined next time) or the clean one, never a state with
        // synced records lost.
        if let Some(bad) = bad_seg {
            let mut prefix: Vec<u8> = Vec::new();
            for (seq, seg, rec) in &replay {
                if *seg == bad {
                    prefix.extend_from_slice(&encode_record(*seq, rec));
                }
            }
            let mut rescue: Option<u64> = None;
            if !prefix.is_empty() {
                let fresh = segments.last().unwrap() + 1;
                let name = segment::segment_name(fresh);
                self.disk.append(&name, &prefix)?;
                self.disk.sync(&name)?;
                rescue = Some(fresh);
            }
            // Highest first, so a partial delete only ever shortens the
            // untrusted tail.
            for &seg in segments.iter().filter(|&&s| s > bad).rev() {
                self.disk.remove(&segment::segment_name(seg))?;
            }
            self.disk.remove(&segment::segment_name(bad))?;
            if let Some(fresh) = rescue {
                // The rescued records now live in the fresh segment.
                for (_, seg, _) in &mut replay {
                    if *seg == bad {
                        *seg = fresh;
                    }
                }
                segments.push(fresh);
            }
        }

        // Newest decodable checkpoint wins; corrupt ones fall back to
        // the previous (two-checkpoint retention keeps the segments it
        // needs — see `write_snapshot`). Undecodable checkpoints are
        // deleted from disk and dropped from `self.checkpoints`:
        // keeping one would let the next `write_snapshot` treat it as a
        // valid predecessor (or dedup target) and compact away the last
        // genuinely decodable checkpoint.
        let mut base: Option<StoredSnapshot> = None;
        let mut dead_snaps: Vec<u64> = Vec::new();
        for &seq in snapshot_files.iter().rev() {
            match self.disk.read(&segment::snapshot_name(seq)) {
                Ok(bytes) => {
                    if let Some(s) = snapshot::decode_snapshot(&bytes) {
                        base = Some(s);
                        break;
                    }
                    corruption.get_or_insert(format!("checkpoint {seq} undecodable"));
                    dead_snaps.push(seq);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        for &seq in &dead_snaps {
            self.disk.remove(&segment::snapshot_name(seq))?;
        }
        snapshot_files.retain(|s| !dead_snaps.contains(s));

        // Fold the valid suffix and rebuild the key directory.
        let covered = base.as_ref().map(|s| s.covered_seq).unwrap_or(0);
        let mut records_replayed = 0usize;
        let snapshot = base.as_ref().map(|b| {
            let mut snap = b.snapshot.clone();
            for (seq, _, rec) in &replay {
                if *seq >= covered {
                    snapshot::apply(&mut snap, rec);
                    records_replayed += 1;
                }
            }
            snap
        });
        for (seq, seg, rec) in &replay {
            self.key_dir.insert(rec.key(), RecordLoc { segment: *seg, seq: *seq });
            let max = self.seg_max.entry(*seg).or_insert(*seq);
            *max = (*max).max(*seq);
        }
        self.checkpoints = snapshot_files;

        // New appends go to a fresh segment (indices of removed
        // segments are never reused): the old active segment's tail may
        // hold unsynced bytes a later crash would discard out from
        // under anything appended after them.
        self.active = segments.last().map(|s| s + 1).unwrap_or(0);
        self.active_bytes = 0;
        self.next_seq = last_seq.map(|s| s + 1).unwrap_or(0).max(covered);

        Ok(RecoveredState {
            snapshot,
            report: RecoveryReport {
                snapshot_seq: base.map(|s| s.covered_seq),
                records_replayed,
                segments_scanned,
                corruption,
            },
        })
    }

    /// Append one journal record; returns its sequence number.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        let frame = encode_record(seq, rec);
        if self.active_bytes > 0 && self.active_bytes + frame.len() as u64 > self.opts.segment_bytes
        {
            // Seal the active segment (durable up to its last record)
            // and rotate.
            self.disk.sync(&segment::segment_name(self.active))?;
            self.unsynced = 0;
            self.active += 1;
            self.active_bytes = 0;
        }
        let name = segment::segment_name(self.active);
        self.disk.append(&name, &frame)?;
        self.active_bytes += frame.len() as u64;
        self.key_dir.insert(rec.key(), RecordLoc { segment: self.active, seq });
        let max = self.seg_max.entry(self.active).or_insert(seq);
        *max = (*max).max(seq);
        self.next_seq = seq + 1;
        match self.opts.sync {
            SyncPolicy::EveryRecord => self.disk.sync(&name)?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.disk.sync(&name)?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Manual => {}
        }
        Ok(seq)
    }

    /// Force the active segment durable (a manual sync point).
    pub fn sync(&mut self) -> io::Result<()> {
        self.disk.sync(&segment::segment_name(self.active))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Checkpoint `snap` and compact.
    ///
    /// The checkpoint covers every record appended so far (they are
    /// synced first). Compaction keeps TWO checkpoints — the new one
    /// and its predecessor — and only deletes segments fully covered by
    /// the *predecessor*, so if the newest checkpoint file is later
    /// found corrupt, recovery can still load the previous one and
    /// roll forward through the retained segments.
    pub fn write_snapshot(&mut self, snap: &CoordinatorSnapshot) -> io::Result<u64> {
        self.sync()?;
        let covered = self.next_seq;
        // No records since the newest checkpoint: it already covers
        // this exact state (every coordinator mutation journals a
        // record, so no records ⇒ no state change). Writing again
        // would append a second frame to the same `snap-<seq>` file
        // and make it undecodable — a checkpoint is one frame by
        // contract.
        if self.checkpoints.last() == Some(&covered) {
            return Ok(covered);
        }
        let stored = StoredSnapshot { covered_seq: covered, snapshot: snap.clone() };
        let name = segment::snapshot_name(covered);
        self.disk.append(&name, &snapshot::encode_snapshot(&stored))?;
        self.disk.sync(&name)?;

        let prev = self.checkpoints.last().copied();
        self.checkpoints.push(covered);

        // Drop checkpoints older than the predecessor.
        if let Some(prev) = prev {
            let (old, keep): (Vec<u64>, Vec<u64>) =
                self.checkpoints.iter().partition(|&&s| s < prev);
            for seq in old {
                self.disk.remove(&segment::snapshot_name(seq))?;
            }
            self.checkpoints = keep;
            // Drop segments fully covered by the predecessor
            // checkpoint (never the active one).
            let dead: Vec<u64> = self
                .seg_max
                .iter()
                .filter(|&(&seg, &max)| seg != self.active && max < prev)
                .map(|(&seg, _)| seg)
                .collect();
            for seg in dead {
                self.disk.remove(&segment::segment_name(seg))?;
                self.seg_max.remove(&seg);
            }
        }
        Ok(covered)
    }

    /// Simulate a crash at this instant: all unsynced appends are lost.
    /// The in-memory state is stale afterwards; call
    /// [`CoordinatorStore::recover`] before using the store again.
    pub fn crash(&mut self) {
        self.disk.crash();
    }

    /// Journal a coordinator transition, stashing (not propagating) the
    /// first I/O error — durability failures must not unwind the
    /// protocol mid-handle.
    pub fn journal(&mut self, t: Transition) {
        let rec = JournalRecord::from(t);
        if self.io_error.is_none() {
            if let Err(e) = self.append(&rec) {
                self.io_error = Some(e);
            }
        }
    }

    /// Take the first journaling error, if any occurred.
    pub fn take_io_error(&mut self) -> Option<io::Error> {
        self.io_error.take()
    }

    /// Sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Live key directory (latest record location per key).
    pub fn key_dir(&self) -> &KeyDir {
        &self.key_dir
    }

    /// Direct access to the backing disk (test + torture hook).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }
}

/// Boxed disk backend, for stores whose backend is chosen at runtime.
pub type DynDisk = Box<dyn DiskManager>;
/// Store over a boxed backend.
pub type DynStore = CoordinatorStore<DynDisk>;

/// A shareable handle to a [`DynStore`].
///
/// The simulator holds one side and hands the coordinator the other
/// (as a `Box<dyn Journal>` adapter) so journaling and checkpointing
/// hit the same WAL.
#[derive(Clone)]
pub struct SharedStore(Arc<Mutex<DynStore>>);

impl SharedStore {
    pub fn new(store: DynStore) -> Self {
        SharedStore(Arc::new(Mutex::new(store)))
    }

    /// Open a store on a boxed backend and wrap it for sharing.
    pub fn open(disk: DynDisk, opts: StoreOptions) -> io::Result<(Self, RecoveredState)> {
        let (store, recovered) = CoordinatorStore::open(disk, opts)?;
        Ok((SharedStore::new(store), recovered))
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, DynStore> {
        self.0.lock()
    }

    /// A journal sink the coordinator can own.
    pub fn journal(&self) -> Box<dyn Journal> {
        Box::new(SharedJournal(self.clone()))
    }
}

/// `Journal` adapter over a [`SharedStore`].
struct SharedJournal(SharedStore);

impl Journal for SharedJournal {
    fn record(&mut self, t: Transition) {
        self.0.lock().journal(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_core::CoordinatorStats;

    fn base_snap(n: usize) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            n,
            r: 1.0,
            zone: None,
            slack: vec![vec![0.0; 2]; n],
            known_x: vec![None; n],
            lru: Vec::new(),
            stats: CoordinatorStats::default(),
            consecutive_neighborhood: 0,
            epoch: 0,
            alive: vec![true; n],
            node_has_curvature: vec![false; n],
        }
    }

    fn node_rec(node: usize, v: f64) -> JournalRecord {
        JournalRecord::Node { node, x: Some(vec![v, v]), slack: vec![0.0, 0.0], alive: true, has_curvature: false }
    }

    fn mem_store(opts: StoreOptions) -> DynStore {
        CoordinatorStore::open(Box::new(MemDisk::new()) as DynDisk, opts).unwrap().0
    }

    #[test]
    fn checkpoint_plus_replay_round_trip() {
        let mut store = mem_store(StoreOptions::default());
        store.write_snapshot(&base_snap(3)).unwrap();
        store.append(&node_rec(0, 1.0)).unwrap();
        store.append(&node_rec(2, 5.0)).unwrap();
        store.append(&JournalRecord::Zone { epoch: 4, r: 2.5, zone: None }).unwrap();
        store.crash();
        let rec = store.recover().unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]));
        assert_eq!(snap.known_x[2], Some(vec![5.0, 5.0]));
        assert_eq!(snap.epoch, 4);
        assert_eq!(rec.report.records_replayed, 3);
        assert!(rec.report.corruption.is_none());
    }

    #[test]
    fn crash_loses_only_unsynced_records() {
        let mut store = mem_store(StoreOptions { sync: SyncPolicy::EveryN(2), ..Default::default() });
        store.write_snapshot(&base_snap(2)).unwrap();
        store.append(&node_rec(0, 1.0)).unwrap();
        store.append(&node_rec(1, 2.0)).unwrap(); // 2nd record triggers sync
        store.append(&node_rec(0, 9.0)).unwrap(); // unsynced, lost
        store.crash();
        let rec = store.recover().unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]), "unsynced overwrite lost");
        assert_eq!(rec.report.records_replayed, 2);
    }

    #[test]
    fn segment_rotation_and_fresh_active_after_recovery() {
        let mut store = mem_store(StoreOptions { segment_bytes: 128, ..Default::default() });
        store.write_snapshot(&base_snap(2)).unwrap();
        for i in 0..20 {
            store.append(&node_rec(i % 2, i as f64)).unwrap();
        }
        let segs = store
            .disk_mut()
            .list()
            .unwrap()
            .iter()
            .filter(|n| segment::parse_segment_name(n).is_some())
            .count();
        assert!(segs > 1, "128-byte segments must rotate");
        store.crash();
        let rec = store.recover().unwrap();
        assert_eq!(rec.report.records_replayed, 20);
        let next = store.next_seq();
        store.append(&node_rec(0, 99.0)).unwrap();
        assert_eq!(store.next_seq(), next + 1);
    }

    #[test]
    fn compaction_keeps_two_checkpoints_and_covered_segments() {
        let mut store = mem_store(StoreOptions { segment_bytes: 128, ..Default::default() });
        store.write_snapshot(&base_snap(2)).unwrap();
        for round in 0..4u64 {
            for i in 0..10u64 {
                store.append(&node_rec((i % 2) as usize, (round * 10 + i) as f64)).unwrap();
            }
            store.write_snapshot(&base_snap(2)).unwrap();
        }
        let names = store.disk_mut().list().unwrap();
        let snaps = names.iter().filter(|n| segment::parse_snapshot_name(n).is_some()).count();
        assert_eq!(snaps, 2, "exactly the two newest checkpoints are retained: {names:?}");
        // Everything still recovers cleanly after compaction.
        store.crash();
        let rec = store.recover().unwrap();
        assert!(rec.report.corruption.is_none());
        assert!(rec.snapshot.is_some());
    }

    #[test]
    fn empty_store_recovers_to_nothing() {
        let (_, rec) =
            CoordinatorStore::open(Box::new(MemDisk::new()) as DynDisk, StoreOptions::default())
                .unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.report, RecoveryReport::default());
    }

    #[test]
    fn shared_journal_feeds_the_same_wal() {
        let (shared, _) =
            SharedStore::open(Box::new(MemDisk::new()) as DynDisk, StoreOptions::default())
                .unwrap();
        shared.lock().write_snapshot(&base_snap(2)).unwrap();
        let mut journal = shared.journal();
        journal.record(Transition::Node { node: 1, x: Some(vec![7.0, 7.0]), slack: vec![0.0, 0.0], alive: true, has_curvature: false });
        let rec = shared.lock().recover().unwrap();
        assert_eq!(rec.snapshot.unwrap().known_x[1], Some(vec![7.0, 7.0]));
    }
}
