//! The bitcask key directory: key → location of its latest record.
//!
//! The directory is rebuilt from a full scan at open/recovery and kept
//! current on every append. It exists to make compaction cheap: a
//! segment whose records are all superseded (no key in the directory
//! points into it) can be deleted without reading it.

use std::collections::BTreeMap;

use crate::record::StoreKey;

/// Where a key's latest record lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLoc {
    /// WAL segment index the record was appended to.
    pub segment: u64,
    /// Global sequence number of the record.
    pub seq: u64,
}

/// In-memory map from store key to its latest record location.
#[derive(Default, Debug)]
pub struct KeyDir {
    map: BTreeMap<StoreKey, RecordLoc>,
}

impl KeyDir {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `key`'s latest version now lives at `loc`.
    pub fn insert(&mut self, key: StoreKey, loc: RecordLoc) {
        self.map.insert(key, loc);
    }

    pub fn get(&self, key: &StoreKey) -> Option<RecordLoc> {
        self.map.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// True if any live key still points into `segment`.
    pub fn references_segment(&self, segment: u64) -> bool {
        self.map.values().any(|loc| loc.segment == segment)
    }

    /// Iterate keys in deterministic (BTree) order.
    pub fn iter(&self) -> impl Iterator<Item = (&StoreKey, &RecordLoc)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_wins_and_segment_refs_track() {
        let mut dir = KeyDir::new();
        dir.insert(StoreKey::Node(0), RecordLoc { segment: 0, seq: 1 });
        dir.insert(StoreKey::Zone, RecordLoc { segment: 0, seq: 2 });
        dir.insert(StoreKey::Node(0), RecordLoc { segment: 1, seq: 5 });
        assert_eq!(dir.get(&StoreKey::Node(0)).unwrap().seq, 5);
        assert!(dir.references_segment(0), "zone record still lives in segment 0");
        dir.insert(StoreKey::Zone, RecordLoc { segment: 1, seq: 6 });
        assert!(!dir.references_segment(0), "segment 0 fully superseded");
        assert_eq!(dir.len(), 2);
    }
}
