//! WAL torture tests: every corruption the durability contract names —
//! truncated tail record, bit-flipped checksum, duplicated segment,
//! corrupt checkpoint — must be *detected* and recovery must fall back
//! to the last valid prefix. Never a panic, never silently corrupt
//! state (docs/DURABILITY.md).

use automon_core::{CoordinatorSnapshot, CoordinatorStats};
use automon_store::record::{self, JournalRecord};
use automon_store::segment;
use automon_store::{CoordinatorStore, DiskManager, FileDisk, MemDisk, StoreOptions, SyncPolicy};

fn base_snap(n: usize) -> CoordinatorSnapshot {
    CoordinatorSnapshot {
        n,
        r: 1.0,
        zone: None,
        slack: vec![vec![0.0; 2]; n],
        known_x: vec![None; n],
        lru: Vec::new(),
        stats: CoordinatorStats::default(),
        consecutive_neighborhood: 0,
        epoch: 0,
        alive: vec![true; n],
        node_has_curvature: vec![false; n],
    }
}

fn node_rec(node: usize, v: f64) -> JournalRecord {
    JournalRecord::Node { node, x: Some(vec![v, v]), slack: vec![0.0, 0.0], alive: true, has_curvature: false }
}

fn mem_store(opts: StoreOptions) -> CoordinatorStore<MemDisk> {
    CoordinatorStore::open(MemDisk::new(), opts).unwrap().0
}

/// Checkpoint, then append `values` as node-0 records (synced).
fn seed_store(opts: StoreOptions, values: &[f64]) -> CoordinatorStore<MemDisk> {
    let mut store = mem_store(opts);
    store.write_snapshot(&base_snap(2)).unwrap();
    for &v in values {
        store.append(&node_rec(0, v)).unwrap();
    }
    store.sync().unwrap();
    store
}

#[test]
fn truncated_tail_record_falls_back_to_valid_prefix() {
    let mut store = seed_store(StoreOptions::default(), &[1.0, 2.0, 3.0]);
    let seg = segment::segment_name(0);
    let mut bytes = store.disk_mut().contents(&seg).expect("segment exists");
    // Cut into the last frame: the tail record is half-written.
    bytes.truncate(bytes.len() - 5);
    store.disk_mut().set_contents(&seg, bytes);

    let rec = store.recover().unwrap();
    let snap = rec.snapshot.expect("checkpoint survives");
    assert_eq!(snap.known_x[0], Some(vec![2.0, 2.0]), "prefix up to the cut replays");
    assert_eq!(rec.report.records_replayed, 2);
    assert!(
        rec.report.corruption.as_deref().unwrap().contains("truncated"),
        "{:?}",
        rec.report.corruption
    );
}

#[test]
fn bit_flipped_checksum_is_detected_and_prefix_kept() {
    let mut store = seed_store(StoreOptions::default(), &[1.0, 2.0, 3.0]);
    let seg = segment::segment_name(0);
    let mut bytes = store.disk_mut().contents(&seg).expect("segment exists");
    // Flip one payload bit in the middle record (frames are equal-sized
    // here, so the middle starts at a third of the stream).
    let off = bytes.len() / 3 + record::HEADER_LEN + 2;
    bytes[off] ^= 0x40;
    store.disk_mut().set_contents(&seg, bytes);

    let rec = store.recover().unwrap();
    let snap = rec.snapshot.expect("checkpoint survives");
    assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]), "only the pre-flip prefix replays");
    assert_eq!(rec.report.records_replayed, 1);
    assert!(
        rec.report.corruption.as_deref().unwrap().contains("crc mismatch"),
        "{:?}",
        rec.report.corruption
    );
}

#[test]
fn duplicated_segment_breaks_the_sequence_and_stops_the_scan() {
    // Tiny segments so the log spans several files.
    let opts = StoreOptions { segment_bytes: 128, sync: SyncPolicy::EveryRecord };
    let mut store = seed_store(opts, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let segs: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_segment_name(n).is_some())
        .collect();
    assert!(segs.len() >= 3, "need several segments for this test: {segs:?}");
    // An operator "restores" an old segment over a newer one: its seqs
    // regress relative to the segment before it.
    let old = store.disk_mut().contents(&segs[0]).unwrap();
    let victim = segs[segs.len() - 1].clone();
    store.disk_mut().set_contents(&victim, old);

    let rec = store.recover().unwrap();
    assert!(rec.snapshot.is_some());
    assert!(
        rec.report.corruption.as_deref().unwrap().contains("duplicated segment"),
        "{:?}",
        rec.report.corruption
    );
    // Replay stops before the duplicated segment; nothing from it (or
    // after it) is applied twice.
    assert!(rec.report.records_replayed < 8);
}

#[test]
fn corruption_invalidates_all_later_segments() {
    let opts = StoreOptions { segment_bytes: 128, sync: SyncPolicy::EveryRecord };
    let mut store = seed_store(opts, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let segs: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_segment_name(n).is_some())
        .collect();
    assert!(segs.len() >= 3);
    // Corrupt the FIRST segment: even though later segments are intact,
    // they cannot be trusted to be contiguous with the valid prefix.
    let mut bytes = store.disk_mut().contents(&segs[0]).unwrap();
    bytes[record::HEADER_LEN + 1] ^= 0xFF;
    store.disk_mut().set_contents(&segs[0], bytes);

    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 0, "nothing after the corruption replays");
    assert!(rec.report.corruption.is_some());
    let snap = rec.snapshot.expect("checkpoint itself is intact");
    assert_eq!(snap.known_x[0], None, "state is the checkpoint, not a gapped replay");
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let mut store = mem_store(StoreOptions::default());
    store.write_snapshot(&base_snap(2)).unwrap();
    store.append(&node_rec(0, 1.0)).unwrap();
    let mut marked = base_snap(2);
    marked.epoch = 9;
    store.write_snapshot(&marked).unwrap(); // newest checkpoint: epoch 9
    store.append(&node_rec(0, 2.0)).unwrap();
    store.sync().unwrap();

    // Trash the newest checkpoint file.
    let snaps: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    assert_eq!(snaps.len(), 2, "two-checkpoint retention: {snaps:?}");
    let newest = snaps.last().unwrap().clone();
    store.disk_mut().set_contents(&newest, vec![0xDE, 0xAD, 0xBE, 0xEF]);

    let rec = store.recover().unwrap();
    let snap = rec.snapshot.expect("previous checkpoint still loads");
    // The previous checkpoint (epoch 0) plus the full retained log: the
    // epoch-9 Zone state was never journaled, so we see epoch 0 with
    // both node records folded in.
    assert_eq!(snap.epoch, 0);
    assert_eq!(snap.known_x[0], Some(vec![2.0, 2.0]), "retained segments roll forward");
    assert!(
        rec.report.corruption.as_deref().unwrap().contains("checkpoint"),
        "{:?}",
        rec.report.corruption
    );
}

#[test]
fn both_checkpoints_corrupt_recovers_to_none_without_panicking() {
    let mut store = mem_store(StoreOptions::default());
    store.write_snapshot(&base_snap(2)).unwrap();
    store.append(&node_rec(0, 1.0)).unwrap();
    store.write_snapshot(&base_snap(2)).unwrap();
    let snaps: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    for name in snaps {
        store.disk_mut().set_contents(&name, vec![0x00; 8]);
    }
    let rec = store.recover().unwrap();
    assert!(rec.snapshot.is_none(), "no decodable checkpoint anywhere");
    assert!(rec.report.corruption.is_some());
    // The store stays writable: new appends land in a fresh segment.
    store.append(&node_rec(1, 3.0)).unwrap();
}

#[test]
fn garbage_and_foreign_files_are_ignored() {
    let mut store = seed_store(StoreOptions::default(), &[1.0]);
    store.disk_mut().set_contents("README.txt", b"not a wal file".to_vec());
    store.disk_mut().set_contents("wal-garbage.log", vec![0xFF; 64]);
    let rec = store.recover().unwrap();
    assert!(rec.report.corruption.is_none(), "{:?}", rec.report.corruption);
    assert_eq!(rec.snapshot.unwrap().known_x[0], Some(vec![1.0, 1.0]));
}

#[test]
fn compaction_then_torture_still_recovers() {
    // After compaction has deleted old segments/checkpoints, tail
    // corruption must still fall back cleanly.
    let opts = StoreOptions { segment_bytes: 256, sync: SyncPolicy::EveryRecord };
    let mut store = mem_store(opts);
    for round in 0..5u64 {
        for i in 0..6u64 {
            store.append(&node_rec((i % 2) as usize, (round * 10 + i) as f64)).unwrap();
        }
        store.write_snapshot(&base_snap(2)).unwrap();
    }
    store.append(&node_rec(0, 99.0)).unwrap();
    store.sync().unwrap();
    // Truncate the newest segment's tail.
    let segs: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_segment_name(n).is_some())
        .collect();
    let tail = segs.last().unwrap().clone();
    let mut bytes = store.disk_mut().contents(&tail).unwrap();
    let keep = bytes.len().saturating_sub(7);
    bytes.truncate(keep);
    store.disk_mut().set_contents(&tail, bytes);

    let rec = store.recover().unwrap();
    assert!(rec.snapshot.is_some());
    assert!(rec.report.corruption.is_some());
    // And the store remains append-able afterwards — crucially, records
    // appended AFTER a corruption-recovery must survive the NEXT
    // recovery (the corrupt tail was quarantined, not left to re-break
    // the scan).
    store.append(&node_rec(1, 100.0)).unwrap();
    store.crash();
    let rec2 = store.recover().unwrap();
    let snap2 = rec2.snapshot.expect("checkpoint still loads");
    assert_eq!(
        snap2.known_x[1],
        Some(vec![100.0, 100.0]),
        "post-recovery append survives the next recovery"
    );
    assert!(rec2.report.corruption.is_none(), "{:?}", rec2.report.corruption);
}

#[test]
fn corrupt_tail_is_quarantined_so_later_appends_survive_rerecovery() {
    // Regression: checkpoint + 2 records, truncate the segment tail,
    // recover (ok), append a synced record, recover again — the new
    // record must still be there. Before tail quarantine the second
    // scan re-broke at the old corruption and never reached the fresh
    // segment.
    let mut store = seed_store(StoreOptions::default(), &[1.0, 2.0]);
    let seg = segment::segment_name(0);
    let mut bytes = store.disk_mut().contents(&seg).expect("segment exists");
    bytes.truncate(bytes.len() - 5);
    store.disk_mut().set_contents(&seg, bytes);

    let rec = store.recover().unwrap();
    assert!(rec.report.corruption.is_some());
    assert_eq!(rec.snapshot.unwrap().known_x[0], Some(vec![1.0, 1.0]));

    store.append(&node_rec(1, 7.0)).unwrap(); // SyncPolicy::EveryRecord ⇒ synced
    store.crash();
    let rec2 = store.recover().unwrap();
    assert!(rec2.report.corruption.is_none(), "{:?}", rec2.report.corruption);
    let snap = rec2.snapshot.unwrap();
    assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]), "rescued prefix still replays");
    assert_eq!(snap.known_x[1], Some(vec![7.0, 7.0]), "acknowledged post-recovery write survives");
}

#[test]
fn filedisk_quarantines_corrupt_tail_like_memdisk() {
    // The quarantine path must behave identically on the real file
    // backend (including the directory syncs its remove/create hit).
    let root = std::env::temp_dir()
        .join(format!("automon-store-torture-{}-quarantine", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    {
        let disk = FileDisk::open(&root).unwrap();
        let (mut store, _) = CoordinatorStore::open(disk, StoreOptions::default()).unwrap();
        store.write_snapshot(&base_snap(2)).unwrap();
        store.append(&node_rec(0, 1.0)).unwrap();
        store.append(&node_rec(0, 2.0)).unwrap();
    }
    // Truncate the segment's tail on the real filesystem.
    let seg_path = root.join(segment::segment_name(0));
    let len = std::fs::metadata(&seg_path).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&seg_path).unwrap().set_len(len - 5).unwrap();

    let disk = FileDisk::open(&root).unwrap();
    let (mut store, rec) = CoordinatorStore::open(disk, StoreOptions::default()).unwrap();
    assert!(rec.report.corruption.is_some());
    assert_eq!(rec.snapshot.unwrap().known_x[0], Some(vec![1.0, 1.0]));
    assert!(!seg_path.exists(), "corrupt segment quarantined off disk");
    store.append(&node_rec(1, 7.0)).unwrap();
    drop(store);

    let disk = FileDisk::open(&root).unwrap();
    let (_, rec2) = CoordinatorStore::open(disk, StoreOptions::default()).unwrap();
    assert!(rec2.report.corruption.is_none(), "{:?}", rec2.report.corruption);
    let snap = rec2.snapshot.unwrap();
    assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]), "rescued prefix survives");
    assert_eq!(snap.known_x[1], Some(vec![7.0, 7.0]), "post-recovery append survives");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_checkpoint_is_deleted_so_compaction_keeps_a_valid_predecessor() {
    // Regression: snap A, record, snap B; corrupt B; recover; record;
    // snap C; corrupt C. Recovery must fall back to a decodable
    // checkpoint. Before corrupt-checkpoint deletion, writing C treated
    // corrupt B as the predecessor and compacted away valid A, so
    // corrupting C lost ALL state.
    let mut store = mem_store(StoreOptions::default());
    store.write_snapshot(&base_snap(2)).unwrap(); // snap A
    store.append(&node_rec(0, 1.0)).unwrap();
    store.write_snapshot(&base_snap(2)).unwrap(); // snap B
    let snaps: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    let b = snaps.last().unwrap().clone();
    store.disk_mut().set_contents(&b, vec![0xBA, 0xD0]);

    let rec = store.recover().unwrap();
    assert!(rec.report.corruption.as_deref().unwrap().contains("checkpoint"));
    // The undecodable checkpoint is gone from disk, not kept as a
    // phantom predecessor.
    assert!(!store.disk_mut().list().unwrap().contains(&b), "corrupt checkpoint deleted");

    store.append(&node_rec(1, 2.0)).unwrap();
    store.write_snapshot(&base_snap(2)).unwrap(); // snap C
    let snaps: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    let c = snaps.last().unwrap().clone();
    store.disk_mut().set_contents(&c, vec![0xBA, 0xD1]);

    let rec2 = store.recover().unwrap();
    let snap = rec2.snapshot.expect("a decodable predecessor checkpoint survives compaction");
    assert_eq!(snap.known_x[0], Some(vec![1.0, 1.0]), "retained segments roll forward");
    assert_eq!(snap.known_x[1], Some(vec![2.0, 2.0]));
}

#[test]
fn rewriting_snapshot_after_corrupt_dedup_target_produces_decodable_checkpoint() {
    // The write_snapshot dedup must not treat a corrupt on-disk
    // checkpoint as already-written: after recovery removed it, writing
    // the same covered_seq again must yield a decodable checkpoint.
    let mut store = mem_store(StoreOptions::default());
    store.append(&node_rec(0, 1.0)).unwrap();
    let mut marked = base_snap(2);
    marked.epoch = 5;
    store.write_snapshot(&marked).unwrap();
    let snaps: Vec<String> = store
        .disk_mut()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    store.disk_mut().set_contents(snaps.last().unwrap(), vec![0x00; 4]);

    store.recover().unwrap();
    store.write_snapshot(&marked).unwrap(); // same covered_seq as the corrupt one
    store.crash();
    let rec = store.recover().unwrap();
    let snap = rec.snapshot.expect("re-written checkpoint decodes");
    assert_eq!(snap.epoch, 5);
    assert!(rec.report.corruption.is_none(), "{:?}", rec.report.corruption);
}
