//! Property tests shared by the three decomposition-cache eviction
//! policies (LRU-K, SLRU, ARC): capacity is never exceeded, hit/miss
//! bookkeeping matches a naive oracle map, evictions always name
//! resident keys, the same operation sequence always produces the same
//! eviction sequence, and ARC's ghost-list invariants hold after every
//! operation.

use std::collections::BTreeSet;

use automon_core::cache::{
    build_policy, ArcPolicy, CacheKey, CachePolicy, CacheStats, DecompCache, DecompCacheConfig,
    EvictionPolicy,
};
use automon_core::{CacheLookup, NeighborhoodBox};
use proptest::prelude::*;

fn key(id: usize) -> CacheKey {
    CacheKey {
        fn_id: 0,
        cell: vec![id as i64],
        radius_bucket: 0,
    }
}

/// Drives a policy the way `DecompCache` does, mirroring residency in
/// a naive oracle set and recording the eviction sequence.
struct Harness {
    policy: Box<dyn EvictionPolicy>,
    capacity: usize,
    /// The naive oracle: exactly the keys a store honoring the
    /// policy's eviction decisions would hold.
    resident: BTreeSet<CacheKey>,
    evictions: Vec<CacheKey>,
    hits: u64,
    misses: u64,
}

impl Harness {
    fn new(policy: CachePolicy, capacity: usize) -> Self {
        let cfg = DecompCacheConfig {
            policy,
            capacity,
            ..DecompCacheConfig::default()
        };
        Self {
            policy: build_policy(&cfg),
            capacity,
            resident: BTreeSet::new(),
            evictions: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, id: usize) {
        let k = key(id);
        if self.resident.contains(&k) {
            self.policy.on_hit(&k);
            self.hits += 1;
        } else {
            self.misses += 1;
            if let Some(victim) = self.policy.on_insert(&k) {
                assert!(
                    self.resident.remove(&victim),
                    "policy evicted non-resident {victim:?}"
                );
                self.evictions.push(victim);
            }
            self.resident.insert(k);
        }
        assert!(
            self.resident.len() <= self.capacity,
            "capacity exceeded: {} > {}",
            self.resident.len(),
            self.capacity
        );
    }

    fn remove(&mut self, id: usize) {
        let k = key(id);
        if self.resident.remove(&k) {
            self.policy.on_remove(&k);
        }
    }
}

const POLICIES: [CachePolicy; 3] = [CachePolicy::LruK, CachePolicy::Slru, CachePolicy::Arc];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity bound, victim residency, and hit/miss bookkeeping vs.
    /// the oracle, under a mixed access/invalidate workload.
    #[test]
    fn policies_respect_capacity_and_oracle(
        ops in proptest::collection::vec(0u64..1u64 << 32, 1..160),
        cap in 1usize..10,
    ) {
        for policy in POLICIES {
            let mut h = Harness::new(policy, cap);
            let key_space = 3 * cap;
            let mut accesses = 0u64;
            for &op in &ops {
                let id = (op as usize) % key_space;
                if op % 13 == 0 {
                    h.remove(id);
                } else {
                    h.access(id);
                    accesses += 1;
                }
            }
            // Every access was classified exactly once, consistently
            // with the oracle's residency at the time.
            prop_assert_eq!(h.hits + h.misses, accesses, "{:?}", policy);
            // Evicted keys left the oracle; whatever remains resident
            // was never double-evicted.
            prop_assert!(h.resident.len() <= cap, "{:?}", policy);
        }
    }

    /// Same operation sequence ⇒ same eviction sequence, hit counts,
    /// and final residency, for every policy.
    #[test]
    fn policies_are_deterministic(
        ops in proptest::collection::vec(0usize..48, 1..128),
        cap in 1usize..8,
    ) {
        for policy in POLICIES {
            let mut a = Harness::new(policy, cap);
            let mut b = Harness::new(policy, cap);
            for &id in &ops {
                a.access(id);
                b.access(id);
            }
            prop_assert_eq!(&a.evictions, &b.evictions, "{:?}", policy);
            prop_assert_eq!(a.hits, b.hits, "{:?}", policy);
            prop_assert_eq!(&a.resident, &b.resident, "{:?}", policy);
        }
    }

    /// ARC's structural invariants (paper §I.B) hold after every
    /// operation: |T1|+|T2| ≤ c, |T1|+|B1| ≤ c, total ≤ 2c, p ≤ c.
    #[test]
    fn arc_ghost_list_invariants(
        ops in proptest::collection::vec(0u64..1u64 << 32, 1..200),
        cap in 1usize..10,
    ) {
        let mut arc = ArcPolicy::new(cap);
        let mut resident: BTreeSet<CacheKey> = BTreeSet::new();
        let key_space = 4 * cap;
        for &op in &ops {
            let k = key((op as usize) % key_space);
            if resident.contains(&k) {
                arc.on_hit(&k);
            } else if op % 17 == 0 {
                if resident.remove(&k) {
                    arc.on_remove(&k);
                }
            } else {
                if let Some(v) = arc.on_insert(&k) {
                    prop_assert!(resident.remove(&v), "victim not resident");
                }
                resident.insert(k);
            }
            let (t1, t2, b1, b2, p) = arc.lists();
            prop_assert!(t1 + t2 <= cap, "|T1|+|T2| = {} > c = {cap}", t1 + t2);
            prop_assert!(t1 + b1 <= cap, "|T1|+|B1| = {} > c = {cap}", t1 + b1);
            prop_assert!(
                t1 + t2 + b1 + b2 <= 2 * cap,
                "total = {} > 2c = {}",
                t1 + t2 + b1 + b2,
                2 * cap
            );
            prop_assert!(p <= cap, "adaptation p = {p} > c = {cap}");
            prop_assert_eq!(t1 + t2, resident.len());
        }
    }

    /// The full `DecompCache` (not just the bare policy) keeps its
    /// stats consistent and its residency bounded under random
    /// lookup/insert interleavings, for every policy.
    #[test]
    fn decomp_cache_bookkeeping(
        ops in proptest::collection::vec(0usize..32, 1..96),
        cap in 1usize..8,
    ) {
        for policy in POLICIES {
            let mut cache = DecompCache::new(DecompCacheConfig {
                policy,
                capacity: cap,
                ..DecompCacheConfig::default()
            });
            let mut lookups = 0u64;
            for &id in &ops {
                let x0 = [id as f64];
                let b = NeighborhoodBox {
                    lo: vec![id as f64 - 0.5],
                    hi: vec![id as f64 + 0.5],
                };
                lookups += 1;
                match cache.lookup(7, &x0, 0.5, &b) {
                    CacheLookup::Exact(_) => {}
                    _ => {
                        // Simulate the miss path: decompose then insert.
                        let dec = dummy_dec();
                        cache.insert(7, &x0, 0.5, b, dec, None);
                    }
                }
                prop_assert!(cache.len() <= cap, "{:?}", policy);
            }
            let CacheStats { hits, near_hits, misses, insertions, evictions, .. } = cache.stats();
            prop_assert_eq!(hits + near_hits + misses, lookups, "{:?}", policy);
            prop_assert_eq!(insertions - evictions, cache.len() as u64, "{:?}", policy);
        }
    }
}

fn dummy_dec() -> automon_core::DcDecomposition {
    automon_core::DcDecomposition {
        kind: automon_core::AdcdKind::X,
        dc: automon_core::DcKind::ConvexDiff,
        curvature: automon_core::Curvature::Scalar(1.0),
        lambda_min_hat: -1.0,
        lambda_max_hat: 1.0,
        spectral: automon_core::SpectralStats::default(),
    }
}
