//! Protocol edge cases: single-node systems, lazy-sync escalation, LRU
//! ordering, faulty-constraint recovery, and adaptive neighborhood
//! growth.

use std::collections::VecDeque;
use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::{
    Coordinator, MonitorConfig, MonitoredFunction, NeighborhoodMode, Node, NodeMessage,
    ViolationKind,
};

struct Mean1;
impl ScalarFn for Mean1 {
    fn dim(&self) -> usize {
        1
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0]
    }
}

struct Sin1;
impl ScalarFn for Sin1 {
    fn dim(&self) -> usize {
        1
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0].sin()
    }
}

fn mean1() -> Arc<dyn MonitoredFunction> {
    Arc::new(AutoDiffFn::new(Mean1))
}

/// FIFO-route a message and all cascading replies; count messages.
fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) -> usize {
    let mut inbox = VecDeque::from([first]);
    let mut count = 0;
    while let Some(m) = inbox.pop_front() {
        count += 1;
        for out in coord.handle(m) {
            count += 1;
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
    count
}

fn init(coord: &mut Coordinator, nodes: &mut [Node], x: f64) {
    for i in 0..nodes.len() {
        if let Some(m) = nodes[i].update_data(vec![x]) {
            route(coord, nodes, m);
        }
    }
}

#[test]
fn single_node_system_works() {
    let f = mean1();
    let mut coord = Coordinator::new(f.clone(), 1, MonitorConfig::builder(0.1).build());
    let mut nodes = vec![Node::new(0, f)];
    init(&mut coord, &mut nodes, 0.0);
    assert_eq!(coord.stats().full_syncs, 1);
    // Drift past ε: with n = 1, every violation is a full sync.
    let m = nodes[0].update_data(vec![0.5]).expect("violation");
    route(&mut coord, &mut nodes, m);
    assert_eq!(coord.stats().full_syncs, 2);
    assert_eq!(coord.stats().lazy_syncs, 0);
    assert_eq!(coord.current_value(), Some(0.5));
}

#[test]
fn lazy_escalates_to_full_when_majority_cannot_balance() {
    // All nodes drift the same way: no balancing set can cancel it, so
    // lazy must escalate and the full sync must recenter.
    let f = mean1();
    let n = 5;
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);

    // Everyone moves to 1.0; first reporter triggers the cascade.
    let mut reports = Vec::new();
    for node in &mut nodes {
        if let Some(m) = node.update_data(vec![1.0]) {
            reports.push(m);
        }
    }
    let mut inbox: VecDeque<NodeMessage> = reports.into();
    while let Some(m) = inbox.pop_front() {
        for out in coord.handle(m) {
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
    assert_eq!(coord.stats().full_syncs, 2, "{:?}", coord.stats());
    assert_eq!(coord.current_value(), Some(1.0));
    // All nodes are quiet at the new reference.
    for node in &mut nodes {
        assert!(node.update_data(vec![1.0]).is_none());
    }
}

#[test]
fn faulty_constraints_force_full_sync() {
    // sin with a crippled eigen search under-estimates curvature; the
    // node-side sanity check reports FaultyConstraints and the
    // coordinator must resolve it with a full sync (never lazily).
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sin1));
    let cfg = MonitorConfig::builder(0.05)
        .neighborhood(NeighborhoodMode::Fixed(2.0))
        .eigen_search(automon_core::EigenSearch {
            probes: 0,
            nm_iters: 0,
            ..Default::default()
        })
        .build();
    let n = 3;
    let mut coord = Coordinator::new(f.clone(), n, cfg);
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    // Start near the inflection so center-only probing under-estimates.
    init(&mut coord, &mut nodes, 0.1);
    let full_before = coord.stats().full_syncs;

    // March the nodes along sin's curve until something trips.
    let mut faulty_seen = false;
    for t in 1..200 {
        let x = 0.1 + t as f64 * 0.02;
        for i in 0..n {
            if let Some(m) = nodes[i].update_data(vec![x]) {
                if matches!(
                    m,
                    NodeMessage::Violation {
                        kind: ViolationKind::FaultyConstraints,
                        ..
                    }
                ) {
                    faulty_seen = true;
                }
                route(&mut coord, &mut nodes, m);
            }
        }
    }
    // Whether or not a faulty report occurred on this trajectory, the
    // coordinator must have kept the estimate sane via full syncs.
    assert!(coord.stats().full_syncs > full_before);
    if faulty_seen {
        assert!(coord.stats().faulty_reports > 0);
    }
    let estimate = coord.current_value().expect("initialized");
    let truth = (0.1 + 199.0 * 0.02).sin();
    assert!((estimate - truth).abs() < 0.5, "estimate {estimate} truth {truth}");
}

#[test]
fn adaptive_r_doubles_under_neighborhood_pressure() {
    // Rapidly drifting data with a microscopic fixed starting radius:
    // the §3.6 heuristic must double r (several times) once 5n
    // consecutive neighborhood violations accumulate.
    struct Quad1;
    impl ScalarFn for Quad1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0] * x[0] * x[0] // non-constant Hessian → ADCD-X + B
        }
    }
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Quad1));
    let cfg = MonitorConfig::builder(5.0)
        .neighborhood(NeighborhoodMode::Adaptive(1e-6))
        .build();
    let mut coord = Coordinator::new(f.clone(), 2, cfg);
    let mut nodes: Vec<Node> = (0..2).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);
    assert_eq!(coord.neighborhood_r(), 1e-6);

    for t in 1..200 {
        let x = t as f64 * 0.001; // leaves a 1e-6 box every round
        for i in 0..2 {
            if let Some(m) = nodes[i].update_data(vec![x]) {
                route(&mut coord, &mut nodes, m);
            }
        }
    }
    assert!(
        coord.stats().r_doublings > 0,
        "adaptive growth never fired: {:?}",
        coord.stats()
    );
    assert!(coord.neighborhood_r() > 1e-6);
}

#[test]
fn lru_pulls_least_recently_contacted_node_first() {
    let f = mean1();
    let n = 3;
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    // Register in order 0, 1, 2 → node 0 is least recently contacted.
    init(&mut coord, &mut nodes, 0.0);

    // Node 2 violates; the coordinator's first pull must target node 0.
    let m = nodes[2].update_data(vec![1.0]).expect("violation");
    let outs = coord.handle(m);
    assert_eq!(outs.len(), 1);
    assert_eq!(outs[0].to, 0, "expected LRU node 0, got {}", outs[0].to);
}

#[test]
fn messages_quiesce_after_every_resolution() {
    // Liveness: any single-node violation cascade terminates and leaves
    // all nodes unpending.
    let f = mean1();
    let n = 4;
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.2).build());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);
    for t in 1..50 {
        let x = (t as f64 * 0.7).sin();
        for i in 0..n {
            if let Some(m) = nodes[i].update_data(vec![x + 0.01 * i as f64]) {
                let count = route(&mut coord, &mut nodes, m);
                assert!(count < 100, "cascade failed to quiesce promptly");
            }
        }
        assert!(nodes.iter().all(|nd| !nd.is_pending()), "round {t}");
    }
}

#[test]
fn snapshot_restore_failover_round_trip() {
    // Run a while, snapshot, "crash", restore a fresh coordinator from
    // the (serialized) snapshot, re-sync the nodes, and keep monitoring.
    let f = mean1();
    let n = 3;
    let cfg = MonitorConfig::builder(0.1).build();
    let mut coord = Coordinator::new(f.clone(), n, cfg.clone());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);
    let m = nodes[0].update_data(vec![0.5]).expect("violation");
    route(&mut coord, &mut nodes, m);
    let value_before = coord.current_value();

    // Snapshot is only offered while quiescent.
    let snap = coord.snapshot().expect("quiescent coordinator snapshots");
    let json = serde_json::to_string(&snap).unwrap();
    drop(coord); // the crash

    let snap: automon_core::CoordinatorSnapshot = serde_json::from_str(&json).unwrap();
    let mut coord = Coordinator::restore(f.clone(), cfg, snap);
    assert_eq!(coord.current_value(), value_before);
    // Re-install constraints on (possibly restarted) nodes.
    let mut fresh: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    for out in coord.resync_messages() {
        assert!(fresh[out.to].handle(out.msg).is_none());
    }
    // The revived system keeps monitoring: restarted nodes first feed
    // their current data (silent near their last values)…
    assert!(fresh[0].update_data(vec![0.5]).is_none());
    assert!(fresh[1].update_data(vec![0.05]).is_none());
    let m = fresh[2].update_data(vec![5.0]).expect("violation");
    route(&mut coord, &mut fresh, m);
    assert!(coord.current_value().unwrap() > value_before.unwrap());
}

#[test]
fn snapshot_refused_mid_sync() {
    let f = mean1();
    let mut coord = Coordinator::new(f.clone(), 3, MonitorConfig::builder(0.1).build());
    let mut nodes: Vec<Node> = (0..3).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);
    // Trigger a violation but do NOT deliver the coordinator's pulls:
    // the coordinator is now mid-lazy-sync.
    let m = nodes[0].update_data(vec![9.0]).expect("violation");
    let outs = coord.handle(m);
    assert!(!outs.is_empty());
    assert!(coord.snapshot().is_none(), "mid-sync snapshot must be refused");
}

#[test]
fn observer_sees_sync_events() {
    use automon_core::CoordinatorEvent;
    use std::sync::{Arc as SArc, Mutex};

    let f = mean1();
    let n = 2;
    let events: SArc<Mutex<Vec<CoordinatorEvent>>> = SArc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
    coord.set_observer(Box::new(move |e| sink.lock().unwrap().push(e.clone())));
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    init(&mut coord, &mut nodes, 0.0);

    // Opposite drifts → one lazy sync; common drift → full sync.
    let m0 = nodes[0].update_data(vec![0.5]).expect("violation");
    assert!(nodes[1].update_data(vec![-0.5]).is_some());
    route(&mut coord, &mut nodes, m0);
    // Re-arm node 1 (its report was absorbed by the lazy resolution).
    let m = nodes[0].update_data(vec![5.0]).expect("violation");
    route(&mut coord, &mut nodes, m);

    let log = events.lock().unwrap();
    assert!(matches!(
        log.first(),
        Some(CoordinatorEvent::FullSync { value, .. }) if *value == 0.0
    ), "{log:?}");
    assert!(
        log.iter().any(|e| matches!(e, CoordinatorEvent::LazySync { .. })),
        "{log:?}"
    );
    let full_syncs = log
        .iter()
        .filter(|e| matches!(e, CoordinatorEvent::FullSync { .. }))
        .count();
    assert!(full_syncs >= 2, "{log:?}");
}

#[test]
fn constant_hessian_syncs_reuse_curvature_after_first() {
    use automon_core::CoordinatorMessage;

    // Quadratic f = x² (constant Hessian): the second and later full
    // syncs must ship the matrix-free cached form.
    struct Sq;
    impl ScalarFn for Sq {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0] * x[0]
        }
    }
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sq));
    let mut coord = Coordinator::new(f.clone(), 1, MonitorConfig::builder(0.1).build());
    let mut node = Node::new(0, f);

    // First sync: full constraints.
    let m = node.update_data(vec![0.0]).unwrap();
    let outs = coord.handle(m);
    assert!(matches!(outs[0].msg, CoordinatorMessage::NewConstraints { .. }));
    assert!(node.handle(outs[0].msg.clone()).is_none());

    // Violation → second sync: cached constraints.
    let m = node.update_data(vec![1.0]).expect("violation");
    let outs = coord.handle(m);
    assert!(
        matches!(outs[0].msg, CoordinatorMessage::NewConstraintsCached { .. }),
        "{:?}",
        outs[0].msg
    );
    assert!(node.handle(outs[0].msg.clone()).is_none());
    // The node's zone carries the reused curvature and new reference.
    let z = node.zone().unwrap();
    assert_eq!(z.f0, 1.0);
    // Monitoring continues correctly on the reused curvature.
    assert!(node.update_data(vec![1.01]).is_none());
    assert!(node.update_data(vec![2.0]).is_some());
}

#[test]
fn lazy_growth_prefers_unpressured_nodes() {
    use automon_core::CoordinatorMessage;

    // The first outbound after an unbalanceable violation is the
    // RequestLocalVector to the lazy-sync growth pick, so it exposes
    // the growth policy directly.
    let first_pick = |flag: &dyn Fn(&mut Coordinator)| -> usize {
        let f = mean1();
        let n = 4;
        let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
        let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
        init(&mut coord, &mut nodes, 0.0);
        flag(&mut coord);
        let m = nodes[3].update_data(vec![0.5]).expect("violation");
        let outs = coord.handle(m);
        assert!(
            matches!(outs[0].msg, CoordinatorMessage::RequestLocalVector { .. }),
            "expected a lazy pull, got {:?}",
            outs[0].msg
        );
        outs[0].to
    };

    // Baseline: plain LRU pick with no flags set.
    let baseline = first_pick(&|_| {});
    assert_ne!(baseline, 3, "reporter is already in the set");

    // Flag the baseline pick: growth must route around it.
    let rerouted = first_pick(&|c: &mut Coordinator| c.set_backpressured(baseline, true));
    assert_ne!(rerouted, baseline, "backpressured node must be passed over");
    assert_ne!(rerouted, 3);

    // Flag every candidate: growth falls back to plain LRU rather than
    // stalling the sync.
    let cornered = first_pick(&|c: &mut Coordinator| {
        for i in 0..3 {
            c.set_backpressured(i, true);
        }
    });
    assert_eq!(cornered, baseline, "all-pressured falls back to LRU order");

    // Clearing the flag restores the baseline order.
    let cleared = first_pick(&|c: &mut Coordinator| {
        c.set_backpressured(baseline, true);
        c.set_backpressured(baseline, false);
    });
    assert_eq!(cleared, baseline);
}
