//! Snapshot/restore round-trip property: cutting a coordinator's life
//! at ANY quiescent point with `restore(snapshot())` must be
//! undetectable — the subsequent outbound trace and the final protocol
//! state are byte-identical to the uninterrupted run, under every
//! `Parallelism` setting. This is the fidelity contract the durable
//! store's crash recovery builds on (docs/DURABILITY.md).

use std::collections::VecDeque;
use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::{
    Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage, Parallelism,
};
use proptest::prelude::*;

/// A genuinely curved dim-2 function (x·y), so full syncs ship real
/// curvature and the §4.4 cached-install path (`node_has_curvature`)
/// is exercised by the round trip.
struct Prod2;
impl ScalarFn for Prod2 {
    fn dim(&self) -> usize {
        2
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0] * x[1]
    }
}

fn prod2() -> Arc<dyn MonitoredFunction> {
    Arc::new(AutoDiffFn::new(Prod2))
}

fn cfg(parallelism: Parallelism) -> MonitorConfig {
    MonitorConfig::builder(0.5).parallelism(parallelism).build()
}

/// Feed one data update through the protocol, FIFO-routing every
/// cascading message, appending a line per coordinator outbound to
/// `trace` (when given).
fn step(
    coord: &mut Coordinator,
    nodes: &mut [Node],
    node: usize,
    x: Vec<f64>,
    trace: Option<&mut Vec<String>>,
) {
    let mut sink = Vec::new();
    let trace = trace.unwrap_or(&mut sink);
    let mut inbox: VecDeque<NodeMessage> = VecDeque::new();
    if let Some(m) = nodes[node].update_data(x) {
        inbox.push_back(m);
    }
    while let Some(m) = inbox.pop_front() {
        for out in coord.handle(m) {
            trace.push(format!("{out:?}"));
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
}

/// Run `updates` over a fresh fleet, recording the outbound trace from
/// update index `record_from` onward. When `restore_at` is set, the
/// coordinator is snapshot + restored right before that update.
/// Returns the recorded trace plus the final protocol snapshot.
fn run(
    parallelism: Parallelism,
    n: usize,
    updates: &[(usize, Vec<f64>)],
    record_from: usize,
    restore_at: Option<usize>,
) -> (Vec<String>, automon_core::CoordinatorSnapshot) {
    let f = prod2();
    let mut coord = Coordinator::new(f.clone(), n, cfg(parallelism));
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    let mut trace = Vec::new();
    for (i, (node, x)) in updates.iter().enumerate() {
        if restore_at == Some(i) {
            // Every update boundary is quiescent (routing drains the
            // cascade), so the snapshot must exist.
            let snap = coord.snapshot().expect("quiescent between updates");
            coord = Coordinator::restore(f.clone(), cfg(parallelism), snap);
        }
        let rec = (i >= record_from).then_some(&mut trace);
        step(&mut coord, &mut nodes, *node, x.clone(), rec);
    }
    let final_snap = coord.snapshot().expect("quiescent at end");
    (trace, final_snap)
}

/// Decode one raw op into an update: target node plus a dim-2 vector
/// on a coarse grid (exact in f64; never produces -0.0, which JSON
/// round-trips differently).
fn decode_op(op: u64, n: usize) -> (usize, Vec<f64>) {
    let node = (op % n as u64) as usize;
    let a = ((op >> 8) % 17) as i32 - 8;
    let b = ((op >> 16) % 17) as i32 - 8;
    (node, vec![f64::from(a) * 0.25, f64::from(b) * 0.25])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restore_mid_history_is_undetectable(
        n in 2usize..=4,
        ops in proptest::collection::vec(0u64..1u64 << 32, 4..24),
        cut_sel in 0u64..1u64 << 32,
    ) {
        let seq: Vec<(usize, Vec<f64>)> =
            ops.iter().map(|&op| decode_op(op, n)).collect();
        let cut = (cut_sel as usize) % seq.len();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Auto] {
            // Control: uninterrupted run, trace recorded from `cut` so
            // the comparison covers identical ground.
            let (control_suffix, control_final) = run(parallelism, n, &seq, cut, None);
            let (restored_suffix, restored_final) = run(parallelism, n, &seq, cut, Some(cut));

            prop_assert_eq!(
                &restored_suffix,
                &control_suffix,
                "trace diverged after restore at update {} ({:?})",
                cut,
                parallelism
            );
            prop_assert_eq!(
                &restored_final,
                &control_final,
                "final state diverged after restore at update {} ({:?})",
                cut,
                parallelism
            );
        }
    }

    #[test]
    fn snapshot_json_round_trip_is_lossless(
        n in 2usize..=4,
        ops in proptest::collection::vec(0u64..1u64 << 32, 4..24),
    ) {
        let seq: Vec<(usize, Vec<f64>)> =
            ops.iter().map(|&op| decode_op(op, n)).collect();
        let f = prod2();
        let mut coord = Coordinator::new(f.clone(), n, cfg(Parallelism::Sequential));
        let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
        for (node, x) in &seq {
            step(&mut coord, &mut nodes, *node, x.clone(), None);
        }
        let snap = coord.snapshot().expect("quiescent");
        // Persisting through serde (what the durable store does) must
        // reproduce the exact same snapshot, floats included.
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: automon_core::CoordinatorSnapshot =
            serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(
            serde_json::to_string(&back).expect("serializes"),
            json,
            "re-encoding must be byte-stable"
        );
    }
}
