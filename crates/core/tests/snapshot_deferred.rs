//! Deferred-snapshot semantics: a checkpoint request that lands while
//! a violation resolution is in flight must not be silently skipped —
//! it is remembered and satisfied at the next quiescent point, and the
//! `automon_coord_snapshot_{taken,deferred}_total` counter pair
//! accounts for both outcomes.

use std::collections::VecDeque;
use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::{Coordinator, MonitorConfig, MonitoredFunction, Node, NodeMessage, Outbound};
use automon_obs::{parse_prometheus, value_of, Telemetry};

struct Mean1;
impl ScalarFn for Mean1 {
    fn dim(&self) -> usize {
        1
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0]
    }
}

fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) {
    let mut inbox = VecDeque::from([first]);
    while let Some(m) = inbox.pop_front() {
        for out in coord.handle(m) {
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
}

/// Deliver `outs` to the nodes and FIFO-route every cascading message.
fn route_outbounds(coord: &mut Coordinator, nodes: &mut [Node], outs: Vec<Outbound>) {
    let mut inbox: VecDeque<NodeMessage> = VecDeque::new();
    for out in outs {
        if let Some(reply) = nodes[out.to].handle(out.msg) {
            inbox.push_back(reply);
        }
    }
    while let Some(m) = inbox.pop_front() {
        for out in coord.handle(m) {
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
}

#[test]
fn mid_sync_snapshot_defers_then_lands_at_quiescence() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Mean1));
    let n = 3;
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
    let tel = Telemetry::enabled();
    coord.set_telemetry(tel.clone());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    for i in 0..n {
        if let Some(m) = nodes[i].update_data(vec![0.0]) {
            route(&mut coord, &mut nodes, m);
        }
    }

    // Quiescent: a snapshot request succeeds immediately.
    assert!(coord.request_snapshot().is_some());
    assert!(!coord.snapshot_pending());

    // Drive node 0 past ε and hand its report to the coordinator, but
    // do NOT route the resulting pulls — the sync stays open.
    let report = nodes[0].update_data(vec![1.0]).expect("violation");
    let pulls = coord.handle(report);
    assert!(!pulls.is_empty(), "resolution must pull peers");
    assert!(coord.is_resolving());

    // Mid-sync: the request is deferred, not dropped.
    assert!(coord.request_snapshot().is_none());
    assert!(coord.snapshot_pending());
    // Retrying while still mid-sync yields nothing.
    assert!(coord.take_deferred_snapshot().is_none());
    assert!(coord.snapshot_pending());

    // Complete the sync; the deferred request now lands exactly once.
    route_outbounds(&mut coord, &mut nodes, pulls);
    assert!(!coord.is_resolving());
    let snap = coord.take_deferred_snapshot().expect("deferred snapshot retried");
    assert_eq!(snap.n, n);
    assert!(!coord.snapshot_pending());
    assert!(coord.take_deferred_snapshot().is_none(), "request satisfied, not repeatable");

    let text = tel.prometheus();
    let samples = parse_prometheus(&text).expect("well-formed exposition");
    assert_eq!(
        value_of(&samples, "automon_coord_snapshot_taken_total", &[]),
        Some(2.0),
        "one immediate + one deferred-then-taken: {text}"
    );
    assert_eq!(
        value_of(&samples, "automon_coord_snapshot_deferred_total", &[]),
        Some(1.0),
        "exactly one deferral: {text}"
    );
}

#[test]
fn repeated_mid_sync_requests_coalesce() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Mean1));
    let n = 2;
    let mut coord = Coordinator::new(f.clone(), n, MonitorConfig::builder(0.1).build());
    let tel = Telemetry::enabled();
    coord.set_telemetry(tel.clone());
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    for i in 0..n {
        if let Some(m) = nodes[i].update_data(vec![0.0]) {
            route(&mut coord, &mut nodes, m);
        }
    }
    let report = nodes[1].update_data(vec![1.0]).expect("violation");
    let pulls = coord.handle(report);
    // Several checkpoint ticks elapse while the sync is open: they
    // coalesce into one pending request (each counted as deferred).
    for _ in 0..3 {
        assert!(coord.request_snapshot().is_none());
    }
    route_outbounds(&mut coord, &mut nodes, pulls);
    assert!(coord.take_deferred_snapshot().is_some());
    assert!(coord.take_deferred_snapshot().is_none());

    let samples = parse_prometheus(&tel.prometheus()).expect("well-formed exposition");
    assert_eq!(
        value_of(&samples, "automon_coord_snapshot_deferred_total", &[]),
        Some(3.0)
    );
    assert_eq!(
        value_of(&samples, "automon_coord_snapshot_taken_total", &[]),
        Some(1.0)
    );
}
