//! The observability contract under the `Parallelism` knob: metrics
//! touched from `par_map_with` worker threads are commutative atomics,
//! so the final registry state — counters, histogram snapshot, rendered
//! exposition — is identical whether the map ran sequentially or on any
//! number of workers.

use automon_core::par::par_map_with;
use automon_core::Parallelism;
use automon_obs::Telemetry;
use proptest::prelude::*;

const BOUNDS: &[f64] = &[0.1, 1.0, 10.0, 100.0];

/// Run the instrumented map under `par` and return the rendered
/// exposition (registry state is the only output that matters).
fn run_instrumented(samples: &[f64], par: Parallelism) -> String {
    let tel = Telemetry::enabled();
    let observed = tel.counter("work_items_total", "Items processed");
    let hist = tel.histogram("work_value", "Observed values", BOUNDS);
    par_map_with(
        samples,
        par.workers(),
        || (observed.clone(), hist.clone()),
        |(c, h), _, &v| {
            c.inc();
            h.observe(v);
        },
    );
    tel.prometheus()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential and every thread count land on byte-identical
    /// exposition output.
    #[test]
    fn registry_state_is_parallelism_invariant(
        samples in proptest::collection::vec(-5.0f64..500.0, 0..128usize),
        workers in 2usize..9usize,
    ) {
        let sequential = run_instrumented(&samples, Parallelism::Sequential);
        let threaded = run_instrumented(&samples, Parallelism::Threads(workers));
        prop_assert_eq!(threaded, sequential);
    }
}
