//! Decomposition-cache observability round trip: drive a coordinator
//! whose reference point recurs bitwise, render the registry to
//! Prometheus exposition text, parse it back, and check the
//! `automon_coord_decomp_cache_*` counters and the per-policy gauge.
//! Also checks the warm-start contract: Ritz-seeded decompositions
//! agree with cold ones to tight tolerance.

use std::collections::VecDeque;
use std::sync::Arc;

use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
use automon_core::adcd::decompose_with_seeds;
use automon_core::{
    CachePolicy, Coordinator, DecompCacheConfig, MonitorConfig, MonitoredFunction,
    NeighborhoodBox, NeighborhoodMode, Node, NodeMessage,
};
use automon_obs::{parse_prometheus, value_of, Telemetry};

struct Sin1;
impl ScalarFn for Sin1 {
    fn dim(&self) -> usize {
        1
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0].sin()
    }
}

/// Non-quadratic in three dimensions, so ADCD-X runs the eigen search.
struct Wavy3;
impl ScalarFn for Wavy3 {
    fn dim(&self) -> usize {
        3
    }
    fn call<S: Scalar>(&self, x: &[S]) -> S {
        x[0].sin() * x[1].cos() + x[2] * x[2] * x[0] + x[1] * x[2]
    }
}

fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) {
    let mut inbox = VecDeque::from([first]);
    while let Some(m) = inbox.pop_front() {
        for out in coord.handle(m) {
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push_back(reply);
            }
        }
    }
}

#[test]
fn cache_counters_round_trip_through_exposition() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sin1));
    let cfg = MonitorConfig::builder(0.05)
        .neighborhood(NeighborhoodMode::Fixed(1.0))
        .decomp_cache(DecompCacheConfig::with_policy(CachePolicy::Slru))
        .build();
    let mut coord = Coordinator::new(f.clone(), 1, cfg);
    let tel = Telemetry::enabled();
    coord.set_telemetry(tel.clone());
    let mut nodes = vec![Node::new(0, f)];

    // A single node oscillating between two exact values: every
    // violation is a full sync, and after the first lap each reference
    // point recurs bitwise — exact cache hits.
    let m = nodes[0].update_data(vec![0.0]).expect("initial report");
    route(&mut coord, &mut nodes, m);
    for _ in 0..3 {
        for v in [0.8, 0.0] {
            let m = nodes[0].update_data(vec![v]).expect("violation");
            route(&mut coord, &mut nodes, m);
        }
    }
    assert!(coord.stats().full_syncs >= 4, "{:?}", coord.stats());

    let text = tel.prometheus();
    let samples = parse_prometheus(&text).expect("well-formed exposition");
    let hits = value_of(&samples, "automon_coord_decomp_cache_hits_total", &[])
        .expect("hits counter exported");
    let misses = value_of(&samples, "automon_coord_decomp_cache_misses_total", &[])
        .expect("misses counter exported");
    assert!(hits >= 1.0, "recurring x0 must produce exact hits: {text}");
    assert!(misses >= 2.0, "both reference points miss once: {text}");
    assert_eq!(
        value_of(&samples, "automon_coord_decomp_cache_evictions_total", &[]),
        Some(0.0),
        "capacity 64 never evicts here"
    );
    let policy_gauge = value_of(
        &samples,
        "automon_coord_decomp_cache_policy",
        &[("policy", "slru")],
    );
    assert_eq!(policy_gauge, Some(1.0), "policy gauge with label: {text}");
    let adaptation = value_of(
        &samples,
        "automon_coord_decomp_cache_adaptation",
        &[("policy", "slru")],
    );
    assert!(adaptation.is_some(), "adaptation gauge exported: {text}");
}

#[test]
fn cache_metrics_absent_when_cache_disabled_gauge_stays_zero() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Sin1));
    let mut coord = Coordinator::new(f.clone(), 1, MonitorConfig::builder(0.05).build());
    let tel = Telemetry::enabled();
    coord.set_telemetry(tel.clone());
    let mut nodes = vec![Node::new(0, f)];
    let m = nodes[0].update_data(vec![0.0]).expect("initial report");
    route(&mut coord, &mut nodes, m);

    let samples = parse_prometheus(&tel.prometheus()).expect("well-formed exposition");
    // The counters are registered unconditionally (stable exposition
    // schema) but must stay at zero without a cache.
    assert_eq!(
        value_of(&samples, "automon_coord_decomp_cache_hits_total", &[]),
        Some(0.0)
    );
    assert_eq!(
        value_of(&samples, "automon_coord_decomp_cache_misses_total", &[]),
        Some(0.0)
    );
    // No policy ⇒ no policy gauge at all.
    assert_eq!(
        value_of(&samples, "automon_coord_decomp_cache_policy", &[("policy", "slru")]),
        None
    );
}

#[test]
fn warm_start_seeds_match_cold_decomposition() {
    let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Wavy3));
    let cfg = MonitorConfig::builder(0.05).build();
    let x0 = [0.3, -0.2, 0.5];
    let b = NeighborhoodBox {
        lo: vec![-0.7, -1.2, -0.5],
        hi: vec![1.3, 0.8, 1.5],
    };

    let (cold, seeds) = decompose_with_seeds(f.as_ref(), &x0, Some(&b), &cfg, None);
    let seeds = seeds.expect("ADCD-X must surface Ritz seeds");
    assert_eq!(seeds.min.len(), 3);
    assert_eq!(seeds.max.len(), 3);

    // Seeding with the converged Ritz vectors from the same problem
    // must land on the same extreme-eigenvalue estimates.
    let (warm, _) = decompose_with_seeds(f.as_ref(), &x0, Some(&b), &cfg, Some(&seeds));
    assert!(
        (warm.lambda_min_hat - cold.lambda_min_hat).abs() <= 1e-6,
        "min: warm {} vs cold {}",
        warm.lambda_min_hat,
        cold.lambda_min_hat
    );
    assert!(
        (warm.lambda_max_hat - cold.lambda_max_hat).abs() <= 1e-6,
        "max: warm {} vs cold {}",
        warm.lambda_max_hat,
        cold.lambda_max_hat
    );
    assert!(
        warm.spectral.lanczos_iterations <= cold.spectral.lanczos_iterations,
        "warm start must not iterate more: warm {} vs cold {}",
        warm.spectral.lanczos_iterations,
        cold.spectral.lanczos_iterations
    );
}
