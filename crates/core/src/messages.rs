//! Protocol messages exchanged between nodes and the coordinator.
//!
//! AutoMon is transport-agnostic (paper §3.8): the library produces and
//! consumes message *values*, and the application moves them over a fabric
//! of its choice. All message types are `serde`-serializable; the
//! `automon-net` crate provides a compact binary codec and an in-process
//! fabric with byte accounting.

use automon_obs::SpanId;
use serde::{Deserialize, Serialize};

use crate::ledger::CommCause;
use crate::safezone::{DcKind, NeighborhoodBox, SafeZone, ViolationKind};

/// Node identifier, dense in `0..n`.
pub type NodeId = usize;

/// Sync-round epoch. The coordinator bumps it on every completed full
/// sync; both sides stamp every message with their current epoch so a
/// frame delayed across a re-sync is recognized as stale and discarded
/// instead of corrupting protocol state (lossy-transport hardening).
pub type Epoch = u64;

/// Message from a node to the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeMessage {
    /// A local-constraint violation, carrying the current raw local
    /// vector so the coordinator needs no follow-up round trip.
    Violation {
        /// Reporting node.
        node: NodeId,
        /// What was violated.
        kind: ViolationKind,
        /// The node's raw (un-slacked) local vector.
        local_vector: Vec<f64>,
        /// The constraint epoch the node was monitoring under.
        epoch: Epoch,
    },
    /// Reply to [`CoordinatorMessage::RequestLocalVector`].
    LocalVector {
        /// Replying node.
        node: NodeId,
        /// The node's raw local vector.
        vector: Vec<f64>,
        /// The constraint epoch the node holds.
        epoch: Epoch,
    },
}

impl NodeMessage {
    /// The sending node.
    pub fn sender(&self) -> NodeId {
        match *self {
            NodeMessage::Violation { node, .. } | NodeMessage::LocalVector { node, .. } => node,
        }
    }

    /// The epoch stamped on the message.
    pub fn epoch(&self) -> Epoch {
        match *self {
            NodeMessage::Violation { epoch, .. } | NodeMessage::LocalVector { epoch, .. } => epoch,
        }
    }
}

/// The curvature-free part of a safe zone: everything a full sync
/// changes when the DC decomposition itself is unchanged (constant
/// Hessian ⇒ constant penalty, recomputed never — paper §4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneUpdate {
    /// New reference point `x0`.
    pub x0: Vec<f64>,
    /// `f(x0)`.
    pub f0: f64,
    /// `∇f(x0)`.
    pub grad0: Vec<f64>,
    /// Lower threshold.
    pub l: f64,
    /// Upper threshold.
    pub u: f64,
    /// DC representation in force.
    pub dc: DcKind,
    /// Neighborhood box, if restricted.
    pub neighborhood: Option<NeighborhoodBox>,
}

/// Message from the coordinator to one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorMessage {
    /// Pull the node's current local vector (lazy or full sync).
    RequestLocalVector {
        /// The coordinator's current epoch.
        epoch: Epoch,
    },
    /// Install new local constraints and this node's slack vector
    /// (full sync).
    NewConstraints {
        /// The safe zone to monitor.
        zone: SafeZone,
        /// This node's slack `sᵢ`.
        slack: Vec<f64>,
        /// The epoch these constraints open.
        epoch: Epoch,
    },
    /// Full-sync constraints whose curvature penalty is byte-identical
    /// to the node's current one (always the case for ADCD-E after the
    /// first sync): the node reuses its stored curvature, and the
    /// O(d²) matrix payload never crosses the wire again (§4.4, §4.7).
    NewConstraintsCached {
        /// The curvature-free zone fields.
        update: ZoneUpdate,
        /// This node's slack `sᵢ`.
        slack: Vec<f64>,
        /// The epoch these constraints open.
        epoch: Epoch,
    },
    /// Rebalanced slack for a node in the balancing set (lazy sync).
    SlackUpdate {
        /// This node's new slack `sᵢ`.
        slack: Vec<f64>,
        /// The epoch the rebalance belongs to (lazy syncs do not bump it).
        epoch: Epoch,
    },
}

impl CoordinatorMessage {
    /// The epoch stamped on the message.
    pub fn epoch(&self) -> Epoch {
        match *self {
            CoordinatorMessage::RequestLocalVector { epoch }
            | CoordinatorMessage::NewConstraints { epoch, .. }
            | CoordinatorMessage::NewConstraintsCached { epoch, .. }
            | CoordinatorMessage::SlackUpdate { epoch, .. } => epoch,
        }
    }
}

/// An addressed coordinator message.
///
/// Besides the destination and payload, an outbound carries accounting
/// metadata that never hits the wire body: the protocol [`CommCause`]
/// the frame's bytes are charged to in the communication ledger, and the
/// coordinator-side span the frame's trace context propagates (the
/// handler span that produced it, or [`SpanId::NONE`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub msg: CoordinatorMessage,
    /// Protocol cause this frame's bytes are charged to.
    pub cause: CommCause,
    /// Span to propagate in the frame header's trace context.
    pub span: SpanId,
}

impl Outbound {
    /// An outbound with no span context.
    pub fn new(to: NodeId, msg: CoordinatorMessage, cause: CommCause) -> Self {
        Self {
            to,
            msg,
            cause,
            span: SpanId::NONE,
        }
    }

    /// Attach the producing span's id for wire propagation.
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }
}

/// Inter-tier message between a leaf coordinator and the root
/// coordinator of a sharded fleet (DESIGN.md §3.14).
///
/// A leaf coordinator is simultaneously a *node* of the root's
/// monitoring group: it holds a root-assigned safe zone over its shard's
/// partial mean and stays silent while that zone holds. The two frame
/// kinds here are the traffic that crosses the tier boundary *besides*
/// the ordinary [`CoordinatorMessage`]/[`NodeMessage`] frames the root's
/// own sync protocol reuses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TierMessage {
    /// Leaf → root: the shard's refreshed weighted partial mean violated
    /// the root-assigned constraints. Carries everything the plain
    /// violation frame cannot: the shard's population weight, so the
    /// root can re-derive the composition scale after rebalances.
    LeafReport {
        /// Reporting leaf (the root-tier node id).
        leaf: NodeId,
        /// What the partial-mean stream violated.
        kind: ViolationKind,
        /// The weighted partial mean (already composition-scaled).
        partial: Vec<f64>,
        /// Streams currently alive in the shard (the composition weight).
        weight: u64,
        /// Root-tier epoch the leaf was monitoring under.
        epoch: Epoch,
    },
    /// Root → leaf: adopt the listed streams from a crashed leaf. The
    /// receiving leaf rebuilds its coordinator over the enlarged shard
    /// and re-registers every member (an intra-shard full sync).
    Rebalance {
        /// Receiving leaf.
        leaf: NodeId,
        /// Global stream ids the leaf adopts.
        adopted: Vec<NodeId>,
        /// Root-tier epoch the rebalance belongs to.
        epoch: Epoch,
    },
}

impl TierMessage {
    /// The leaf the frame concerns (sender for reports, destination for
    /// rebalance directives).
    pub fn leaf(&self) -> NodeId {
        match *self {
            TierMessage::LeafReport { leaf, .. } | TierMessage::Rebalance { leaf, .. } => leaf,
        }
    }

    /// The root-tier epoch stamped on the message.
    pub fn epoch(&self) -> Epoch {
        match *self {
            TierMessage::LeafReport { epoch, .. } | TierMessage::Rebalance { epoch, .. } => epoch,
        }
    }
}

/// Addressing helper for transports that support broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipient {
    /// A single node.
    Node(NodeId),
    /// Every node.
    Broadcast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_extraction() {
        let m = NodeMessage::Violation {
            node: 3,
            kind: ViolationKind::SafeZone,
            local_vector: vec![1.0],
            epoch: 2,
        };
        assert_eq!(m.sender(), 3);
        assert_eq!(m.epoch(), 2);
        let m = NodeMessage::LocalVector {
            node: 7,
            vector: vec![],
            epoch: 0,
        };
        assert_eq!(m.sender(), 7);
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let m = CoordinatorMessage::SlackUpdate {
            slack: vec![0.5, -0.5],
            epoch: 9,
        };
        assert_eq!(m.epoch(), 9);
        let s = serde_json::to_string(&m).unwrap();
        let back: CoordinatorMessage = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
