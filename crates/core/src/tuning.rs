//! Neighborhood-size tuning (paper §3.6, Algorithm 2).
//!
//! The optimal neighborhood size `r*` balances neighborhood violations
//! (too small a box) against safe-zone violations (too extreme eigenvalues
//! from too big a box). [`tune_neighborhood_size`] reproduces Algorithm 2:
//! bracket the interesting range by halving/doubling, then grid-search ten
//! radii and keep the one with the fewest total violations. Tuning runs on
//! a recorded prefix of the streams via [`replay`], a synchronous
//! in-process execution of the full protocol.

use std::sync::Arc;

use crate::config::{MonitorConfig, NeighborhoodMode};
use crate::coordinator::Coordinator;
use crate::messages::NodeMessage;
use crate::node::Node;
use crate::MonitoredFunction;

/// Violation/communication counts from one [`replay`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayCounts {
    /// Neighborhood violations reported.
    pub neighborhood: usize,
    /// Safe-zone violations reported.
    pub safezone: usize,
    /// Faulty-constraint reports.
    pub faulty: usize,
    /// Full syncs performed (including the initial one).
    pub full_syncs: usize,
    /// Lazy syncs resolved.
    pub lazy_syncs: usize,
    /// Total protocol messages exchanged (both directions).
    pub messages: usize,
}

impl ReplayCounts {
    /// Neighborhood + safe-zone violations (the quantity Algorithm 2
    /// minimizes).
    pub fn total_violations(&self) -> usize {
        self.neighborhood + self.safezone
    }
}

/// Result of the tuning procedure.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The recommended neighborhood size `r̂`.
    pub r: f64,
    /// Every `(r, counts)` pair evaluated on the final grid.
    pub grid: Vec<(f64, ReplayCounts)>,
}

/// Run the full protocol synchronously over recorded local-vector series.
///
/// `series[node][round]` is node `node`'s local vector at `round`; series
/// may have unequal lengths (a node simply stops updating when its series
/// ends — this supports the paper's one-node-per-round DNN workload).
/// The neighborhood radius is forced to `Fixed(r)` so each candidate is
/// evaluated at exactly that size.
pub fn replay(
    f: &Arc<dyn MonitoredFunction>,
    series: &[Vec<Vec<f64>>],
    r: f64,
    cfg: &MonitorConfig,
) -> ReplayCounts {
    let n = series.len();
    assert!(n > 0, "replay: need at least one node series");
    let mut cfg = cfg.clone();
    cfg.neighborhood = NeighborhoodMode::Fixed(r);
    let mut coord = Coordinator::new(f.clone(), n, cfg);
    let mut nodes: Vec<Node> = (0..n).map(|i| Node::new(i, f.clone())).collect();
    let rounds = series.iter().map(Vec::len).max().unwrap_or(0);

    let mut messages = 0usize;
    for round in 0..rounds {
        for (i, s) in series.iter().enumerate() {
            let Some(x) = s.get(round) else { continue };
            if let Some(m) = nodes[i].update_data(x.clone()) {
                messages += route(&mut coord, &mut nodes, m);
            }
        }
    }

    let st = coord.stats();
    ReplayCounts {
        neighborhood: st.neighborhood_violations,
        safezone: st.safezone_violations,
        faulty: st.faulty_reports,
        full_syncs: st.full_syncs,
        lazy_syncs: st.lazy_syncs,
        messages,
    }
}

/// Deliver `first` and all cascading replies; returns messages exchanged.
fn route(coord: &mut Coordinator, nodes: &mut [Node], first: NodeMessage) -> usize {
    let mut inbox = vec![first];
    let mut count = 0usize;
    while let Some(m) = inbox.pop() {
        count += 1; // node → coordinator
        for out in coord.handle(m) {
            count += 1; // coordinator → node
            if let Some(reply) = nodes[out.to].handle(out.msg) {
                inbox.push(reply);
            }
        }
    }
    count
}

/// Evaluate a set of candidate radii (used by the Figure 3 / Figure 8
/// experiments and by the final grid of Algorithm 2).
pub fn evaluate_grid(
    f: &Arc<dyn MonitoredFunction>,
    series: &[Vec<Vec<f64>>],
    radii: &[f64],
    cfg: &MonitorConfig,
) -> Vec<(f64, ReplayCounts)> {
    radii
        .iter()
        .map(|&r| (r, replay(f, series, r, cfg)))
        .collect()
}

/// Paper Algorithm 2: find an approximately optimal neighborhood size.
///
/// `series` should be a small prefix of the streams (the paper uses ~200
/// rounds of synthetic data / ~1.5% of real data).
///
/// ```
/// use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
/// use automon_core::{tuning, MonitorConfig, MonitoredFunction};
/// use std::sync::Arc;
///
/// struct Cubic;
/// impl ScalarFn for Cubic {
///     fn dim(&self) -> usize { 1 }
///     fn call<S: Scalar>(&self, x: &[S]) -> S { x[0] * x[0] * x[0] }
/// }
///
/// // A short recorded prefix for two nodes.
/// let series: Vec<Vec<Vec<f64>>> = (0..2)
///     .map(|i| (0..30).map(|t| vec![0.02 * t as f64 + 0.01 * i as f64]).collect())
///     .collect();
/// let f: Arc<dyn MonitoredFunction> = Arc::new(AutoDiffFn::new(Cubic));
/// let cfg = MonitorConfig::builder(0.5).build();
/// let result = tuning::tune_neighborhood_size(&f, &series, &cfg);
/// assert!(result.r > 0.0);
/// ```
pub fn tune_neighborhood_size(
    f: &Arc<dyn MonitoredFunction>,
    series: &[Vec<Vec<f64>>],
    cfg: &MonitorConfig,
) -> TuningResult {
    // 16 halvings span radii down to ~1.5e-5 and up to 65536× — far
    // beyond any data scale the protocol can use; each step is a full
    // prefix replay, so the cap is also the tuning-cost bound.
    const MAX_STEPS: usize = 16;
    // Memoize replays: the bracket loops and the grid revisit radii.
    let mut cache: std::collections::BTreeMap<u64, ReplayCounts> =
        std::collections::BTreeMap::new();
    let mut replay_cached = |r: f64| -> ReplayCounts {
        cache
            .entry(r.to_bits())
            .or_insert_with(|| replay(f, series, r, cfg))
            .clone()
    };

    // b ← 1; while no neighborhood violations, halve.
    let mut b = 1.0f64;
    let mut saw_neighborhood = false;
    for _ in 0..MAX_STEPS {
        if replay_cached(b).neighborhood > 0 {
            saw_neighborhood = true;
            break;
        }
        b /= 2.0;
    }
    // lo ← b; while safe-zone violations persist, halve.
    let mut lo = b;
    for _ in 0..MAX_STEPS {
        if replay_cached(lo).safezone == 0 {
            break;
        }
        lo /= 2.0;
    }
    // hi ← b; while neighborhood violations persist, double.
    // Guard beyond the paper's pseudocode: if the prefix was so quiet
    // that halving never produced a neighborhood violation, the bracket
    // would collapse to a microscopic radius that floods the real run
    // with neighborhood violations. Anchor `hi` back at the default
    // radius instead.
    let mut hi = if saw_neighborhood { b } else { 1.0 };
    for _ in 0..MAX_STEPS {
        if replay_cached(hi).neighborhood == 0 {
            break;
        }
        hi *= 2.0;
    }
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }

    // Grid of 10 radii in [lo, hi]; keep the total-violation minimizer.
    // Ties break toward the LARGEST radius: on a quiet tuning prefix many
    // radii show zero violations, and a too-small r would flood the full
    // run with neighborhood violations later.
    let grid_r: Vec<f64> = (0..10)
        .map(|i| lo + (hi - lo) * i as f64 / 9.0)
        .filter(|&r| r > 0.0)
        .collect();
    let grid: Vec<(f64, ReplayCounts)> =
        grid_r.iter().map(|&r| (r, replay_cached(r))).collect();
    let best = grid
        .iter()
        .rev()
        .min_by_key(|(_, c)| c.total_violations())
        .expect("non-empty grid");
    TuningResult {
        r: best.0,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};

    struct Rozenbrock;
    impl ScalarFn for Rozenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            let one = S::from_f64(1.0);
            let hundred = S::from_f64(100.0);
            (one - x[0]) * (one - x[0])
                + hundred * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0])
        }
    }

    fn rozenbrock() -> Arc<dyn MonitoredFunction> {
        Arc::new(AutoDiffFn::new(Rozenbrock))
    }

    /// Deterministic pseudo-random walk data, N(0, 0.2²)-ish.
    fn walk_series(nodes: usize, rounds: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.2
        };
        (0..nodes)
            .map(|_| (0..rounds).map(|_| vec![next(), next()]).collect())
            .collect()
    }

    #[test]
    fn replay_runs_and_counts() {
        let f = rozenbrock();
        let series = walk_series(3, 40, 42);
        let cfg = MonitorConfig::builder(0.5).build();
        let counts = replay(&f, &series, 0.5, &cfg);
        assert!(counts.full_syncs >= 1);
        assert!(counts.messages > 0);
    }

    #[test]
    fn tiny_radius_causes_neighborhood_violations() {
        let f = rozenbrock();
        let series = walk_series(3, 40, 7);
        let cfg = MonitorConfig::builder(10.0).build(); // huge ε: no SZ viols
        let tight = replay(&f, &series, 1e-4, &cfg);
        assert!(
            tight.neighborhood > 0,
            "expected neighborhood violations, got {tight:?}"
        );
        let roomy = replay(&f, &series, 10.0, &cfg);
        assert!(roomy.neighborhood < tight.neighborhood);
    }

    #[test]
    fn tuning_returns_radius_in_bracket() {
        let f = rozenbrock();
        let series = walk_series(3, 30, 99);
        let cfg = MonitorConfig::builder(0.5).build();
        let result = tune_neighborhood_size(&f, &series, &cfg);
        assert!(result.r > 0.0);
        assert!(!result.grid.is_empty());
        // The recommendation must be a grid member with minimal violations.
        let min = result
            .grid
            .iter()
            .map(|(_, c)| c.total_violations())
            .min()
            .unwrap();
        let picked = result
            .grid
            .iter()
            .find(|(r, _)| *r == result.r)
            .expect("picked radius evaluated");
        assert_eq!(picked.1.total_violations(), min);
    }

    #[test]
    fn uneven_series_lengths_supported() {
        let f = rozenbrock();
        let mut series = walk_series(2, 20, 5);
        series[1].truncate(5);
        let cfg = MonitorConfig::builder(0.5).build();
        let counts = replay(&f, &series, 0.5, &cfg);
        assert!(counts.full_syncs >= 1);
    }
}
