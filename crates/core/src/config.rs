//! Monitoring configuration.

use crate::adcd::AdcdKind;
use crate::cache::DecompCacheConfig;
use crate::safezone::DcKind;
use automon_linalg::SpectralBackend;
use automon_opt::OptimizeOptions;

/// How the thresholds `L, U` derive from `f(x0)` and `ε` (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproximationKind {
    /// `L = f(x0) - ε`, `U = f(x0) + ε`.
    Additive,
    /// `L, U = (1 ∓ ε)·f(x0)` (ordered so `L ≤ U` also for negative
    /// `f(x0)`).
    Multiplicative,
}

/// How the neighborhood size `r` is chosen (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborhoodMode {
    /// Fixed radius supplied by the caller (possibly from offline tuning).
    Fixed(f64),
    /// Start from the given radius and let the coordinator apply the
    /// adaptive heuristic (double `r` after `5n` consecutive neighborhood
    /// violations with no intervening safe-zone violation).
    Adaptive(f64),
}

impl NeighborhoodMode {
    /// The initial radius.
    pub fn initial_r(&self) -> f64 {
        match *self {
            NeighborhoodMode::Fixed(r) | NeighborhoodMode::Adaptive(r) => r,
        }
    }

    /// Whether adaptive growth is enabled.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, NeighborhoodMode::Adaptive(_))
    }
}

/// How the extreme eigenvalues of probed Hessians are computed during
/// the ADCD-X search (paper eq. 3 and the §6 discussion of Hessian
/// spectrum bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigenObjective {
    /// Exact per-point eigenvalues via the Jacobi decomposition — the
    /// paper's approach (tightest safe zones, O(d³) per probe).
    Exact,
    /// Gershgorin disc bounds per probe — `λ_min ≥ min_i (h_ii - R_i)`,
    /// `λ_max ≤ max_i (h_ii + R_i)` — the cheap, conservative
    /// alternative the paper's §6 suggests exploring. O(d²) per probe;
    /// wider curvature penalties, hence smaller safe zones, but no
    /// eigendecomposition in the full-sync hot path.
    Gershgorin,
}

/// Degree of parallelism for the full-sync hot path (ADCD-X eigen
/// search, per-node constraint checks).
///
/// The batched pipeline (`Threads`/`Auto`) is deterministic: probe
/// points are pre-generated from the same seeded streams as the
/// sequential path and reductions happen in a fixed order, so results
/// are bit-identical for every worker count `≥ 1`. `Sequential` instead
/// runs the original one-probe-at-a-time code path verbatim, byte for
/// byte — kept both as the reference the batched path is tested
/// against and as a rollback switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Legacy single-threaded code path (pre-batching behavior).
    Sequential,
    /// Batched pipeline on `n` worker threads (`n = 1` runs the batched
    /// pipeline inline, without spawning).
    Threads(usize),
    /// Batched pipeline sized to `std::thread::available_parallelism()`.
    #[default]
    Auto,
}

impl Parallelism {
    /// Number of worker threads the batched pipeline will use; `0` means
    /// the legacy sequential path.
    pub fn workers(&self) -> usize {
        match *self {
            Parallelism::Sequential => 0,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl From<usize> for Parallelism {
    /// CLI-friendly conversion: `0` → `Auto`, `1` → `Sequential`,
    /// `n ≥ 2` → `Threads(n)`.
    fn from(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Sequential,
            n => Parallelism::Threads(n),
        }
    }
}

/// Budget for the extreme-eigenvalue search of ADCD-X (paper eq. 3).
///
/// The search evaluates `λ(H(x))` — a full Hessian plus an
/// eigendecomposition per point — so its cost dominates full syncs; this
/// budget caps it. `probes` seeded samples of `B` pick the incumbent and
/// `nm_iters` box-projected Nelder–Mead iterations polish it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenSearch {
    /// Random probe points inside the neighborhood (plus its center).
    pub probes: usize,
    /// Nelder–Mead polish iterations from the best probe.
    pub nm_iters: usize,
    /// Skip the Nelder–Mead polish above this dimension: initializing
    /// the simplex alone costs `d + 1` Hessian evaluations, which
    /// dominates full-sync time for high-dimensional functions (e.g. the
    /// DNN). Probing still bounds the extremes, and the §3.7 sanity
    /// check catches any under-estimate.
    pub nm_dim_cap: usize,
    /// Seed for probe sampling.
    pub seed: u64,
}

impl Default for EigenSearch {
    fn default() -> Self {
        Self {
            probes: 8,
            nm_iters: 40,
            nm_dim_cap: 24,
            seed: 0xE16E,
        }
    }
}

/// Full monitoring configuration.
///
/// Build with [`MonitorConfig::builder`]. The defaults match the paper's
/// setup: additive approximation, slack and LRU lazy sync enabled, ADCD
/// variant auto-detected, adaptive neighborhood growth on.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Approximation error bound `ε`.
    pub epsilon: f64,
    /// Additive or multiplicative thresholds.
    pub approximation: ApproximationKind,
    /// Neighborhood-size policy.
    pub neighborhood: NeighborhoodMode,
    /// Enable slack vectors (paper §3.5, "Lazy Sync and Slack").
    pub enable_slack: bool,
    /// Enable LRU lazy sync; when disabled every violation triggers a
    /// full sync.
    pub enable_lazy_sync: bool,
    /// Force a specific ADCD variant instead of auto-detection.
    pub adcd_override: Option<AdcdKind>,
    /// Force a specific DC representation instead of the DC heuristic.
    pub dc_override: Option<DcKind>,
    /// Ablation switch: skip ADCD entirely and use the (non-convex)
    /// admissible-region check `L ≤ f(x) ≤ U` as the local constraint,
    /// reproducing the "no ADCD" arm of the paper's §4.6 ablation.
    pub disable_adcd: bool,
    /// Multiplier (≥ 1) applied to `|λ̂⁻_min|` and `λ̂⁺_max` as a safety
    /// margin against the eigenvalue search under-estimating.
    pub eigen_margin: f64,
    /// Eigenvalue-search budget for ADCD-X.
    pub eigen_search: EigenSearch,
    /// How per-probe extreme eigenvalues are computed (exact vs
    /// Gershgorin bounds; §6 extension).
    pub eigen_objective: EigenObjective,
    /// Which spectral kernel ADCD uses. The default
    /// ([`SpectralBackend::Ql`]) routes full decompositions through
    /// Householder + implicit-shift QL and, when the probe objective is
    /// [`EigenObjective::Exact`], drives the ADCD-X search matrix-free
    /// via Lanczos on Hessian-vector products.
    /// [`SpectralBackend::Jacobi`] is the original cyclic-Jacobi path,
    /// kept as a rollback switch and test oracle.
    pub spectral_backend: SpectralBackend,
    /// Degree of parallelism for the full-sync hot path.
    pub parallelism: Parallelism,
    /// Options for the general-purpose optimizer (tuning procedures).
    pub opt: OptimizeOptions,
    /// Consecutive-neighborhood-violation threshold factor: `r` doubles
    /// after `adaptive_r_factor · n` consecutive neighborhood violations
    /// with no safe-zone violation in between (paper §3.6 uses 5).
    pub adaptive_r_factor: usize,
    /// Coordinator decomposition cache (`None` = off, the default).
    /// Exact hits skip the full-sync eigendecomposition; see
    /// [`crate::cache::DecompCache`] for the bit-identity contract.
    pub decomp_cache: Option<DecompCacheConfig>,
}

impl MonitorConfig {
    /// Start building a configuration with error bound `epsilon`.
    pub fn builder(epsilon: f64) -> MonitorConfigBuilder {
        MonitorConfigBuilder::new(epsilon)
    }
}

/// Builder for [`MonitorConfig`].
#[derive(Debug, Clone)]
pub struct MonitorConfigBuilder {
    cfg: MonitorConfig,
}

impl MonitorConfigBuilder {
    /// New builder with paper-default settings.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            cfg: MonitorConfig {
                epsilon,
                approximation: ApproximationKind::Additive,
                neighborhood: NeighborhoodMode::Adaptive(1.0),
                enable_slack: true,
                enable_lazy_sync: true,
                adcd_override: None,
                dc_override: None,
                disable_adcd: false,
                eigen_margin: 1.0,
                eigen_search: EigenSearch::default(),
                eigen_objective: EigenObjective::Exact,
                spectral_backend: SpectralBackend::default(),
                parallelism: Parallelism::default(),
                opt: OptimizeOptions::default(),
                adaptive_r_factor: 5,
                decomp_cache: None,
            },
        }
    }

    /// Use multiplicative thresholds `(1 ± ε)·f(x0)`.
    pub fn multiplicative(mut self) -> Self {
        self.cfg.approximation = ApproximationKind::Multiplicative;
        self
    }

    /// Set the neighborhood policy.
    pub fn neighborhood(mut self, mode: NeighborhoodMode) -> Self {
        assert!(mode.initial_r() > 0.0, "neighborhood radius must be positive");
        self.cfg.neighborhood = mode;
        self
    }

    /// Disable the slack mechanism (ablation).
    pub fn without_slack(mut self) -> Self {
        self.cfg.enable_slack = false;
        self
    }

    /// Disable lazy sync (every violation becomes a full sync; ablation).
    pub fn without_lazy_sync(mut self) -> Self {
        self.cfg.enable_lazy_sync = false;
        self
    }

    /// Skip ADCD and monitor with the raw admissible-region check
    /// (the "no ADCD" ablation of paper §4.6).
    pub fn without_adcd(mut self) -> Self {
        self.cfg.disable_adcd = true;
        self
    }

    /// Force an ADCD variant.
    pub fn adcd(mut self, kind: AdcdKind) -> Self {
        self.cfg.adcd_override = Some(kind);
        self
    }

    /// Force a DC representation (bypasses the DC heuristic).
    pub fn dc(mut self, kind: DcKind) -> Self {
        self.cfg.dc_override = Some(kind);
        self
    }

    /// Safety margin multiplier for the eigenvalue extremes.
    pub fn eigen_margin(mut self, m: f64) -> Self {
        assert!(m >= 1.0, "eigen margin must be ≥ 1");
        self.cfg.eigen_margin = m;
        self
    }

    /// Eigenvalue-search budget.
    pub fn eigen_search(mut self, s: EigenSearch) -> Self {
        self.cfg.eigen_search = s;
        self
    }

    /// Use Gershgorin disc bounds instead of exact per-probe eigenvalues
    /// (cheaper, more conservative; the paper's §6 extension).
    pub fn gershgorin_bounds(mut self) -> Self {
        self.cfg.eigen_objective = EigenObjective::Gershgorin;
        self
    }

    /// Pick the spectral kernel ([`SpectralBackend::Ql`] is the
    /// default; [`SpectralBackend::Jacobi`] is the legacy escape hatch).
    pub fn spectral_backend(mut self, b: SpectralBackend) -> Self {
        self.cfg.spectral_backend = b;
        self
    }

    /// Set the full-sync parallelism policy.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.cfg.parallelism = p;
        self
    }

    /// Enable the coordinator decomposition cache (off by default).
    pub fn decomp_cache(mut self, cache: DecompCacheConfig) -> Self {
        assert!(cache.capacity >= 1, "cache capacity must be ≥ 1");
        assert!(cache.cell > 0.0, "cache cell width must be positive");
        self.cfg.decomp_cache = Some(cache);
        self
    }

    /// Set or clear the decomposition-cache configuration (CLI plumbing).
    pub fn decomp_cache_opt(mut self, cache: Option<DecompCacheConfig>) -> Self {
        self.cfg.decomp_cache = cache;
        self
    }

    /// Finish building.
    pub fn build(self) -> MonitorConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = MonitorConfig::builder(0.1).build();
        assert_eq!(cfg.epsilon, 0.1);
        assert_eq!(cfg.approximation, ApproximationKind::Additive);
        assert!(cfg.enable_slack);
        assert!(cfg.enable_lazy_sync);
        assert!(!cfg.disable_adcd);
        assert!(cfg.neighborhood.is_adaptive());
        assert_eq!(cfg.adaptive_r_factor, 5);
    }

    #[test]
    fn builder_toggles() {
        let cfg = MonitorConfig::builder(0.5)
            .multiplicative()
            .neighborhood(NeighborhoodMode::Fixed(0.25))
            .without_slack()
            .without_lazy_sync()
            .without_adcd()
            .eigen_margin(1.5)
            .build();
        assert_eq!(cfg.approximation, ApproximationKind::Multiplicative);
        assert_eq!(cfg.neighborhood, NeighborhoodMode::Fixed(0.25));
        assert!(!cfg.enable_slack);
        assert!(!cfg.enable_lazy_sync);
        assert!(cfg.disable_adcd);
        assert_eq!(cfg.eigen_margin, 1.5);
    }

    #[test]
    fn parallelism_mapping() {
        assert_eq!(Parallelism::from(0), Parallelism::Auto);
        assert_eq!(Parallelism::from(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from(4), Parallelism::Threads(4));
        assert_eq!(Parallelism::Sequential.workers(), 0);
        assert_eq!(Parallelism::Threads(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
        let cfg = MonitorConfig::builder(0.1)
            .parallelism(Parallelism::Threads(2))
            .build();
        assert_eq!(cfg.parallelism, Parallelism::Threads(2));
        assert_eq!(
            MonitorConfig::builder(0.1).build().parallelism,
            Parallelism::Auto
        );
    }

    #[test]
    fn spectral_backend_defaults_to_ql() {
        assert_eq!(
            MonitorConfig::builder(0.1).build().spectral_backend,
            SpectralBackend::Ql
        );
        assert_eq!(
            MonitorConfig::builder(0.1)
                .spectral_backend(SpectralBackend::Jacobi)
                .build()
                .spectral_backend,
            SpectralBackend::Jacobi
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        MonitorConfig::builder(0.0);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let _ = MonitorConfig::builder(0.1).neighborhood(NeighborhoodMode::Fixed(0.0));
    }
}
