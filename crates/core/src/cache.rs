//! Coordinator-side decomposition cache with pluggable eviction.
//!
//! ADCD decomposition is the full-sync hot path: every violation that
//! lazy sync cannot absorb pays a QL or Lanczos eigendecomposition at
//! the new reference point `x0`. Under drifting-mean workloads the
//! reference points recur — the mean oscillates through a small set of
//! cells — so the coordinator can remember `(x0, r) → Decomposition`
//! and skip the eigensolve entirely when an identical sync recurs.
//!
//! # Keying and the bit-identity contract
//!
//! Entries are indexed by [`CacheKey`]: the function id, the quantized
//! `x0` cell (`floor(x0_i / cell)` per coordinate), and the radius
//! bucket (`floor(log2 r)`). The key is only an *index*; correctness
//! never depends on the quantization. An **exact hit** additionally
//! requires the stored `x0`, `r`, and neighborhood box to be
//! bit-identical to the query — and since [`crate::adcd::decompose`]
//! is deterministic, replaying the stored [`DcDecomposition`] is
//! bit-for-bit what a fresh decomposition would have produced. This is
//! what makes cache-on runs byte-identical to cache-off runs.
//!
//! A **near hit** (same cell, same or adjacent radius bucket, but
//! different exact inputs) cannot reuse the result, but it can seed
//! the Lanczos extreme-eigenvalue streams with the cached Ritz vectors
//! ([`crate::adcd::RitzSeeds`]). Warm starts change the Lanczos
//! trajectory — the converged values agree only to solver tolerance,
//! not bitwise — so they are **off by default** and gated behind
//! [`DecompCacheConfig::warm_start`]; enabling them trades strict
//! cache-on/off bit parity for fewer Lanczos iterations.
//!
//! # Eviction
//!
//! Eviction is pluggable via [`EvictionPolicy`], with three
//! deterministic implementations selected by [`CachePolicy`]:
//!
//! * **LRU-K** — evicts the entry with the greatest backward-K
//!   distance (entries with fewer than K recorded accesses count as
//!   infinitely distant and go first, oldest last-access breaking
//!   ties). Retains a bounded history for recently evicted keys so a
//!   re-inserted recurring cell keeps its access record.
//! * **SLRU** — segmented LRU: new entries land in a probationary
//!   segment and only a hit promotes them into the protected segment
//!   (capped at 4/5 of capacity); one-shot violation probes therefore
//!   wash through probation without displacing recurring cells.
//! * **ARC** — adaptive replacement: resident lists T1 (seen once)
//!   and T2 (seen twice+) plus ghost lists B1/B2 remembering recently
//!   evicted keys. Ghost hits steer the adaptation target `p` toward
//!   recency or frequency, self-tuning between the two.
//!
//! All three use ordered structures only (`BTreeMap`-backed recency
//! lists) — no `HashMap` iteration anywhere — so the same operation
//! sequence always produces the same eviction sequence, keeping the
//! simulator's determinism contract intact.
//!
//! This module also hosts [`SlotList`], the intrusive slot-index
//! recency list backing the coordinator's lazy-sync node LRU (§3.5):
//! same iteration order as the `VecDeque` it replaces, but touch is
//! O(1) instead of an O(n) scan.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, MutexGuard};

use parking_lot::Mutex;

use crate::adcd::{DcDecomposition, RitzSeeds};
use crate::safezone::NeighborhoodBox;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Which eviction policy a [`DecompCache`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// LRU-K (backward-K-distance) eviction.
    LruK,
    /// Segmented LRU with probationary/protected segments.
    #[default]
    Slru,
    /// Adaptive Replacement Cache with T1/T2/B1/B2 ghost lists.
    Arc,
}

impl CachePolicy {
    /// Parse a CLI/config spelling (`lru-k`, `slru`, `arc`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru-k" | "lruk" | "lru_k" => Some(Self::LruK),
            "slru" => Some(Self::Slru),
            "arc" => Some(Self::Arc),
            _ => None,
        }
    }

    /// Canonical name, used in metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            Self::LruK => "lru-k",
            Self::Slru => "slru",
            Self::Arc => "arc",
        }
    }
}

/// Configuration for the coordinator decomposition cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompCacheConfig {
    /// Eviction policy.
    pub policy: CachePolicy,
    /// Maximum resident entries (≥ 1).
    pub capacity: usize,
    /// Quantization cell width for the `x0` grid (> 0).
    pub cell: f64,
    /// `K` for the LRU-K policy.
    pub lru_k: usize,
    /// Seed Lanczos with cached Ritz vectors on near hits. Off by
    /// default: warm starts keep the spectral-oracle tolerances but
    /// break bit-identity between cache-on and cache-off runs.
    pub warm_start: bool,
}

impl Default for DecompCacheConfig {
    fn default() -> Self {
        Self {
            policy: CachePolicy::default(),
            capacity: 64,
            cell: 1e-3,
            lru_k: 2,
            warm_start: false,
        }
    }
}

impl DecompCacheConfig {
    /// Default configuration for `policy`.
    pub fn with_policy(policy: CachePolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

/// Index key: `(function id, quantized x0 cell, radius bucket)`.
///
/// Two different `(x0, r)` pairs may share a key; the key only routes
/// a lookup to a candidate entry, and [`DecompCache::lookup`] then
/// compares the stored exact inputs bitwise before declaring a hit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Identifies the monitored function (coordinators sharing a cache
    /// across a fleet must use distinct ids per function).
    pub fn_id: u64,
    /// `floor(x0_i / cell)` per coordinate.
    pub cell: Vec<i64>,
    /// `floor(log2 r)`.
    pub radius_bucket: i32,
}

impl CacheKey {
    /// Quantize `(fn_id, x0, r)` into its cache cell. The cell and
    /// radius arithmetic is the shared [`crate::quant`] helper, so the
    /// fleet's shard router buckets reference points onto exactly this
    /// grid.
    pub fn quantize(fn_id: u64, x0: &[f64], r: f64, cell: f64) -> Self {
        Self {
            fn_id,
            cell: crate::quant::quantize_cell(x0, cell),
            radius_bucket: crate::quant::radius_bucket(r),
        }
    }

    fn with_bucket(&self, bucket: i32) -> Self {
        Self {
            fn_id: self.fn_id,
            cell: self.cell.clone(),
            radius_bucket: bucket,
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic recency list
// ---------------------------------------------------------------------------

/// An ordered set with O(log n) LRU→MRU operations, backed by
/// `BTreeMap`s so iteration order is deterministic.
#[derive(Debug, Default, Clone)]
struct RecencyList {
    /// seq → key, ascending seq = LRU → MRU.
    order: BTreeMap<u64, CacheKey>,
    /// key → seq.
    seq_of: BTreeMap<CacheKey, u64>,
    next_seq: u64,
}

impl RecencyList {
    fn len(&self) -> usize {
        self.order.len()
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.seq_of.contains_key(key)
    }

    /// Insert or refresh `key` at the MRU end.
    fn push_mru(&mut self, key: &CacheKey) {
        if let Some(seq) = self.seq_of.remove(key) {
            self.order.remove(&seq);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.insert(seq, key.clone());
        self.seq_of.insert(key.clone(), seq);
    }

    /// Remove and return the LRU key.
    fn pop_lru(&mut self) -> Option<CacheKey> {
        let (&seq, _) = self.order.iter().next()?;
        let key = self.order.remove(&seq).expect("seq present");
        self.seq_of.remove(&key);
        Some(key)
    }

    /// Remove `key` if present; reports whether it was.
    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.seq_of.remove(key) {
            Some(seq) => {
                self.order.remove(&seq);
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Eviction policies
// ---------------------------------------------------------------------------

/// A pluggable, deterministic eviction policy.
///
/// The policy tracks residency metadata only; the [`DecompCache`] owns
/// the entries. Contract: `on_insert` is called for keys not currently
/// resident and returns at most one victim, which must be resident;
/// `on_hit` is called for resident keys.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Canonical policy name (metric label).
    fn name(&self) -> &'static str;

    /// A resident key was accessed.
    fn on_hit(&mut self, key: &CacheKey);

    /// A non-resident key is being inserted; returns the key to evict,
    /// if the cache is at capacity.
    fn on_insert(&mut self, key: &CacheKey) -> Option<CacheKey>;

    /// A resident key was removed out-of-band (invalidation).
    fn on_remove(&mut self, key: &CacheKey);

    /// Hits on remembered-but-evicted ("ghost") keys, for policies
    /// that keep ghost state (ARC).
    fn ghost_hits(&self) -> u64 {
        0
    }

    /// Per-policy adaptation signal: ARC's target `p`, SLRU's
    /// protected-segment occupancy, LRU-K's count of fully-observed
    /// (≥ K accesses) resident keys.
    fn adaptation(&self) -> f64 {
        0.0
    }
}

/// Build the policy implementation selected by `cfg`.
pub fn build_policy(cfg: &DecompCacheConfig) -> Box<dyn EvictionPolicy> {
    let capacity = cfg.capacity.max(1);
    match cfg.policy {
        CachePolicy::LruK => Box::new(LruKPolicy::new(capacity, cfg.lru_k.max(1))),
        CachePolicy::Slru => Box::new(SlruPolicy::new(capacity)),
        CachePolicy::Arc => Box::new(ArcPolicy::new(capacity)),
    }
}

/// LRU-K (O'Neil et al.): evict the resident key with the greatest
/// backward-K distance. Keys with fewer than K recorded accesses have
/// infinite distance and are evicted first, oldest last-access
/// breaking ties. Access history is retained for up to `2 × capacity`
/// keys total, so recently evicted recurring keys keep their record.
#[derive(Debug)]
pub struct LruKPolicy {
    capacity: usize,
    k: usize,
    clock: u64,
    /// Most-recent-first access timestamps, truncated to K.
    history: BTreeMap<CacheKey, VecDeque<u64>>,
    resident: BTreeSet<CacheKey>,
}

impl LruKPolicy {
    /// A policy over `capacity` resident slots with parameter `k`.
    pub fn new(capacity: usize, k: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            k: k.max(1),
            clock: 0,
            history: BTreeMap::new(),
            resident: BTreeSet::new(),
        }
    }

    fn record_access(&mut self, key: &CacheKey) {
        self.clock += 1;
        let h = self.history.entry(key.clone()).or_default();
        h.push_front(self.clock);
        h.truncate(self.k);
    }

    /// (has_full_k_history, sort_key): victims sort before survivors.
    /// Infinite backward-K distance (< K accesses) loses to any finite
    /// one; within a class, the older timestamp loses.
    fn victim(&self) -> Option<CacheKey> {
        self.resident
            .iter()
            .map(|key| {
                let h = self.history.get(key);
                let full = h.is_some_and(|h| h.len() >= self.k);
                // Kth-most-recent access when full, last access otherwise.
                let stamp = h
                    .and_then(|h| if full { h.back() } else { h.front() })
                    .copied()
                    .unwrap_or(0);
                (full, stamp, key.clone())
            })
            .min()
            .map(|(_, _, key)| key)
    }

    fn prune_ghost_history(&mut self) {
        while self.history.len() > 2 * self.capacity {
            let ghost = self
                .history
                .iter()
                .filter(|(k, _)| !self.resident.contains(k))
                .map(|(k, h)| (h.front().copied().unwrap_or(0), k.clone()))
                .min();
            match ghost {
                Some((_, key)) => {
                    self.history.remove(&key);
                }
                None => break,
            }
        }
    }
}

impl EvictionPolicy for LruKPolicy {
    fn name(&self) -> &'static str {
        "lru-k"
    }

    fn on_hit(&mut self, key: &CacheKey) {
        debug_assert!(self.resident.contains(key));
        self.record_access(key);
    }

    fn on_insert(&mut self, key: &CacheKey) -> Option<CacheKey> {
        debug_assert!(!self.resident.contains(key));
        let victim = if self.resident.len() >= self.capacity {
            let v = self.victim().expect("resident non-empty at capacity");
            self.resident.remove(&v);
            Some(v)
        } else {
            None
        };
        self.resident.insert(key.clone());
        self.record_access(key);
        self.prune_ghost_history();
        victim
    }

    fn on_remove(&mut self, key: &CacheKey) {
        self.resident.remove(key);
    }

    fn adaptation(&self) -> f64 {
        self.resident
            .iter()
            .filter(|k| self.history.get(*k).is_some_and(|h| h.len() >= self.k))
            .count() as f64
    }
}

/// Segmented LRU: a probationary segment absorbs first-time entries; a
/// hit promotes into the protected segment (capped at 4/5 of
/// capacity, overflow demoting back to probationary MRU). Victims come
/// from the probationary LRU end, so scan traffic cannot displace the
/// protected working set.
#[derive(Debug)]
pub struct SlruPolicy {
    capacity: usize,
    protected_cap: usize,
    probationary: RecencyList,
    protected: RecencyList,
}

impl SlruPolicy {
    /// A policy over `capacity` resident slots.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            protected_cap: capacity * 4 / 5,
            probationary: RecencyList::default(),
            protected: RecencyList::default(),
        }
    }

    fn demote_protected_overflow(&mut self) {
        while self.protected.len() > self.protected_cap {
            let demoted = self.protected.pop_lru().expect("overflowing");
            self.probationary.push_mru(&demoted);
        }
    }

    /// (probationary, protected) segment sizes, for tests.
    pub fn segments(&self) -> (usize, usize) {
        (self.probationary.len(), self.protected.len())
    }
}

impl EvictionPolicy for SlruPolicy {
    fn name(&self) -> &'static str {
        "slru"
    }

    fn on_hit(&mut self, key: &CacheKey) {
        if self.probationary.remove(key) {
            self.protected.push_mru(key);
            self.demote_protected_overflow();
        } else if self.protected.contains(key) {
            self.protected.push_mru(key);
        }
    }

    fn on_insert(&mut self, key: &CacheKey) -> Option<CacheKey> {
        self.probationary.push_mru(key);
        if self.probationary.len() + self.protected.len() > self.capacity {
            // Probationary holds at least the key just inserted, and
            // protected ≤ protected_cap < capacity keeps the new key
            // from being its own victim.
            let victim = self.probationary.pop_lru().expect("non-empty");
            debug_assert_ne!(&victim, key, "insert evicted itself");
            Some(victim)
        } else {
            None
        }
    }

    fn on_remove(&mut self, key: &CacheKey) {
        if !self.probationary.remove(key) {
            self.protected.remove(key);
        }
    }

    fn adaptation(&self) -> f64 {
        self.protected.len() as f64
    }
}

/// ARC (Megiddo & Modha): resident lists T1 (seen once) and T2 (seen
/// twice or more) plus ghost lists B1/B2 remembering recently evicted
/// keys. A ghost hit in B1 grows the recency target `p`; one in B2
/// shrinks it — the policy self-tunes between LRU-like and LFU-like
/// behavior.
#[derive(Debug)]
pub struct ArcPolicy {
    c: usize,
    /// Target size for T1, `0 ≤ p ≤ c`.
    p: usize,
    t1: RecencyList,
    t2: RecencyList,
    b1: RecencyList,
    b2: RecencyList,
    ghost_hits: u64,
}

impl ArcPolicy {
    /// A policy over `c` resident slots.
    pub fn new(c: usize) -> Self {
        Self {
            c: c.max(1),
            p: 0,
            t1: RecencyList::default(),
            t2: RecencyList::default(),
            b1: RecencyList::default(),
            b2: RecencyList::default(),
            ghost_hits: 0,
        }
    }

    fn resident(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// REPLACE from the paper: evict T1's LRU into B1 when T1 exceeds
    /// the target (or ties it on a B2 ghost hit), else T2's LRU into
    /// B2. Only called when the resident set is at capacity.
    fn replace(&mut self, in_b2: bool) -> CacheKey {
        let from_t1 = !self.t1.is_empty()
            && (self.t1.len() > self.p || (in_b2 && self.t1.len() == self.p));
        if from_t1 {
            let v = self.t1.pop_lru().expect("t1 non-empty");
            self.b1.push_mru(&v);
            v
        } else {
            let v = self.t2.pop_lru().expect("t2 non-empty when t1 is");
            self.b2.push_mru(&v);
            v
        }
    }

    fn replace_if_full(&mut self, in_b2: bool) -> Option<CacheKey> {
        (self.resident() >= self.c).then(|| self.replace(in_b2))
    }

    /// `(|T1|, |T2|, |B1|, |B2|, p)`, for invariant checks in tests.
    pub fn lists(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.t1.len(),
            self.t2.len(),
            self.b1.len(),
            self.b2.len(),
            self.p,
        )
    }
}

impl EvictionPolicy for ArcPolicy {
    fn name(&self) -> &'static str {
        "arc"
    }

    fn on_hit(&mut self, key: &CacheKey) {
        if self.t1.remove(key) || self.t2.contains(key) {
            self.t2.push_mru(key);
        }
    }

    fn on_insert(&mut self, key: &CacheKey) -> Option<CacheKey> {
        debug_assert!(!self.t1.contains(key) && !self.t2.contains(key));
        if self.b1.remove(key) {
            // Case II: ghost hit in B1 — favor recency.
            self.ghost_hits += 1;
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.c);
            let victim = self.replace_if_full(false);
            self.t2.push_mru(key);
            return victim;
        }
        if self.b2.remove(key) {
            // Case III: ghost hit in B2 — favor frequency.
            self.ghost_hits += 1;
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let victim = self.replace_if_full(true);
            self.t2.push_mru(key);
            return victim;
        }
        // Case IV: brand-new key.
        let l1 = self.t1.len() + self.b1.len();
        let victim = if l1 == self.c {
            if self.t1.len() < self.c {
                self.b1.pop_lru();
                self.replace_if_full(false)
            } else {
                // B1 empty and T1 full: drop T1's LRU without ghosting.
                let v = self.t1.pop_lru().expect("t1 full");
                Some(v)
            }
        } else {
            let total = l1 + self.t2.len() + self.b2.len();
            if total >= self.c {
                if total >= 2 * self.c {
                    self.b2.pop_lru();
                }
                self.replace_if_full(false)
            } else {
                None
            }
        };
        self.t1.push_mru(key);
        victim
    }

    fn on_remove(&mut self, key: &CacheKey) {
        if !self.t1.remove(key) {
            self.t2.remove(key);
        }
    }

    fn ghost_hits(&self) -> u64 {
        self.ghost_hits
    }

    fn adaptation(&self) -> f64 {
        self.p as f64
    }
}

// ---------------------------------------------------------------------------
// The decomposition cache
// ---------------------------------------------------------------------------

/// Hit/miss bookkeeping, mirrored into `automon_coord_decomp_cache_*`
/// metrics by the coordinator. Never part of `CoordinatorStats`, so
/// monitoring output stays bit-identical with the cache on or off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact hits (decomposition reused outright).
    pub hits: u64,
    /// Near hits (Ritz warm-start seeds reused).
    pub near_hits: u64,
    /// Lookups that found nothing reusable.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the policy.
    pub evictions: u64,
    /// Ghost-list hits (ARC only).
    pub ghost_hits: u64,
}

/// One cached decomposition with the exact inputs that produced it.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Exact reference point.
    pub x0: Vec<f64>,
    /// Exact neighborhood radius.
    pub r: f64,
    /// Exact neighborhood box (captures domain clamping).
    pub neighborhood: NeighborhoodBox,
    /// The full decomposition result.
    pub dec: DcDecomposition,
    /// Ritz vectors from the Lanczos extremes, when that path ran.
    pub ritz: Option<RitzSeeds>,
}

/// Outcome of a [`DecompCache::lookup`].
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Stored inputs are bit-identical: reuse the decomposition.
    Exact(DcDecomposition),
    /// Same cell / adjacent radius bucket: warm-start Lanczos.
    Near(RitzSeeds),
    /// Nothing reusable.
    Miss,
}

/// What an insert did, for metric deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertReport {
    /// Entries evicted to make room (0 or 1).
    pub evicted: usize,
    /// The inserted key was remembered in a ghost list (ARC).
    pub ghost_hit: bool,
}

/// The coordinator decomposition cache. See the module docs for the
/// keying scheme and the bit-identity contract.
#[derive(Debug)]
pub struct DecompCache {
    cfg: DecompCacheConfig,
    policy: Box<dyn EvictionPolicy>,
    entries: BTreeMap<CacheKey, CacheEntry>,
    /// Tuned neighborhood radii remembered per function id
    /// (`tuning::tune_neighborhood_size` results ride along so a
    /// fleet sharing the cache also shares the tuned `r`).
    tuned_r: BTreeMap<u64, f64>,
    stats: CacheStats,
}

impl DecompCache {
    /// An empty cache under `cfg`.
    pub fn new(cfg: DecompCacheConfig) -> Self {
        let policy = build_policy(&cfg);
        Self {
            cfg,
            policy,
            entries: BTreeMap::new(),
            tuned_r: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &DecompCacheConfig {
        &self.cfg
    }

    /// Canonical name of the active eviction policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity.max(1)
    }

    /// Hit/miss counters (ghost hits refreshed from the policy).
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats.clone();
        s.ghost_hits = self.policy.ghost_hits();
        s
    }

    /// The policy's adaptation signal (see
    /// [`EvictionPolicy::adaptation`]).
    pub fn adaptation(&self) -> f64 {
        self.policy.adaptation()
    }

    /// Look up `(fn_id, x0, r)` with neighborhood `b`.
    ///
    /// Exact hits require the stored `x0`, `r`, and box to be
    /// bit-identical. Near hits (same cell; same or adjacent radius
    /// bucket; Ritz vectors available) are only reported when
    /// [`DecompCacheConfig::warm_start`] is set.
    pub fn lookup(
        &mut self,
        fn_id: u64,
        x0: &[f64],
        r: f64,
        b: &NeighborhoodBox,
    ) -> CacheLookup {
        let key = CacheKey::quantize(fn_id, x0, r, self.cfg.cell);
        if let Some(e) = self.entries.get(&key) {
            if bits_eq(&e.x0, x0) && e.r.to_bits() == r.to_bits() && e.neighborhood == *b {
                let dec = e.dec.clone();
                self.policy.on_hit(&key);
                self.stats.hits += 1;
                return CacheLookup::Exact(dec);
            }
        }
        if self.cfg.warm_start {
            // Same cell first, then the adjacent radius buckets.
            for bucket in [key.radius_bucket, key.radius_bucket - 1, key.radius_bucket + 1] {
                let probe = key.with_bucket(bucket);
                if let Some(ritz) = self.entries.get(&probe).and_then(|e| e.ritz.clone()) {
                    self.policy.on_hit(&probe);
                    self.stats.near_hits += 1;
                    return CacheLookup::Near(ritz);
                }
            }
        }
        self.stats.misses += 1;
        CacheLookup::Miss
    }

    /// Insert (or refresh) the decomposition computed for
    /// `(fn_id, x0, r, b)`.
    pub fn insert(
        &mut self,
        fn_id: u64,
        x0: &[f64],
        r: f64,
        b: NeighborhoodBox,
        dec: DcDecomposition,
        ritz: Option<RitzSeeds>,
    ) -> InsertReport {
        let key = CacheKey::quantize(fn_id, x0, r, self.cfg.cell);
        let entry = CacheEntry {
            x0: x0.to_vec(),
            r,
            neighborhood: b,
            dec,
            ritz,
        };
        let mut report = InsertReport::default();
        if self.entries.contains_key(&key) {
            // Same cell, fresher exact inputs: refresh in place.
            self.policy.on_hit(&key);
        } else {
            let ghosts_before = self.policy.ghost_hits();
            if let Some(victim) = self.policy.on_insert(&key) {
                let evicted = self.entries.remove(&victim);
                debug_assert!(evicted.is_some(), "policy evicted a non-resident key");
                self.stats.evictions += 1;
                report.evicted = 1;
            }
            report.ghost_hit = self.policy.ghost_hits() > ghosts_before;
            self.stats.insertions += 1;
        }
        self.entries.insert(key, entry);
        debug_assert!(self.entries.len() <= self.capacity());
        report
    }

    /// Remember a tuned neighborhood radius for `fn_id`.
    pub fn remember_tuned_r(&mut self, fn_id: u64, r: f64) {
        self.tuned_r.insert(fn_id, r);
    }

    /// A previously remembered tuned radius for `fn_id`.
    pub fn tuned_r(&self, fn_id: u64) -> Option<f64> {
        self.tuned_r.get(&fn_id).copied()
    }

    /// Drop every entry (tuned radii and counters are kept).
    pub fn clear(&mut self) {
        let keys: Vec<CacheKey> = self.entries.keys().cloned().collect();
        for key in &keys {
            self.policy.on_remove(key);
        }
        self.entries.clear();
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A [`DecompCache`] behind `Arc<Mutex<…>>`, cloneable across the
/// coordinators of a fleet so leaf coordinators share one cache.
#[derive(Debug, Clone)]
pub struct SharedDecompCache(Arc<Mutex<DecompCache>>);

impl SharedDecompCache {
    /// Wrap `cache` for sharing.
    pub fn new(cache: DecompCache) -> Self {
        Self(Arc::new(Mutex::new(cache)))
    }

    /// Build a fresh cache under `cfg` and wrap it.
    pub fn from_config(cfg: DecompCacheConfig) -> Self {
        Self::new(DecompCache::new(cfg))
    }

    /// Lock the underlying cache.
    pub fn lock(&self) -> MutexGuard<'_, DecompCache> {
        self.0.lock()
    }
}

// ---------------------------------------------------------------------------
// Intrusive slot-index recency list (lazy-sync node LRU)
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

/// An intrusive doubly-linked recency list over slot indices
/// `0..n`, backing the coordinator's lazy-sync node LRU (§3.5).
///
/// `touch` is O(1) — unlink (if present) plus push-back — replacing
/// the `VecDeque` + `iter().position()` scan it superseded, with
/// identical front-(least recent)-to-back iteration order.
#[derive(Debug, Clone)]
pub struct SlotList {
    prev: Vec<usize>,
    next: Vec<usize>,
    linked: Vec<bool>,
    head: usize,
    tail: usize,
    len: usize,
}

impl SlotList {
    /// An empty list over `n` slots.
    pub fn new(n: usize) -> Self {
        Self {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            linked: vec![false; n],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// A list over `n` slots containing `0, 1, …, n-1` in order
    /// (slot 0 least recent).
    pub fn with_all(n: usize) -> Self {
        let mut list = Self::new(n);
        for i in 0..n {
            list.push_back(i);
        }
        list
    }

    /// A list over `n` slots restored from an explicit
    /// front-to-back order (snapshot restore).
    pub fn from_order(n: usize, order: &[usize]) -> Self {
        let mut list = Self::new(n);
        for &i in order {
            list.touch(i);
        }
        list
    }

    /// Linked slot count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is currently linked.
    pub fn contains(&self, slot: usize) -> bool {
        self.linked.get(slot).copied().unwrap_or(false)
    }

    /// The least recently touched slot.
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head)
    }

    /// Move `slot` to the most-recent end (linking it if absent). O(1).
    pub fn touch(&mut self, slot: usize) {
        self.remove(slot);
        self.push_back(slot);
    }

    /// Append `slot` at the most-recent end; it must not be linked.
    pub fn push_back(&mut self, slot: usize) {
        debug_assert!(slot < self.linked.len() && !self.linked[slot]);
        self.prev[slot] = self.tail;
        self.next[slot] = NIL;
        if self.tail != NIL {
            self.next[self.tail] = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.linked[slot] = true;
        self.len += 1;
    }

    /// Unlink `slot` if present; reports whether it was linked. O(1).
    pub fn remove(&mut self, slot: usize) -> bool {
        if slot >= self.linked.len() || !self.linked[slot] {
            return false;
        }
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.linked[slot] = false;
        self.len -= 1;
        true
    }

    /// Iterate front (least recent) to back (most recent).
    pub fn iter(&self) -> SlotIter<'_> {
        SlotIter {
            list: self,
            cursor: self.head,
        }
    }
}

/// Iterator over a [`SlotList`], front to back.
#[derive(Debug)]
pub struct SlotIter<'a> {
    list: &'a SlotList,
    cursor: usize,
}

impl Iterator for SlotIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cursor == NIL {
            return None;
        }
        let slot = self.cursor;
        self.cursor = self.list.next[slot];
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adcd::{AdcdKind, SpectralStats};
    use crate::safezone::{Curvature, DcKind};

    fn key(id: i64) -> CacheKey {
        CacheKey {
            fn_id: 0,
            cell: vec![id],
            radius_bucket: 0,
        }
    }

    fn dummy_dec(tag: f64) -> DcDecomposition {
        DcDecomposition {
            kind: AdcdKind::X,
            dc: DcKind::ConvexDiff,
            curvature: Curvature::Scalar(tag.abs()),
            lambda_min_hat: -tag,
            lambda_max_hat: tag,
            spectral: SpectralStats::default(),
        }
    }

    fn nb(x0: &[f64], r: f64) -> NeighborhoodBox {
        NeighborhoodBox {
            lo: x0.iter().map(|v| v - r).collect(),
            hi: x0.iter().map(|v| v + r).collect(),
        }
    }

    #[test]
    fn quantization_routes_nearby_points_to_one_cell() {
        let a = CacheKey::quantize(7, &[0.50012, -0.25001], 0.5, 1e-3);
        let b = CacheKey::quantize(7, &[0.50098, -0.25099], 0.5, 1e-3);
        let c = CacheKey::quantize(7, &[0.50212, -0.25001], 0.5, 1e-3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.radius_bucket, -1); // floor(log2 0.5)
        assert_eq!(CacheKey::quantize(7, &[0.0], 1.5, 1e-3).radius_bucket, 0);
    }

    #[test]
    fn exact_hit_requires_bitwise_inputs() {
        let mut cache = DecompCache::new(DecompCacheConfig::default());
        let x0 = [0.5001, 0.5002];
        let b = nb(&x0, 0.25);
        cache.insert(1, &x0, 0.25, b.clone(), dummy_dec(1.0), None);

        assert!(matches!(
            cache.lookup(1, &x0, 0.25, &b),
            CacheLookup::Exact(_)
        ));
        // Same cell, different exact point: not an exact hit.
        let x1 = [0.5001 + 1e-7, 0.5002];
        assert!(matches!(
            cache.lookup(1, &x1, 0.25, &nb(&x1, 0.25)),
            CacheLookup::Miss
        ));
        // Different function id: different key entirely.
        assert!(matches!(cache.lookup(2, &x0, 0.25, &b), CacheLookup::Miss));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn near_hit_needs_warm_start_and_ritz() {
        let mut cold = DecompCache::new(DecompCacheConfig::default());
        let mut warm = DecompCache::new(DecompCacheConfig {
            warm_start: true,
            ..DecompCacheConfig::default()
        });
        let x0 = [0.5001];
        let ritz = RitzSeeds {
            min: vec![1.0],
            max: vec![-1.0],
        };
        for cache in [&mut cold, &mut warm] {
            cache.insert(1, &x0, 0.25, nb(&x0, 0.25), dummy_dec(1.0), Some(ritz.clone()));
        }
        let x1 = [0.5002]; // same 1e-3 cell, different point
        assert!(matches!(
            cold.lookup(1, &x1, 0.25, &nb(&x1, 0.25)),
            CacheLookup::Miss
        ));
        assert!(matches!(
            warm.lookup(1, &x1, 0.25, &nb(&x1, 0.25)),
            CacheLookup::Near(_)
        ));
        // Adjacent radius bucket also warm-starts: r 0.25 → bucket -2,
        // r 0.4 → bucket -2? no: log2(0.4)=-1.32 → -2. Use 0.6 → -1.
        assert!(matches!(
            warm.lookup(1, &x1, 0.6, &nb(&x1, 0.6)),
            CacheLookup::Near(_)
        ));
        assert_eq!(warm.stats().near_hits, 2);
    }

    #[test]
    fn capacity_is_enforced_for_every_policy() {
        for policy in [CachePolicy::LruK, CachePolicy::Slru, CachePolicy::Arc] {
            let mut cache = DecompCache::new(DecompCacheConfig {
                policy,
                capacity: 4,
                ..DecompCacheConfig::default()
            });
            for i in 0..32 {
                let x0 = [i as f64];
                cache.insert(1, &x0, 0.5, nb(&x0, 0.5), dummy_dec(i as f64), None);
                assert!(cache.len() <= 4, "{policy:?} exceeded capacity");
            }
            assert_eq!(cache.len(), 4);
            assert_eq!(cache.stats().evictions, 32 - 4, "{policy:?}");
        }
    }

    #[test]
    fn slru_protects_recurring_entries_from_scans() {
        let mut p = SlruPolicy::new(5); // protected cap 4
        let hot = key(100);
        assert!(p.on_insert(&hot).is_none());
        p.on_hit(&hot); // promoted to protected
        assert_eq!(p.segments(), (0, 1));
        // A scan of one-shot keys must never evict the protected key.
        for i in 0..50 {
            if let Some(v) = p.on_insert(&key(i)) {
                assert_ne!(v, hot, "scan evicted the protected entry");
            }
        }
    }

    #[test]
    fn arc_adapts_on_ghost_hits() {
        let mut p = ArcPolicy::new(3);
        p.on_insert(&key(0));
        p.on_hit(&key(0)); // 0 promoted to T2, so REPLACE can ghost T1
        for i in 1..4 {
            p.on_insert(&key(i)); // T1 overflows: 1 evicted into B1
        }
        assert_eq!(p.lists(), (2, 1, 1, 0, 0), "expected B1 = [1]");
        let before = p.adaptation();
        // Ghost hit in B1 grows p toward recency.
        p.on_insert(&key(1));
        assert!(p.adaptation() > before, "{:?}", p.lists());
        assert_eq!(p.ghost_hits(), 1);
        let (t1, t2, b1, b2, pp) = p.lists();
        assert!(t1 + t2 <= 3 && t1 + b1 <= 3 && t1 + t2 + b1 + b2 <= 6 && pp <= 3);
    }

    #[test]
    fn tuned_r_rides_along() {
        let mut cache = DecompCache::new(DecompCacheConfig::default());
        assert_eq!(cache.tuned_r(9), None);
        cache.remember_tuned_r(9, 0.75);
        assert_eq!(cache.tuned_r(9), Some(0.75));
    }

    #[test]
    fn slot_list_matches_vecdeque_reference() {
        use std::collections::VecDeque;
        let n = 8;
        let mut list = SlotList::with_all(n);
        let mut reference: VecDeque<usize> = (0..n).collect();
        assert_eq!(list.iter().collect::<Vec<_>>(), Vec::from(reference.clone()));

        // A deterministic op mix: touch, remove, re-touch.
        let ops: &[(u8, usize)] = &[
            (0, 3),
            (0, 3),
            (0, 0),
            (1, 5),
            (0, 7),
            (1, 3),
            (0, 3),
            (0, 1),
            (1, 0),
            (0, 0),
        ];
        for &(op, slot) in ops {
            match op {
                0 => {
                    if let Some(pos) = reference.iter().position(|&x| x == slot) {
                        reference.remove(pos);
                    }
                    reference.push_back(slot);
                    list.touch(slot);
                }
                _ => {
                    if let Some(pos) = reference.iter().position(|&x| x == slot) {
                        reference.remove(pos);
                    }
                    list.remove(slot);
                }
            }
            assert_eq!(
                list.iter().collect::<Vec<_>>(),
                Vec::from(reference.clone()),
                "diverged after ({op}, {slot})"
            );
            assert_eq!(list.len(), reference.len());
            assert_eq!(list.front(), reference.front().copied());
        }
        let order: Vec<usize> = list.iter().collect();
        let restored = SlotList::from_order(n, &order);
        assert_eq!(restored.iter().collect::<Vec<_>>(), order);
    }
}
