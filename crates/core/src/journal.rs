//! Durability hook: the coordinator's state transitions as owned values.
//!
//! The coordinator cannot depend on `automon-store` (that would invert
//! the crate DAG), so the journaling contract lives here: the
//! coordinator emits [`Transition`]s through an injected [`Journal`]
//! and the store crate implements the trait on top of its WAL.
//!
//! Transitions are *state deltas*, not protocol messages: three record
//! kinds that together reconstruct a [`crate::CoordinatorSnapshot`]
//! when folded over a base snapshot in sequence order. Each kind
//! supersedes earlier records of the same key (per-node, zone,
//! control), which is what makes bitcask-style compaction sound —
//! only the latest record per key matters.

use serde::{Deserialize, Serialize};

use crate::coordinator::CoordinatorStats;
use crate::messages::{Epoch, NodeId};
use crate::safezone::SafeZone;

/// One durable coordinator state transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Transition {
    /// Per-node state: last known local vector, slack assignment, and
    /// liveness. Covers registration, lazy-sync slack updates,
    /// evictions, and rejoins.
    Node {
        node: NodeId,
        x: Option<Vec<f64>>,
        slack: Vec<f64>,
        alive: bool,
        /// Whether the node holds the current curvature matrices
        /// (decides cached vs. full constraint installs, §4.4).
        has_curvature: bool,
    },
    /// Global sync state: epoch, neighborhood radius, and the active
    /// safe zone. Written on every full sync (epoch bump), r-doubling,
    /// and zone teardown.
    Zone {
        epoch: Epoch,
        r: f64,
        zone: Option<Box<SafeZone>>,
    },
    /// Bookkeeping that rides along with every transition batch: the
    /// LRU pull order, protocol counters, and the neighborhood-growth
    /// streak.
    Control {
        lru: Vec<NodeId>,
        stats: CoordinatorStats,
        consecutive_neighborhood: usize,
    },
}

/// Sink for coordinator state transitions.
///
/// Implementations must tolerate being called mid-protocol (between
/// any two message handles); they must not call back into the
/// coordinator.
pub trait Journal: Send {
    fn record(&mut self, transition: Transition);
}
