//! Per-byte communication ledger.
//!
//! AutoMon's evaluation is communication volume; flat counters say how
//! many bytes moved but not *why*. The ledger charges every frame to a
//! protocol [`CommCause`], aggregated per node × round × cause with an
//! up/down direction split, so a run can be decomposed into "what the
//! protocol spent where" — the bytes/update-by-cause table `automon
//! trace summarize` prints, and the sharded-fleet roadmap item's audit
//! tool.
//!
//! Conservation invariant: the fabric charges the ledger at exactly the
//! points where it bumps its traffic counters, so ledger totals equal
//! the `TrafficStats`/`RunStats` message and payload totals *exactly* —
//! enforced by a proptest in `automon-sim` and a CI parity check.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::messages::{NodeId, NodeMessage};
use crate::safezone::ViolationKind;

/// The protocol reason a frame crossed the fabric.
///
/// Node→coordinator frames are classified by what the node reports
/// (violation kind, registration, pull reply); coordinator→node frames
/// carry their cause on the [`crate::Outbound`] that produced them.
/// Fault-tolerance paths (retransmission, eviction, rejoin) override the
/// base cause at charge time so recovery traffic is separable from
/// steady-state protocol traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommCause {
    /// Initial registration (an `Uninitialized` violation).
    Registration,
    /// Neighborhood-constraint violation report.
    ViolationNeighborhood,
    /// Safe-zone violation report.
    ViolationSafeZone,
    /// Faulty-constraints report (node-side numerical trouble).
    ViolationFaulty,
    /// Full synchronization: pulls and constraint installs.
    FullSync,
    /// Lazy synchronization: pulls and slack rebalances.
    LazySync,
    /// Epoch resynchronization of a stale node.
    Resync,
    /// Crashed node dialing back into the group.
    Rejoin,
    /// Traffic triggered by evicting an unresponsive node.
    Eviction,
    /// Retransmission of an unacknowledged frame.
    Retransmit,
    /// Liveness heartbeat (empty frame; TCP transport only).
    Heartbeat,
    /// Fleet resynchronization after a coordinator crash: the restored
    /// coordinator's pulls, their replies, and the closing installs
    /// (docs/DURABILITY.md) — durability costs disk, and this cause
    /// makes its wire cost separable too.
    Recovery,
    /// Leaf → root: a shard's refreshed partial mean violated the
    /// root-assigned constraints (the fleet's inter-tier report frame,
    /// DESIGN.md §3.14). Covers root-tier registrations too — a leaf's
    /// first report is how it joins the root's group.
    LeafReport,
    /// Root-tier synchronization traffic: the root coordinator's pulls
    /// of other leaves' partial means, their replies, and the closing
    /// constraint/slack installs. The hierarchical analogue of
    /// [`CommCause::FullSync`]/[`CommCause::LazySync`], kept separate so
    /// the two tiers stay separable in one merged ledger.
    RootSync,
    /// Shard-rebalancing traffic after a leaf crash or root-tier
    /// eviction: the root's adopt directives, proxy evictions, and the
    /// re-registrations they trigger.
    ShardRebalance,
}

impl CommCause {
    /// Stable lowercase name used in trace events, ledger tables, and
    /// the `automon trace summarize` output.
    pub fn name(self) -> &'static str {
        match self {
            CommCause::Registration => "registration",
            CommCause::ViolationNeighborhood => "violation_neighborhood",
            CommCause::ViolationSafeZone => "violation_safezone",
            CommCause::ViolationFaulty => "violation_faulty",
            CommCause::FullSync => "full_sync",
            CommCause::LazySync => "lazy_sync",
            CommCause::Resync => "resync",
            CommCause::Rejoin => "rejoin",
            CommCause::Eviction => "eviction",
            CommCause::Retransmit => "retransmit",
            CommCause::Heartbeat => "heartbeat",
            CommCause::Recovery => "recovery",
            CommCause::LeafReport => "leaf_report",
            CommCause::RootSync => "root_sync",
            CommCause::ShardRebalance => "shard_rebalance",
        }
    }

    /// Lift a flat-protocol cause to the root tier of a sharded fleet.
    ///
    /// The root coordinator runs the unmodified flat protocol over leaf
    /// partial-mean streams, so its machinery emits flat causes
    /// (`full_sync`, `violation_safezone`, …). Charging those names
    /// as-is would make them indistinguishable from intra-shard traffic
    /// in the merged two-tier ledger; this map folds them into the
    /// three inter-tier causes instead. Already-tiered causes map to
    /// themselves.
    pub fn at_root(self) -> CommCause {
        match self {
            CommCause::Registration
            | CommCause::ViolationNeighborhood
            | CommCause::ViolationSafeZone
            | CommCause::ViolationFaulty => CommCause::LeafReport,
            CommCause::Eviction | CommCause::Rejoin => CommCause::ShardRebalance,
            CommCause::LeafReport | CommCause::ShardRebalance => self,
            _ => CommCause::RootSync,
        }
    }

    /// Classify a node→coordinator message by its protocol content.
    /// `LocalVector` replies answer a coordinator pull, so their cause is
    /// the pull's — callers that know the eliciting request should prefer
    /// inheriting its cause and use this only for unsolicited messages.
    pub fn of_node_message(msg: &NodeMessage) -> CommCause {
        match msg {
            NodeMessage::Violation { kind, .. } => match kind {
                ViolationKind::Uninitialized => CommCause::Registration,
                ViolationKind::Neighborhood => CommCause::ViolationNeighborhood,
                ViolationKind::SafeZone => CommCause::ViolationSafeZone,
                ViolationKind::FaultyConstraints => CommCause::ViolationFaulty,
            },
            NodeMessage::LocalVector { .. } => CommCause::FullSync,
        }
    }
}

/// Message/byte tallies for one ledger cell or rollup, split by
/// direction (`up` = node→coordinator, `down` = coordinator→node).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LedgerCell {
    pub up_msgs: u64,
    pub up_bytes: u64,
    pub down_msgs: u64,
    pub down_bytes: u64,
}

impl LedgerCell {
    /// Messages in both directions.
    pub fn msgs(&self) -> u64 {
        self.up_msgs + self.down_msgs
    }

    /// Bytes in both directions.
    pub fn bytes(&self) -> u64 {
        self.up_bytes + self.down_bytes
    }

    fn absorb(&mut self, other: &LedgerCell) {
        self.up_msgs += other.up_msgs;
        self.up_bytes += other.up_bytes;
        self.down_msgs += other.down_msgs;
        self.down_bytes += other.down_bytes;
    }
}

/// Per-cause rollup row, pre-rendered for `RunStats` serialization.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerEntry {
    /// [`CommCause::name`] of the row.
    pub cause: String,
    /// Messages in both directions.
    pub msgs: u64,
    /// Frame bytes in both directions.
    pub bytes: u64,
}

/// The communication ledger: frame tallies keyed (round, node, cause).
///
/// A `BTreeMap` keeps iteration deterministic, so rollups and rendered
/// tables are byte-stable across same-seed runs.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CommLedger {
    cells: BTreeMap<(u64, NodeId, CommCause), LedgerCell>,
}

impl CommLedger {
    /// Charge one node→coordinator frame of `bytes` to `cause`.
    pub fn charge_up(&mut self, round: u64, node: NodeId, cause: CommCause, bytes: u64) {
        let cell = self.cells.entry((round, node, cause)).or_default();
        cell.up_msgs += 1;
        cell.up_bytes += bytes;
    }

    /// Charge one coordinator→node frame of `bytes` to `cause`.
    pub fn charge_down(&mut self, round: u64, node: NodeId, cause: CommCause, bytes: u64) {
        let cell = self.cells.entry((round, node, cause)).or_default();
        cell.down_msgs += 1;
        cell.down_bytes += bytes;
    }

    /// Iterate all cells in (round, node, cause) order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u64, NodeId, CommCause), &LedgerCell)> {
        self.cells.iter()
    }

    /// Grand totals over every cell.
    pub fn totals(&self) -> LedgerCell {
        let mut t = LedgerCell::default();
        for cell in self.cells.values() {
            t.absorb(cell);
        }
        t
    }

    /// Rollup by cause, in `CommCause` order.
    pub fn by_cause(&self) -> BTreeMap<CommCause, LedgerCell> {
        let mut out: BTreeMap<CommCause, LedgerCell> = BTreeMap::new();
        for ((_, _, cause), cell) in &self.cells {
            out.entry(*cause).or_default().absorb(cell);
        }
        out
    }

    /// Rollup by node, for per-node imbalance questions.
    pub fn by_node(&self) -> BTreeMap<NodeId, LedgerCell> {
        let mut out: BTreeMap<NodeId, LedgerCell> = BTreeMap::new();
        for ((_, node, _), cell) in &self.cells {
            out.entry(*node).or_default().absorb(cell);
        }
        out
    }

    /// The per-cause rollup as serializable [`LedgerEntry`] rows.
    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.by_cause()
            .into_iter()
            .map(|(cause, cell)| LedgerEntry {
                cause: cause.name().to_string(),
                msgs: cell.msgs(),
                bytes: cell.bytes(),
            })
            .collect()
    }

    /// Fold another ledger's cells into this one, cell by cell.
    ///
    /// The fleet uses this to merge each leaf fabric's intra-shard
    /// ledger and the root fabric's inter-tier ledger into one two-tier
    /// ledger whose totals conserve against the fleet-wide frame
    /// counters. Keys collide only when both ledgers charged the same
    /// (round, node, cause) — the cells then add, which is exactly the
    /// conservation-preserving behavior.
    pub fn absorb_ledger(&mut self, other: &CommLedger) {
        for (key, cell) in &other.cells {
            self.cells.entry(*key).or_default().absorb(cell);
        }
    }

    /// Verify conservation against externally counted totals; returns a
    /// description of the first mismatch, `None` when exact.
    pub fn check_conservation(&self, total_msgs: u64, total_bytes: u64) -> Option<String> {
        let t = self.totals();
        if t.msgs() != total_msgs {
            return Some(format!(
                "ledger msgs {} != counter msgs {total_msgs}",
                t.msgs()
            ));
        }
        if t.bytes() != total_bytes {
            return Some(format!(
                "ledger bytes {} != counter bytes {total_bytes}",
                t.bytes()
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_aggregate_per_round_node_cause() {
        let mut l = CommLedger::default();
        l.charge_up(0, 1, CommCause::Registration, 30);
        l.charge_up(0, 1, CommCause::Registration, 30);
        l.charge_down(0, 1, CommCause::FullSync, 100);
        l.charge_down(1, 2, CommCause::LazySync, 50);

        let cell = l.cells[&(0, 1, CommCause::Registration)];
        assert_eq!((cell.up_msgs, cell.up_bytes), (2, 60));
        assert_eq!((cell.down_msgs, cell.down_bytes), (0, 0));

        let totals = l.totals();
        assert_eq!(totals.msgs(), 4);
        assert_eq!(totals.bytes(), 210);

        let by_cause = l.by_cause();
        assert_eq!(by_cause[&CommCause::FullSync].down_bytes, 100);
        assert_eq!(by_cause[&CommCause::LazySync].msgs(), 1);
        assert_eq!(l.by_node()[&1].bytes(), 160);

        assert_eq!(l.check_conservation(4, 210), None);
        assert!(l.check_conservation(5, 210).is_some());
        assert!(l.check_conservation(4, 211).is_some());
    }

    #[test]
    fn entries_render_in_cause_order() {
        let mut l = CommLedger::default();
        l.charge_down(3, 0, CommCause::Resync, 40);
        l.charge_up(2, 0, CommCause::ViolationSafeZone, 25);
        let rows = l.entries();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cause, "violation_safezone");
        assert_eq!(rows[1].cause, "resync");
        assert_eq!(rows[1].bytes, 40);
    }

    #[test]
    fn node_messages_classify_by_violation_kind() {
        let v = |kind| NodeMessage::Violation {
            node: 0,
            kind,
            local_vector: vec![],
            epoch: 0,
        };
        assert_eq!(
            CommCause::of_node_message(&v(ViolationKind::Uninitialized)),
            CommCause::Registration
        );
        assert_eq!(
            CommCause::of_node_message(&v(ViolationKind::SafeZone)),
            CommCause::ViolationSafeZone
        );
        assert_eq!(
            CommCause::of_node_message(&v(ViolationKind::Neighborhood)),
            CommCause::ViolationNeighborhood
        );
        assert_eq!(
            CommCause::of_node_message(&v(ViolationKind::FaultyConstraints)),
            CommCause::ViolationFaulty
        );
        let reply = NodeMessage::LocalVector {
            node: 0,
            vector: vec![],
            epoch: 0,
        };
        assert_eq!(CommCause::of_node_message(&reply), CommCause::FullSync);
    }

    #[test]
    fn root_lift_folds_flat_causes_into_tier_causes() {
        use CommCause::*;
        for c in [
            Registration,
            ViolationNeighborhood,
            ViolationSafeZone,
            ViolationFaulty,
        ] {
            assert_eq!(c.at_root(), LeafReport);
        }
        for c in [Eviction, Rejoin] {
            assert_eq!(c.at_root(), ShardRebalance);
        }
        for c in [FullSync, LazySync, Resync, Retransmit, Heartbeat, Recovery] {
            assert_eq!(c.at_root(), RootSync);
        }
        // Already-tiered causes are fixed points, so lifting is idempotent.
        for c in [LeafReport, RootSync, ShardRebalance] {
            assert_eq!(c.at_root(), c);
            assert_eq!(c.at_root().at_root(), c.at_root());
        }
    }

    #[test]
    fn absorb_ledger_adds_cells_and_conserves() {
        let mut a = CommLedger::default();
        a.charge_up(0, 1, CommCause::Registration, 30);
        a.charge_down(2, 0, CommCause::FullSync, 80);

        let mut b = CommLedger::default();
        // Colliding key: same (round, node, cause) as in `a`.
        b.charge_up(0, 1, CommCause::Registration, 30);
        b.charge_up(1, 3, CommCause::LeafReport, 44);
        b.charge_down(1, 3, CommCause::RootSync, 90);

        let (ta, tb) = (a.totals(), b.totals());
        a.absorb_ledger(&b);
        assert_eq!(
            a.check_conservation(ta.msgs() + tb.msgs(), ta.bytes() + tb.bytes()),
            None
        );
        let cell = a.cells[&(0, 1, CommCause::Registration)];
        assert_eq!((cell.up_msgs, cell.up_bytes), (2, 60));
        assert_eq!(a.by_cause()[&CommCause::LeafReport].up_bytes, 44);
    }
}
