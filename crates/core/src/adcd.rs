//! ADCD: Automatic DC Decomposition (paper §3.1–§3.4).
//!
//! Given the monitored function, a reference point `x0`, and (for ADCD-X)
//! a neighborhood `B`, this module produces the DC decomposition from
//! which safe zones are built:
//!
//! * **ADCD-X** (Lemma 1) — numerically bound the extreme eigenvalues of
//!   the Hessian over `B`, then add/subtract the isotropic quadratic
//!   `½|λ⁻_min|·‖x - x0‖²` / `½λ⁺_max·‖x - x0‖²`.
//! * **ADCD-E** (Lemma 2) — for constant Hessians, split `H = H⁺ + H⁻`
//!   by eigendecomposition; strictly larger safe zones than ADCD-X for
//!   this class (the paper proves `H_ǧ₁ ⪰ H_ǧ₂`).
//!
//! The convex-vs-concave choice follows the DC heuristic of §3.4.

use automon_autodiff::HvpEvaluator;
use automon_linalg::{
    EigenWorkspace, LanczosOptions, LanczosStats, LanczosWorkspace, Matrix, RitzSide,
    SpectralBackend, SymEigen, SymOperator,
};
use automon_opt::{nelder_mead, Bounds, OptimizeOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{EigenObjective, EigenSearch, MonitorConfig};
use crate::par::par_map_with;
use crate::safezone::{Curvature, DcKind, NeighborhoodBox};
use crate::MonitoredFunction;

/// Which ADCD variant produced a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AdcdKind {
    /// Extreme-eigenvalue variant for general functions (paper §3.1).
    X,
    /// Eigendecomposition variant for constant-Hessian functions (§3.2).
    E,
}

/// Deterministic counters describing the spectral work one
/// decomposition performed.
///
/// On the matrix-free Lanczos path ([`SpectralBackend::Ql`] with
/// `EigenObjective::Exact` ADCD-X) every field is an exact count. The
/// materialized paths (the Jacobi backend, or the Gershgorin probe
/// objective) report the structural estimates PR 3's telemetry used —
/// Hessian evaluations derived from the probe budget, Nelder–Mead
/// polish evaluations excluded. Either way the numbers are functions of
/// the configuration and the algorithm's structure, never of timers, so
/// same-seed runs produce identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpectralStats {
    /// Dense Hessians materialized. On the Lanczos path this stays at
    /// the record-once baseline (2: the reference point and the box
    /// center) no matter how many probe points the search evaluates.
    pub hessian_materializations: u64,
    /// Eigen-search objective evaluations (probe points; on the Lanczos
    /// path, polish evaluations too).
    pub eigen_probes: u64,
    /// Lanczos iterations across all probe evaluations (0 on the
    /// materialized paths).
    pub lanczos_iterations: u64,
    /// Gram-Schmidt reorthogonalization passes inside Lanczos.
    pub reorth_passes: u64,
    /// Hessian-vector products applied by the matrix-free search.
    pub hvp_applies: u64,
}

/// The result of running ADCD at a reference point.
#[derive(Debug, Clone)]
pub struct DcDecomposition {
    /// Variant used.
    pub kind: AdcdKind,
    /// Convex or concave difference, per the DC heuristic (or override).
    pub dc: DcKind,
    /// The convex penalty for the chosen representation.
    pub curvature: Curvature,
    /// `λ̂_min` found over `B` (for E: the true smallest eigenvalue).
    pub lambda_min_hat: f64,
    /// `λ̂_max` found over `B` (for E: the true largest eigenvalue).
    pub lambda_max_hat: f64,
    /// Spectral work counters for this decomposition.
    pub spectral: SpectralStats,
}

/// Run ADCD for `f` at `x0`.
///
/// `neighborhood` is required for ADCD-X (it is the search region `S = B`
/// of eq. 3) and ignored by ADCD-E, whose decomposition is valid on all of
/// `D`. The variant is picked from `f.has_constant_hessian()` unless
/// `cfg.adcd_override` forces one; `cfg.dc_override` likewise bypasses the
/// DC heuristic.
pub fn decompose(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    neighborhood: Option<&NeighborhoodBox>,
    cfg: &MonitorConfig,
) -> DcDecomposition {
    decompose_with_seeds(f, x0, neighborhood, cfg, None).0
}

/// Ritz vectors captured from the two Lanczos extreme streams of an
/// ADCD-X search, usable to warm-start a later search at a nearby
/// reference point (see [`crate::cache::DecompCache`]).
///
/// Warm starts change the Lanczos trajectory: the converged extremes
/// agree with a cold start only to solver tolerance, not bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct RitzSeeds {
    /// Ritz vector from the λ_min stream.
    pub min: Vec<f64>,
    /// Ritz vector from the λ_max stream.
    pub max: Vec<f64>,
}

/// [`decompose`], optionally warm-starting the matrix-free Lanczos
/// streams from `seeds` and returning the Ritz vectors the search
/// ended on (None on the ADCD-E and materialized ADCD-X paths).
///
/// With `seeds: None` the computed decomposition is bit-identical to
/// [`decompose`] — capturing the outgoing Ritz vectors reads solver
/// state without perturbing it.
pub fn decompose_with_seeds(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    neighborhood: Option<&NeighborhoodBox>,
    cfg: &MonitorConfig,
    seeds: Option<&RitzSeeds>,
) -> (DcDecomposition, Option<RitzSeeds>) {
    let kind = cfg.adcd_override.unwrap_or(if f.has_constant_hessian() {
        AdcdKind::E
    } else {
        AdcdKind::X
    });
    match kind {
        AdcdKind::E => (decompose_e(f, x0, cfg), None),
        AdcdKind::X => {
            let b = neighborhood.expect("ADCD-X requires a neighborhood");
            decompose_x(f, x0, b, cfg, seeds)
        }
    }
}

/// [`decompose`] wrapped in telemetry.
///
/// With a disabled handle this is a tail call into `decompose` — the
/// observed path adds exactly one branch, keeping the PR 1 hot-path
/// numbers intact. With a live handle it wraps the decomposition in an
/// `adcd_decompose` span and accounts the search's deterministic cost:
/// op counts derived from the algorithm's structure (probe counts and
/// the Nelder–Mead iteration budget from [`EigenSearch`]), never from
/// timers, so same-seed runs trace identically.
pub fn decompose_observed(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    neighborhood: Option<&NeighborhoodBox>,
    cfg: &MonitorConfig,
    tel: &automon_obs::Telemetry,
) -> DcDecomposition {
    decompose_observed_with_seeds(f, x0, neighborhood, cfg, None, tel).0
}

/// [`decompose_observed`] threading warm-start seeds through (see
/// [`decompose_with_seeds`]).
pub fn decompose_observed_with_seeds(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    neighborhood: Option<&NeighborhoodBox>,
    cfg: &MonitorConfig,
    seeds: Option<&RitzSeeds>,
    tel: &automon_obs::Telemetry,
) -> (DcDecomposition, Option<RitzSeeds>) {
    if !tel.is_enabled() {
        return decompose_with_seeds(f, x0, neighborhood, cfg, seeds);
    }
    let span = tel.span("adcd_decompose");
    let (dec, ritz) = decompose_with_seeds(f, x0, neighborhood, cfg, seeds);
    let es = &cfg.eigen_search;
    // Deterministic work accounting, read off the decomposition's own
    // spectral counters: exact on the matrix-free Lanczos path,
    // structural estimates on the materialized paths (see
    // [`SpectralStats`]).
    let sp = dec.spectral;
    let nm_budget = match dec.kind {
        AdcdKind::E => 0u64,
        AdcdKind::X => 2 * es.nm_iters as u64,
    };
    tel.counter(
        "automon_adcd_decompositions_total",
        "ADCD decompositions performed",
    )
    .inc();
    tel.counter(
        "automon_adcd_hessian_replays_total",
        "Hessian evaluations spent in ADCD (deterministic count)",
    )
    .add(sp.hessian_materializations);
    tel.counter(
        "automon_adcd_eigen_probes_total",
        "Eigen-search probe points evaluated",
    )
    .add(sp.eigen_probes);
    tel.counter(
        "automon_adcd_lanczos_iters_total",
        "Lanczos iterations spent in the matrix-free eigen search",
    )
    .add(sp.lanczos_iterations);
    tel.counter(
        "automon_adcd_reorth_passes_total",
        "Gram-Schmidt reorthogonalization passes over the Krylov basis",
    )
    .add(sp.reorth_passes);
    tel.add_ops(sp.hessian_materializations + sp.lanczos_iterations + nm_budget);
    tel.event(
        "adcd_split",
        &[
            (
                // "kind" is a trace-envelope key; the split flavor gets
                // its own name.
                "split",
                match dec.kind {
                    AdcdKind::E => "E",
                    AdcdKind::X => "X",
                }
                .into(),
            ),
            ("lambda_min_hat", dec.lambda_min_hat.into()),
            ("lambda_max_hat", dec.lambda_max_hat.into()),
            ("hessian_replays", sp.hessian_materializations.into()),
            ("lanczos_iters", sp.lanczos_iterations.into()),
        ],
    );
    drop(span);
    (dec, ritz)
}

/// ADCD-E (paper Lemma 2).
fn decompose_e(f: &dyn MonitoredFunction, x0: &[f64], cfg: &MonitorConfig) -> DcDecomposition {
    // A constant Hessian was already evaluated once during detection;
    // reuse it instead of paying d more Hessian-vector products here.
    // When ADCD-E is forced on a function whose Hessian was not detected
    // constant, fall back to evaluating at the reference point.
    let cached = f.constant_hessian();
    let spectral = SpectralStats {
        hessian_materializations: u64::from(cached.is_none()),
        ..SpectralStats::default()
    };
    let h = cached.unwrap_or_else(|| f.hessian(x0));
    let eig = SymEigen::with_backend(&h, cfg.spectral_backend);
    let (lmin, lmax) = (eig.lambda_min(), eig.lambda_max());
    // DC heuristic for constant Hessians reduces to |λ_min| ≤ λ_max
    // (paper §3.4).
    let dc = cfg.dc_override.unwrap_or(if lmin.abs() <= lmax {
        DcKind::ConvexDiff
    } else {
        DcKind::ConcaveDiff
    });
    let curvature = match dc {
        // Convex difference subtracts the NSD part: q(Δ) = ½·Δᵀ(-H⁻)Δ.
        DcKind::ConvexDiff => Curvature::Quadratic(eig.nsd_part().scale(-1.0)),
        // Concave difference subtracts the PSD part: q(Δ) = ½·Δᵀ H⁺ Δ.
        DcKind::ConcaveDiff => Curvature::Quadratic(eig.psd_part()),
        DcKind::AdmissibleOnly => unreachable!("ablation bypasses decompose"),
    };
    DcDecomposition {
        kind: AdcdKind::E,
        dc,
        curvature,
        lambda_min_hat: lmin,
        lambda_max_hat: lmax,
        spectral,
    }
}

/// ADCD-X (paper Lemma 1 + eq. 3).
fn decompose_x(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    neighborhood: &NeighborhoodBox,
    cfg: &MonitorConfig,
    seeds: Option<&RitzSeeds>,
) -> (DcDecomposition, Option<RitzSeeds>) {
    let bounds = neighborhood.to_bounds();
    let workers = cfg.parallelism.workers();
    let backend = cfg.spectral_backend;
    let mut spectral = SpectralStats::default();
    let mut ritz_out = None;
    let (lambda_min_hat, lambda_max_hat, lambda0_min, lambda0_max) = if backend
        == SpectralBackend::Ql
        && cfg.eigen_objective == EigenObjective::Exact
    {
        // Matrix-free two-stream search: the same strictly-sequential
        // per-stream code runs for every `Parallelism` setting, so
        // results are bit-identical across worker counts by
        // construction.
        let (lmin, lmax, l0min, l0max, ritz) =
            search_extremes_lanczos(f, x0, &bounds, &cfg.eigen_search, workers, seeds, &mut spectral);
        ritz_out = Some(ritz);
        (lmin, lmax, l0min, l0max)
    } else {
        let probes = 2 * cfg.eigen_search.probes as u64;
        spectral.eigen_probes = probes;
        if workers == 0 {
            // Legacy one-probe-at-a-time path, kept verbatim: the
            // batched pipeline below is proptested bit-identical
            // against it.
            spectral.hessian_materializations = 3 + probes;
            let lmin = search_extreme(
                f,
                &bounds,
                &cfg.eigen_search,
                cfg.eigen_objective,
                backend,
                Extreme::Min,
            );
            let lmax = search_extreme(
                f,
                &bounds,
                &cfg.eigen_search,
                cfg.eigen_objective,
                backend,
                Extreme::Max,
            );
            let h0 = f.hessian(x0);
            let eig0 = SymEigen::with_backend(&h0, backend);
            (lmin, lmax, eig0.lambda_min(), eig0.lambda_max())
        } else {
            spectral.hessian_materializations = 2 + probes;
            search_extremes_batched(
                f,
                x0,
                &bounds,
                &cfg.eigen_search,
                cfg.eigen_objective,
                backend,
                workers,
            )
        }
    };
    // λ⁻ = min(0, λ̂_min), λ⁺ = max(0, λ̂_max).
    let lambda_minus_abs = (-lambda_min_hat).max(0.0);
    let lambda_plus = lambda_max_hat.max(0.0);

    // DC heuristic (paper §3.4) at the reference point:
    //   λ_min(H_ǧ) + λ_min(H_ȟ) ≤ |λ_max(H_ĥ) + λ_max(H_ĝ)|  → convex.
    // With the Lemma-1 decomposition this becomes
    //   λ_min(H(x0)) + 2|λ⁻| ≤ |λ_max(H(x0)) - 2λ⁺|.
    // The heuristic uses the raw extremes; the safety margin only widens
    // the final curvature penalty, it must not flip the representation.
    let lhs = lambda0_min + 2.0 * lambda_minus_abs;
    let rhs = (lambda0_max - 2.0 * lambda_plus).abs();
    let dc = cfg
        .dc_override
        .unwrap_or(if lhs <= rhs { DcKind::ConvexDiff } else { DcKind::ConcaveDiff });
    let curvature = match dc {
        DcKind::ConvexDiff => Curvature::Scalar(lambda_minus_abs * cfg.eigen_margin),
        DcKind::ConcaveDiff => Curvature::Scalar(lambda_plus * cfg.eigen_margin),
        DcKind::AdmissibleOnly => unreachable!("ablation bypasses decompose"),
    };
    (
        DcDecomposition {
            kind: AdcdKind::X,
            dc,
            curvature,
            lambda_min_hat,
            lambda_max_hat,
            spectral,
        },
        ritz_out,
    )
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

/// Gershgorin disc bounds on the spectrum of a symmetric matrix:
/// `(min_i h_ii - R_i, max_i h_ii + R_i)` with `R_i = Σ_{j≠i} |h_ij|`.
fn gershgorin_bounds(h: &automon_linalg::Matrix) -> (f64, f64) {
    let n = h.rows();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut radius = 0.0;
        for j in 0..n {
            if i != j {
                radius += h[(i, j)].abs();
            }
        }
        lo = lo.min(h[(i, i)] - radius);
        hi = hi.max(h[(i, i)] + radius);
    }
    (lo, hi)
}

/// Numerically bound an extreme eigenvalue of `H(x)` over a box:
/// seeded probing of the box (always including its center) followed by a
/// box-projected Nelder–Mead polish from the incumbent.
fn search_extreme(
    f: &dyn MonitoredFunction,
    bounds: &Bounds,
    es: &EigenSearch,
    objective: crate::config::EigenObjective,
    backend: SpectralBackend,
    which: Extreme,
) -> f64 {
    // Objective in minimization form.
    let eval = |x: &[f64]| -> f64 {
        let h = f.hessian(x);
        match objective {
            crate::config::EigenObjective::Exact => {
                let eig = SymEigen::with_backend(&h, backend);
                match which {
                    Extreme::Min => eig.lambda_min(),
                    Extreme::Max => -eig.lambda_max(),
                }
            }
            crate::config::EigenObjective::Gershgorin => {
                let (lo, hi) = gershgorin_bounds(&h);
                match which {
                    Extreme::Min => lo,
                    Extreme::Max => -hi,
                }
            }
        }
    };

    let mut best_x = bounds.center();
    let mut best_v = eval(&best_x);
    let mut rng = SmallRng::seed_from_u64(es.seed ^ (which == Extreme::Max) as u64);
    let d = bounds.dim();
    for _ in 0..es.probes {
        let p: Vec<f64> = (0..d)
            .map(|i| {
                if bounds.lo[i] < bounds.hi[i] {
                    rng.gen_range(bounds.lo[i]..=bounds.hi[i])
                } else {
                    bounds.lo[i]
                }
            })
            .collect();
        let v = eval(&p);
        if v < best_v {
            best_v = v;
            best_x = p;
        }
    }
    if es.nm_iters > 0 && d <= es.nm_dim_cap {
        let opts = OptimizeOptions {
            max_iters: es.nm_iters,
            tol: 1e-10,
            ..Default::default()
        };
        let mut obj = eval;
        let r = nelder_mead(&mut obj, &best_x, bounds, &opts);
        if r.value < best_v {
            best_v = r.value;
        }
    }
    match which {
        Extreme::Min => best_v,
        Extreme::Max => -best_v,
    }
}

/// Both extreme-eigenvalue searches plus the DC heuristic's
/// reference-point spectrum, batched and fanned across `workers`
/// threads. Returns `(λ̂_min, λ̂_max, λ_min(H(x0)), λ_max(H(x0)))`.
///
/// Bit-identical to running [`search_extreme`] for each extreme followed
/// by `SymEigen::new(&f.hessian(x0))`, for every `workers ≥ 1`:
///
/// * probe points are pre-generated from the same per-search seeded
///   streams the sequential loop consumes (generation never depends on
///   evaluation results, so hoisting it is exact);
/// * per-point Hessians come from [`HessianEvaluator`] replays and
///   eigenvalues from [`EigenWorkspace`], both bit-identical to the
///   `f.hessian` + [`SymEigen`] pair they replace — and allocation-free
///   across points, which is where the single-thread speedup lives;
/// * [`par_map_with`] pins each result to its item's slot, and the
///   argmin reductions then replay the sequential order (center first,
///   probes in stream order, strict `<`);
/// * the center Hessian is decomposed once and shared by both searches —
///   the sequential path decomposes the same matrix twice and Jacobi is
///   deterministic, so the shared values match both uses exactly.
///
/// [`HessianEvaluator`]: automon_autodiff::HessianEvaluator
fn search_extremes_batched(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    bounds: &Bounds,
    es: &EigenSearch,
    objective: EigenObjective,
    backend: SpectralBackend,
    workers: usize,
) -> (f64, f64, f64, f64) {
    let d = bounds.dim();
    let gen_probes = |which: Extreme| -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(es.seed ^ (which == Extreme::Max) as u64);
        (0..es.probes)
            .map(|_| {
                (0..d)
                    .map(|i| {
                        if bounds.lo[i] < bounds.hi[i] {
                            rng.gen_range(bounds.lo[i]..=bounds.hi[i])
                        } else {
                            bounds.lo[i]
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let min_probes = gen_probes(Extreme::Min);
    let max_probes = gen_probes(Extreme::Max);
    let center = bounds.center();

    let mut points: Vec<&[f64]> = Vec::with_capacity(2 + 2 * es.probes);
    points.push(&center);
    points.push(x0);
    points.extend(min_probes.iter().map(Vec::as_slice));
    points.extend(max_probes.iter().map(Vec::as_slice));

    let extremes: Vec<(f64, f64)> = par_map_with(
        &points,
        workers,
        || (f.hessian_eval(), EigenWorkspace::new(), Matrix::zeros(d, d)),
        |(he, ws, h), idx, &x| {
            he.hessian_into(x, h);
            // x0 (index 1) feeds the DC heuristic, which reads exact
            // eigenvalues regardless of the probe objective.
            if idx == 1 || objective == EigenObjective::Exact {
                ws.extreme_eigenvalues_backend(h, backend)
            } else {
                gershgorin_bounds(h)
            }
        },
    );
    let (lambda0_min, lambda0_max) = extremes[1];

    let signed = |which: Extreme, (lo, hi): (f64, f64)| match which {
        Extreme::Min => lo,
        Extreme::Max => -hi,
    };
    // The argmin replays the sequential order: center first, then
    // probes in stream order under strict `<`. `None` keeps the center.
    let reduce = |which: Extreme, probe_vals: &[(f64, f64)]| {
        let mut best_v = signed(which, extremes[0]);
        let mut best_i: Option<usize> = None;
        for (i, &lohi) in probe_vals.iter().enumerate() {
            let v = signed(which, lohi);
            if v < best_v {
                best_v = v;
                best_i = Some(i);
            }
        }
        (best_v, best_i)
    };
    let (min_v, min_i) = reduce(Extreme::Min, &extremes[2..2 + es.probes]);
    let (max_v, max_i) = reduce(Extreme::Max, &extremes[2 + es.probes..]);
    let min_x: &[f64] = min_i.map_or(&center, |i| &min_probes[i]);
    let max_x: &[f64] = max_i.map_or(&center, |i| &max_probes[i]);

    // Nelder–Mead is adaptive, so each polish stays sequential
    // internally; the two extremes' polishes are independent and run
    // concurrently when a second worker is available.
    let polish = |which: Extreme, start: &[f64], incumbent: f64| -> f64 {
        let mut he = f.hessian_eval();
        let mut ws = EigenWorkspace::new();
        let mut h = Matrix::zeros(d, d);
        let mut eval = |x: &[f64]| -> f64 {
            he.hessian_into(x, &mut h);
            match objective {
                EigenObjective::Exact => signed(which, ws.extreme_eigenvalues_backend(&h, backend)),
                EigenObjective::Gershgorin => signed(which, gershgorin_bounds(&h)),
            }
        };
        let opts = OptimizeOptions {
            max_iters: es.nm_iters,
            tol: 1e-10,
            ..Default::default()
        };
        let r = nelder_mead(&mut eval, start, bounds, &opts);
        if r.value < incumbent {
            r.value
        } else {
            incumbent
        }
    };
    let (min_v, max_v) = if es.nm_iters > 0 && d <= es.nm_dim_cap {
        if workers >= 2 {
            let polish = &polish;
            crossbeam::scope(|s| {
                let hmin = s.spawn(move |_| polish(Extreme::Min, min_x, min_v));
                let hmax = s.spawn(move |_| polish(Extreme::Max, max_x, max_v));
                (
                    hmin.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                    hmax.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                )
            })
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
        } else {
            (
                polish(Extreme::Min, min_x, min_v),
                polish(Extreme::Max, max_x, max_v),
            )
        }
    } else {
        (min_v, max_v)
    };

    (min_v, -max_v, lambda0_min, lambda0_max)
}

/// [`SymOperator`] view of `v ↦ H(x)·v` at a fixed probe point,
/// backed by a reusable [`HvpEvaluator`].
struct HvpProbeOp<'a> {
    he: &'a mut (dyn HvpEvaluator + 'a),
    x: &'a [f64],
}

impl SymOperator for HvpProbeOp<'_> {
    fn dim(&self) -> usize {
        self.he.dim()
    }
    fn apply(&mut self, v: &[f64], out: &mut [f64]) {
        self.he.hvp_into(self.x, v, out);
    }
}

/// ADCD-X extreme search, matrix-free (the [`SpectralBackend::Ql`] +
/// [`EigenObjective::Exact`] path). Returns
/// `(λ̂_min, λ̂_max, λ_min(H(x0)), λ_max(H(x0)))`.
///
/// Materializes exactly two Hessians — `H(x0)` for the DC heuristic and
/// `H(center)` to seed everything else — and then never touches a dense
/// Hessian again: each probe point's extreme eigenvalues come from a
/// [`LanczosWorkspace`] driven by Hessian-vector products through
/// [`HvpEvaluator`] (record-once/replay-many on `AutoDiffFn`). The
/// center decomposition supplies each search stream's incumbent value
/// and initial Ritz vector; its Gershgorin enclosure supplies the
/// Lanczos shift (midpoint) and convergence scale (half-width), both
/// valid across the neighborhood to the extent the Hessian varies
/// smoothly — and only used for seeding/scaling, never correctness.
///
/// The search runs as two independent streams, one per extreme. Within
/// a stream everything is strictly sequential: probes are drawn from
/// the same seeded generator [`search_extreme`] uses and evaluated in
/// order, each Lanczos run warm-starting from the previous run's Ritz
/// vector, and the Nelder–Mead polish continues the same chain.
/// Parallelism only ever places the two whole streams on two threads,
/// so results are bit-identical for every [`crate::Parallelism`]
/// setting — including `Sequential` — by construction.
fn search_extremes_lanczos(
    f: &dyn MonitoredFunction,
    x0: &[f64],
    bounds: &Bounds,
    es: &EigenSearch,
    workers: usize,
    seeds: Option<&RitzSeeds>,
    stats: &mut SpectralStats,
) -> (f64, f64, f64, f64, RitzSeeds) {
    let d = bounds.dim();
    let center = bounds.center();
    let h0 = f.hessian(x0);
    let eig0 = SymEigen::new(&h0);
    let hc = f.hessian(&center);
    let eigc = SymEigen::new(&hc);
    stats.hessian_materializations = 2;

    let (glo, ghi) = gershgorin_bounds(&hc);
    let shift = 0.5 * (glo + ghi);
    let scale = 0.5 * (ghi - glo);

    let run_stream = |which: Extreme| -> (f64, LanczosStats, u64, Vec<f64>) {
        let mut ls = LanczosStats::default();
        let mut evals = 0u64;
        let (side, col) = match which {
            Extreme::Min => (RitzSide::Smallest, 0),
            Extreme::Max => (RitzSide::Largest, d - 1),
        };
        let mut ws = LanczosWorkspace::new();
        // A cached warm-start seed (from a prior search in the same
        // cell) replaces the center eigenvector as the initial Krylov
        // direction; H(center) is still materialized — the incumbent
        // and the Gershgorin shift/scale anchor correctness.
        let seed = seeds
            .map(|s| match which {
                Extreme::Min => &s.min,
                Extreme::Max => &s.max,
            })
            .filter(|v| v.len() == d);
        let start: Vec<f64> = match seed {
            Some(v) => v.clone(),
            None => (0..d).map(|i| eigc.vectors[(i, col)]).collect(),
        };
        ws.set_start(&start);
        let mut he = f.hvp_eval();
        let lopts = LanczosOptions::default();
        let mut eval = |x: &[f64]| -> f64 {
            evals += 1;
            let mut op = HvpProbeOp { he: &mut *he, x };
            let (lo, hi) = ws.extremes(&mut op, shift, scale, side, &lopts, &mut ls);
            match which {
                Extreme::Min => lo,
                Extreme::Max => -hi,
            }
        };

        // The center's exact eigenvalue is the incumbent: the center was
        // already decomposed to seed the stream, so the probe loop never
        // re-evaluates it.
        let mut best_v = match which {
            Extreme::Min => eigc.lambda_min(),
            Extreme::Max => -eigc.lambda_max(),
        };
        let mut best_x = center.clone();
        let mut rng = SmallRng::seed_from_u64(es.seed ^ (which == Extreme::Max) as u64);
        for _ in 0..es.probes {
            let p: Vec<f64> = (0..d)
                .map(|i| {
                    if bounds.lo[i] < bounds.hi[i] {
                        rng.gen_range(bounds.lo[i]..=bounds.hi[i])
                    } else {
                        bounds.lo[i]
                    }
                })
                .collect();
            let v = eval(&p);
            if v < best_v {
                best_v = v;
                best_x = p;
            }
        }
        if es.nm_iters > 0 && d <= es.nm_dim_cap {
            let opts = OptimizeOptions {
                max_iters: es.nm_iters,
                tol: 1e-10,
                ..Default::default()
            };
            let r = nelder_mead(&mut eval, &best_x, bounds, &opts);
            if r.value < best_v {
                best_v = r.value;
            }
        }
        // After the last evaluation the workspace start vector is the
        // chosen side's converged Ritz vector (or the untouched seed if
        // nothing was evaluated) — capture it for the cache.
        (best_v, ls, evals, ws.start_vector().to_vec())
    };

    let (min_res, max_res) = if workers >= 2 {
        let run = &run_stream;
        crossbeam::scope(|s| {
            let hmin = s.spawn(move |_| run(Extreme::Min));
            let hmax = s.spawn(move |_| run(Extreme::Max));
            (
                hmin.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                hmax.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
            )
        })
        .unwrap_or_else(|e| std::panic::resume_unwind(e))
    } else {
        (run_stream(Extreme::Min), run_stream(Extreme::Max))
    };

    // Merge counters in fixed min-then-max order.
    let (min_v, min_ls, min_evals, min_ritz) = min_res;
    let (max_v, max_ls, max_evals, max_ritz) = max_res;
    stats.eigen_probes = min_evals + max_evals;
    stats.lanczos_iterations = min_ls.iterations + max_ls.iterations;
    stats.reorth_passes = min_ls.reorth_passes + max_ls.reorth_passes;
    stats.hvp_applies = min_ls.applies + max_ls.applies;

    (
        min_v,
        -max_v,
        eig0.lambda_min(),
        eig0.lambda_max(),
        RitzSeeds {
            min: min_ritz,
            max: max_ritz,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::safezone::NeighborhoodBox;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_linalg::Matrix;

    struct Saddle;
    impl ScalarFn for Saddle {
        fn dim(&self) -> usize {
            2
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            // f = -x₀² + x₁²: constant Hessian diag(-2, 2).
            -x[0] * x[0] + x[1] * x[1]
        }
    }

    struct Sin1;
    impl ScalarFn for Sin1 {
        fn dim(&self) -> usize {
            1
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            x[0].sin()
        }
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig::builder(0.1).build()
    }

    #[test]
    fn saddle_gets_adcd_e_with_exact_split() {
        let f = AutoDiffFn::new(Saddle);
        assert!(automon_autodiff::DifferentiableFn::has_constant_hessian(&f));
        let d = decompose(&f, &[0.0, 0.0], None, &cfg());
        assert_eq!(d.kind, AdcdKind::E);
        assert!((d.lambda_min_hat + 2.0).abs() < 1e-9);
        assert!((d.lambda_max_hat - 2.0).abs() < 1e-9);
        // |λ_min| = λ_max → heuristic picks convex.
        assert_eq!(d.dc, DcKind::ConvexDiff);
        // Convex curvature is -H⁻ = diag(2, 0).
        match &d.curvature {
            Curvature::Quadratic(m) => {
                assert!(m.approx_eq(&Matrix::from_diag(&[2.0, 0.0]), 1e-9))
            }
            other => panic!("expected quadratic curvature, got {other:?}"),
        }
    }

    #[test]
    fn adcd_e_concave_override_uses_psd_part() {
        let f = AutoDiffFn::new(Saddle);
        let c = MonitorConfig::builder(0.1).dc(DcKind::ConcaveDiff).build();
        let d = decompose(&f, &[0.0, 0.0], None, &c);
        match &d.curvature {
            Curvature::Quadratic(m) => {
                assert!(m.approx_eq(&Matrix::from_diag(&[0.0, 2.0]), 1e-9))
            }
            other => panic!("expected quadratic curvature, got {other:?}"),
        }
    }

    #[test]
    fn sin_gets_adcd_x_with_tight_extremes() {
        // Over B = [π/2 - 1, π/2 + 1], f'' = -sin ranges in
        // [-1, -sin(π/2 - 1)] ≈ [-1, -0.54].
        let f = AutoDiffFn::new(Sin1);
        let x0 = [std::f64::consts::FRAC_PI_2];
        let b = NeighborhoodBox {
            lo: vec![x0[0] - 1.0],
            hi: vec![x0[0] + 1.0],
        };
        let d = decompose(&f, &x0, Some(&b), &cfg());
        assert_eq!(d.kind, AdcdKind::X);
        assert!((d.lambda_min_hat + 1.0).abs() < 1e-6, "{}", d.lambda_min_hat);
        assert!(
            (d.lambda_max_hat + (std::f64::consts::FRAC_PI_2 - 1.0).sin()).abs() < 1e-6,
            "{}",
            d.lambda_max_hat
        );
        // All curvature is negative → λ⁺ = 0; heuristic picks convex with
        // |λ⁻| = 1.
        assert_eq!(d.dc, DcKind::ConvexDiff);
        match d.curvature {
            Curvature::Scalar(c) => assert!((c - 1.0).abs() < 1e-6),
            ref other => panic!("expected scalar curvature, got {other:?}"),
        }
    }

    #[test]
    fn convex_function_yields_zero_penalty_convex_diff() {
        struct Norm;
        impl ScalarFn for Norm {
            fn dim(&self) -> usize {
                2
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                (x[0] * x[0] + x[1] * x[1] + S::from_f64(1.0)).sqrt()
            }
        }
        // √(‖x‖² + 1) is convex: λ_min ≥ 0 everywhere → λ⁻ = 0 and the DC
        // heuristic must choose the convex difference (paper §3.7).
        let f = AutoDiffFn::new(Norm);
        let b = NeighborhoodBox {
            lo: vec![-1.0, -1.0],
            hi: vec![1.0, 1.0],
        };
        let c = MonitorConfig::builder(0.1).adcd(AdcdKind::X).build();
        let d = decompose(&f, &[0.2, -0.1], Some(&b), &c);
        assert_eq!(d.dc, DcKind::ConvexDiff);
        match d.curvature {
            Curvature::Scalar(c) => assert!(c.abs() < 1e-9, "λ⁻ should be 0, got {c}"),
            ref other => panic!("expected scalar curvature, got {other:?}"),
        }
    }

    #[test]
    fn eigen_margin_scales_penalty() {
        let f = AutoDiffFn::new(Sin1);
        let x0 = [std::f64::consts::FRAC_PI_2];
        let b = NeighborhoodBox {
            lo: vec![x0[0] - 1.0],
            hi: vec![x0[0] + 1.0],
        };
        let c = MonitorConfig::builder(0.1).eigen_margin(2.0).build();
        let d = decompose(&f, &x0, Some(&b), &c);
        match d.curvature {
            Curvature::Scalar(c) => assert!((c - 2.0).abs() < 1e-5),
            ref other => panic!("expected scalar curvature, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "requires a neighborhood")]
    fn adcd_x_without_neighborhood_panics() {
        let f = AutoDiffFn::new(Sin1);
        let c = MonitorConfig::builder(0.1).adcd(AdcdKind::X).build();
        decompose(&f, &[0.0], None, &c);
    }

    struct Coupled;
    impl ScalarFn for Coupled {
        fn dim(&self) -> usize {
            3
        }
        fn call<S: Scalar>(&self, x: &[S]) -> S {
            (x[0] * x[1]).sin() + x[2].exp() * x[0] - x[1] / (x[2] + S::from_f64(2.0))
        }
    }

    fn coupled_box() -> NeighborhoodBox {
        NeighborhoodBox {
            lo: vec![-0.2, -0.7, -0.4],
            hi: vec![0.8, 0.3, 0.6],
        }
    }

    #[test]
    fn batched_search_bit_identical_to_sequential() {
        use crate::config::Parallelism;
        use automon_linalg::SpectralBackend;
        let f = AutoDiffFn::new(Coupled);
        let x0 = [0.3, -0.2, 0.1];
        let b = coupled_box();
        for backend in [SpectralBackend::Ql, SpectralBackend::Jacobi] {
            for objective in [false, true] {
                let build = |p: Parallelism| {
                    let mut c = MonitorConfig::builder(0.1)
                        .parallelism(p)
                        .spectral_backend(backend);
                    if objective {
                        c = c.gershgorin_bounds();
                    }
                    c.build()
                };
                let seq = decompose(&f, &x0, Some(&b), &build(Parallelism::Sequential));
                for workers in [1usize, 2, 5] {
                    let par = decompose(&f, &x0, Some(&b), &build(Parallelism::Threads(workers)));
                    assert_eq!(
                        par.lambda_min_hat.to_bits(),
                        seq.lambda_min_hat.to_bits(),
                        "λ̂_min diverged at {workers} workers (gershgorin={objective}, {backend:?})"
                    );
                    assert_eq!(
                        par.lambda_max_hat.to_bits(),
                        seq.lambda_max_hat.to_bits(),
                        "λ̂_max diverged at {workers} workers (gershgorin={objective}, {backend:?})"
                    );
                    assert_eq!(par.dc, seq.dc);
                    if backend == SpectralBackend::Ql && !objective {
                        // The Lanczos path runs identical code for every
                        // parallelism setting, counters included. The
                        // legacy paths' estimates legitimately differ by
                        // one (the sequential path decomposes the center
                        // twice).
                        assert_eq!(
                            par.spectral, seq.spectral,
                            "spectral stats diverged at {workers} workers"
                        );
                    } else {
                        assert_eq!(par.spectral.eigen_probes, seq.spectral.eigen_probes);
                    }
                }
            }
        }
    }

    #[test]
    fn spectral_backends_agree_end_to_end() {
        use automon_linalg::SpectralBackend;
        // Fixed-seed ADCD parity across backends: ADCD-E (constant
        // Hessian), ADCD-X exact (Lanczos vs materialized Jacobi), and
        // the DC heuristic all land on the same decomposition.
        let saddle = AutoDiffFn::new(Saddle);
        let coupled = AutoDiffFn::new(Coupled);
        let x0e = [0.0, 0.0];
        let x0x = [0.3, -0.2, 0.1];
        let b = coupled_box();
        let cfg_with = |backend| {
            MonitorConfig::builder(0.1)
                .spectral_backend(backend)
                .build()
        };
        let (ql, jac) = (
            cfg_with(SpectralBackend::Ql),
            cfg_with(SpectralBackend::Jacobi),
        );

        let eq = decompose(&saddle, &x0e, None, &ql);
        let ej = decompose(&saddle, &x0e, None, &jac);
        assert_eq!(eq.kind, AdcdKind::E);
        assert_eq!(eq.dc, ej.dc);
        assert!((eq.lambda_min_hat - ej.lambda_min_hat).abs() < 1e-9);
        assert!((eq.lambda_max_hat - ej.lambda_max_hat).abs() < 1e-9);

        let xq = decompose(&coupled, &x0x, Some(&b), &ql);
        let xj = decompose(&coupled, &x0x, Some(&b), &jac);
        assert_eq!(xq.kind, AdcdKind::X);
        assert_eq!(xq.dc, xj.dc, "DC heuristic flipped across backends");
        let scale = xj.lambda_min_hat.abs().max(xj.lambda_max_hat.abs()).max(1.0);
        assert!(
            (xq.lambda_min_hat - xj.lambda_min_hat).abs() < 1e-6 * scale,
            "λ̂_min: lanczos {} vs jacobi {}",
            xq.lambda_min_hat,
            xj.lambda_min_hat
        );
        assert!(
            (xq.lambda_max_hat - xj.lambda_max_hat).abs() < 1e-6 * scale,
            "λ̂_max: lanczos {} vs jacobi {}",
            xq.lambda_max_hat,
            xj.lambda_max_hat
        );
    }

    #[test]
    fn lanczos_path_never_materializes_probe_hessians() {
        use automon_linalg::SpectralBackend;
        // Growing the probe budget must not grow the Hessian
        // materialization count on the matrix-free path (the record-once
        // acceptance criterion); the materialized Jacobi path pays one
        // dense Hessian per probe.
        let f = AutoDiffFn::new(Coupled);
        let x0 = [0.3, -0.2, 0.1];
        let b = coupled_box();
        let run = |backend, probes| {
            let cfg = MonitorConfig::builder(0.1)
                .spectral_backend(backend)
                .eigen_search(EigenSearch {
                    probes,
                    ..EigenSearch::default()
                })
                .build();
            decompose(&f, &x0, Some(&b), &cfg).spectral
        };
        let small = run(SpectralBackend::Ql, 4);
        let large = run(SpectralBackend::Ql, 16);
        assert_eq!(small.hessian_materializations, 2);
        assert_eq!(large.hessian_materializations, 2);
        assert!(
            large.eigen_probes > small.eigen_probes,
            "probe growth invisible: {} vs {}",
            large.eigen_probes,
            small.eigen_probes
        );
        assert!(large.lanczos_iterations > 0);
        assert!(large.reorth_passes > 0);
        assert!(large.hvp_applies >= large.lanczos_iterations);

        let jac = run(SpectralBackend::Jacobi, 16);
        assert!(
            jac.hessian_materializations > 2 + 16,
            "materialized path should pay per probe, got {}",
            jac.hessian_materializations
        );
        assert_eq!(jac.lanczos_iterations, 0);
    }
}

#[cfg(test)]
mod gershgorin_tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::safezone::NeighborhoodBox;
    use automon_autodiff::{AutoDiffFn, Scalar, ScalarFn};
    use automon_linalg::Matrix;

    #[test]
    fn gershgorin_brackets_true_spectrum() {
        let mut m = Matrix::from_rows(3, 3, vec![2.0, 1.0, 0.5, 1.0, -1.0, 0.2, 0.5, 0.2, 3.0]);
        m.symmetrize();
        let (lo, hi) = gershgorin_bounds(&m);
        let eig = SymEigen::new(&m);
        assert!(lo <= eig.lambda_min() + 1e-12);
        assert!(hi >= eig.lambda_max() - 1e-12);
    }

    #[test]
    fn gershgorin_decomposition_is_more_conservative() {
        struct Sin1;
        impl ScalarFn for Sin1 {
            fn dim(&self) -> usize {
                1
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                x[0].sin()
            }
        }
        let f = AutoDiffFn::new(Sin1);
        let x0 = [std::f64::consts::FRAC_PI_2];
        let b = NeighborhoodBox {
            lo: vec![x0[0] - 1.0],
            hi: vec![x0[0] + 1.0],
        };
        let exact = decompose(&f, &x0, Some(&b), &MonitorConfig::builder(0.1).build());
        let gersh = decompose(
            &f,
            &x0,
            Some(&b),
            &MonitorConfig::builder(0.1).gershgorin_bounds().build(),
        );
        // 1-D Gershgorin equals the diagonal, so bounds coincide here;
        // the invariant is bracketing: λ̂ ranges at least as wide.
        assert!(gersh.lambda_min_hat <= exact.lambda_min_hat + 1e-9);
        assert!(gersh.lambda_max_hat >= exact.lambda_max_hat - 1e-9);
    }

    #[test]
    fn gershgorin_widens_multidim_penalty() {
        // Coupled non-constant Hessian: off-diagonals make Gershgorin
        // strictly conservative.
        struct Coupled;
        impl ScalarFn for Coupled {
            fn dim(&self) -> usize {
                2
            }
            fn call<S: Scalar>(&self, x: &[S]) -> S {
                (x[0] * x[1]).sin()
            }
        }
        let f = AutoDiffFn::new(Coupled);
        let x0 = [0.5, 0.5];
        let b = NeighborhoodBox {
            lo: vec![0.0, 0.0],
            hi: vec![1.0, 1.0],
        };
        let exact = decompose(&f, &x0, Some(&b), &MonitorConfig::builder(0.1).build());
        let gersh = decompose(
            &f,
            &x0,
            Some(&b),
            &MonitorConfig::builder(0.1).gershgorin_bounds().build(),
        );
        assert!(
            gersh.lambda_min_hat < exact.lambda_min_hat,
            "gersh {} vs exact {}",
            gersh.lambda_min_hat,
            exact.lambda_min_hat
        );
    }
}
